"""Ablation benchmarks for the design choices DESIGN.md calls out.

These quantify *why* the paper's design decisions matter:

* unified vs per-pair models (the paper's claimed novelty),
* the 10-variable cap (Figs. 7/8 territory),
* statistical vs analytic (Hong-Kim-style) modeling, including the
  cross-GPU transfer failure,
* model-driven governor vs the exhaustive oracle.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import get_gpu
from repro.baselines.hong_kim import tune_on_gpu
from repro.baselines.per_pair import power_suite
from repro.core.models import UnifiedPerformanceModel
from repro.experiments import context
from repro.instruments.testbed import Testbed
from repro.kernels.suites import get_benchmark, modeling_benchmarks
from repro.optimize.governor import ModelGovernor
from repro.optimize.oracle import exhaustive_oracle, score_governor


def test_ablation_unified_vs_per_pair(benchmark, save_result):
    """How much accuracy does unification cost? (Fig. 9 in bench form)"""
    ds = context.dataset("GTX 480")

    def ablate():
        suite = power_suite().fit(ds)
        reports = suite.evaluate(ds)
        unified = reports.pop("unified").mean_pct_error
        per_pair = float(np.mean([r.mean_pct_error for r in reports.values()]))
        return unified, per_pair

    unified, per_pair = benchmark.pedantic(ablate, rounds=1, iterations=1)
    # Unification costs accuracy but not more than ~2x.
    assert unified < per_pair * 2.5


def test_ablation_variable_cap(benchmark):
    """Accuracy vs the number of selected variables (Figs. 7/8)."""
    ds = context.dataset("GTX 480")

    def ablate():
        out = {}
        for cap in (2, 5, 10, 20):
            model = UnifiedPerformanceModel(max_features=cap).fit(ds)
            out[cap] = model.adjusted_r2
        return out

    r2 = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert r2[2] <= r2[5] <= r2[10] <= r2[20] + 1e-9
    # The paper's point: beyond 10 variables gains are marginal.
    assert r2[20] - r2[10] < 0.05


def test_ablation_statistical_vs_analytic_transfer(benchmark):
    """Hong-Kim-style analytic model: fine on its GPU, poor when ported."""

    def ablate():
        benches = modeling_benchmarks()[:10]
        model, data = tune_on_gpu(get_gpu("GTX 680"), benches)
        self_err = float(
            np.mean(
                [
                    abs(model.predict_seconds(b, s, m.op) - m.exec_seconds)
                    / m.exec_seconds
                    for b, s, m in data
                ]
            )
        )
        ported = model.transfer(get_gpu("GTX 285"))
        testbed = Testbed(get_gpu("GTX 285"))
        testbed.set_clocks("H", "H")
        transfer_err = float(
            np.mean(
                [
                    abs(
                        ported.predict_seconds(b, 0.25, testbed.sim.operating_point)
                        - testbed.measure(b, 0.25).exec_seconds
                    )
                    / testbed.measure(b, 0.25).exec_seconds
                    for b in benches
                ]
            )
        )
        return self_err, transfer_err

    self_err, transfer_err = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert transfer_err > self_err


def test_ablation_governor_vs_oracle(benchmark):
    """Model-driven DVFS choice vs exhaustive measurement."""
    gpu = get_gpu("GTX 480")
    ds = context.dataset("GTX 480")
    governor = ModelGovernor(
        context.power_model("GTX 480"), context.performance_model("GTX 480")
    )

    def ablate():
        regrets, ranks = [], []
        for name in ("kmeans", "hotspot", "lbm", "sgemm", "spmv", "stencil"):
            decision = governor.decide(ds, name, 0.25)
            oracle = exhaustive_oracle(gpu, get_benchmark(name), scale=0.25)
            score = score_governor(decision, oracle)
            regrets.append(score.energy_regret)
            ranks.append(score.rank)
        return float(np.mean(regrets)), float(np.mean(ranks))

    regret, rank = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert rank < 4.0  # better than a random pick among 7 pairs
