"""Regeneration benchmarks for the extension experiments (DESIGN.md §7)."""

from __future__ import annotations

from repro.experiments.registry import run as run_experiment


def _regenerate(benchmark, save_result, experiment_id: str):
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=1, iterations=1
    )
    save_result(result)
    return result


def test_ext_crossval_lobo(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_crossval")
    assert len(result.rows) == 8  # 4 GPUs x 2 model families
    # Held-out error is never better than in-sample by more than noise.
    for row in result.rows:
        assert row[3] >= row[2] * 0.8


def test_ext_transfer_cross_gpu(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_transfer")
    assert all(row[5] >= 1.0 for row in result.rows)


def test_ext_radeon_pipeline(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_radeon")
    values = {r[0]: r[1] for r in result.rows}
    assert values["modeling samples"] == 114


def test_ext_governor_scoring(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_governor")
    assert len(result.rows) == 4


def test_ext_bootstrap_cis(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_bootstrap")
    assert len(result.rows) == 8


def test_ext_methods_comparison(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_methods")
    # The forest always fits tighter in-sample than forward-10.
    for row in result.rows:
        assert row[5] < row[1]


def test_ext_roofline_map(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_roofline")
    assert len(result.rows) == 4


def test_ext_synthetic_generalization(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_synthetic")
    assert len(result.rows) == 8


def test_ext_thermal_ambient_sweep(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_thermal")
    assert len(result.rows) == 16
    # Hotter ambient always means a hotter die at H-H.
    for gpu_rows in (result.rows[i : i + 4] for i in range(0, 16, 4)):
        temps = [row[2] for row in gpu_rows]
        assert temps == sorted(temps)


def test_ext_seeds_sensitivity(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_seeds")
    assert len(result.rows) == 4


def test_ext_profiler_fidelity(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_profiler")
    # Model quality never improves as the profiler degrades.
    perf_r2 = [row[5] for row in result.rows]
    assert perf_r2 == sorted(perf_r2, reverse=True)


def test_ext_pareto_frontiers(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "ext_pareto")
    assert len(result.rows) == 20  # 4 GPUs x 5 workloads
    # Kepler's frontier is never smaller than Tesla's for backprop.
    sizes = {
        row[0]: int(row[2].split("/")[0])
        for row in result.rows
        if row[1] == "backprop"
    }
    assert sizes["GTX 680"] >= sizes["GTX 480"]
