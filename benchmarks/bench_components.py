"""Performance benchmarks of the library's own components.

Unlike the artifact-regeneration benches, these measure steady-state
throughput of the substrate (simulator runs, profiling, sweeps, model
fitting) so performance regressions in the library are visible.
"""

from __future__ import annotations

from repro.arch.specs import get_gpu
from repro.core.dataset import build_dataset
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.core.selection import forward_select
from repro.core.features import power_feature_matrix
from repro.characterize.sweep import FrequencySweep
from repro.engine.simulator import GPUSimulator
from repro.experiments import context
from repro.instruments.profiler import CudaProfiler
from repro.instruments.testbed import Testbed
from repro.kernels.suites import get_benchmark, modeling_benchmarks


def test_simulator_single_run(benchmark):
    sim = GPUSimulator(get_gpu("GTX 680"))
    bench = get_benchmark("kmeans")
    benchmark(sim.run, bench, 0.25)


def test_testbed_measurement(benchmark):
    testbed = Testbed(get_gpu("GTX 480"))
    bench = get_benchmark("hotspot")
    benchmark(testbed.measure, bench, 0.25)


def test_profiler_collection_kepler(benchmark):
    """Collecting all 108 Kepler counters for one run."""
    sim = GPUSimulator(get_gpu("GTX 680"))
    profiler = CudaProfiler()
    bench = get_benchmark("kmeans")
    benchmark(profiler.profile, sim, bench, 0.25)


def test_bios_reflash_cycle(benchmark):
    sim = GPUSimulator(get_gpu("GTX 480"))

    def cycle():
        sim.set_clocks("M", "M")
        sim.set_clocks("H", "H")

    benchmark(cycle)


def test_single_benchmark_sweep(benchmark):
    sweep = FrequencySweep(get_gpu("GTX 480"))
    bench = get_benchmark("hotspot")
    benchmark(sweep.run_benchmark, bench, 0.25)


def test_dataset_build_one_gpu(benchmark):
    gpu = get_gpu("GTX 460")
    benches = modeling_benchmarks()[:8]
    benchmark.pedantic(
        build_dataset, args=(gpu,), kwargs={"benchmarks": benches},
        rounds=1, iterations=1,
    )


def test_power_model_fit(benchmark):
    ds = context.dataset("GTX 480")
    benchmark.pedantic(
        lambda: UnifiedPowerModel().fit(ds), rounds=1, iterations=1
    )


def test_performance_model_fit(benchmark):
    ds = context.dataset("GTX 480")
    benchmark.pedantic(
        lambda: UnifiedPerformanceModel().fit(ds), rounds=1, iterations=1
    )


def test_forward_selection_108_features(benchmark):
    """Selection over the Kepler-sized feature space."""
    ds = context.dataset("GTX 680")
    X, names = power_feature_matrix(ds)
    y = ds.avg_power_w()
    benchmark.pedantic(
        forward_select, args=(X, y, names), kwargs={"max_features": 10},
        rounds=1, iterations=1,
    )
