"""Performance benchmarks of the library's own components.

Thin pytest-benchmark wrappers over the shared workload registry
(:mod:`repro.bench.registry`) — the same list ``repro bench run`` times
and archives into ``BENCH_components.json`` / ``BENCH_pipeline.json``,
so the interactive and machine-readable entry points can never drift
apart on what "the hot paths" are.  See docs/BENCHMARKS.md.

Run with ``pytest benchmarks/bench_components.py -m ''`` (the suite is
marked ``slow`` and therefore excluded from tier-1).
"""

from __future__ import annotations

import pytest

from repro.bench.registry import workloads

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("workload", workloads(), ids=lambda w: w.name)
def test_workload(benchmark, workload, tmp_path):
    fn = workload.setup(0, tmp_path)
    benchmark.pedantic(
        fn,
        args=(None,),
        rounds=min(workload.repeats, 10),
        iterations=1,
        warmup_rounds=1,
    )
