"""Benchmark-suite fixtures and result persistence."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where rendered artifact outputs are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist a rendered experiment result for inspection."""

    def _save(result) -> None:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.to_text() + "\n", encoding="utf-8")

    return _save
