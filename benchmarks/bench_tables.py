"""Regeneration benchmarks for the paper's eight tables.

Each target regenerates one table end-to-end (sweeps, profiling, model
fitting as required), times it with pytest-benchmark, validates the
paper-facing shape, and writes the rendered table (with the paper's
reference values) to ``benchmarks/results/``.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from repro.experiments.registry import run as run_experiment


def _regenerate(benchmark, save_result, experiment_id: str):
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=1, iterations=1
    )
    save_result(result)
    return result


def test_table1_gpu_specifications(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table1")
    assert len(result.headers) == 5


def test_table2_benchmark_list(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table2")
    assert sum(row[1] for row in result.rows) == 37


def test_table3_frequency_combinations(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table3")
    assert len(result.rows) == 9


def test_table4_best_frequency_pairs(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table4")
    assert len(result.rows) == 37


def test_table5_power_model_r2(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table5")
    ours = result.rows[0][1:]
    assert all(0.0 < v < 1.0 for v in ours)


def test_table6_performance_model_r2(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table6")
    ours = result.rows[0][1:]
    assert all(v > 0.85 for v in ours)


def test_table7_power_model_error(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table7")
    watts = [r for r in result.rows if r[0] == "Error[W] (ours)"][0][1:]
    assert all(v < 30.0 for v in watts)


def test_table8_performance_model_error(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "table8")
    ours = [r for r in result.rows if r[0] == "Error[%] (ours)"][0][1:]
    assert ours[0] == max(ours)  # Tesla worst, as in the paper
