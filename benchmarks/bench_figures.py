"""Regeneration benchmarks for the paper's eleven figures."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.experiments.registry import run as run_experiment


def _regenerate(benchmark, save_result, experiment_id: str):
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=1, iterations=1
    )
    save_result(result)
    return result


def test_fig1_backprop(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig1")
    # Every GPU contributes one row per configurable pair.
    assert len(result.rows) == 8 + 7 + 7 + 7


def test_fig2_streamcluster(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig2")
    assert "M-H" in result.notes or "H-H" in result.notes


def test_fig3_gaussian(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig3")
    assert len(result.rows) == 29


def test_fig4_efficiency_improvement(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig4")
    averages = result.rows[-1][1:]
    assert averages[3] == max(averages)  # Kepler biggest, as in the paper


def test_fig5_power_error_distribution(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig5")
    assert len(result.rows) == 33


def test_fig6_performance_error_distribution(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig6")
    assert len(result.rows) == 33


def test_fig7_power_variable_sweep(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig7")
    assert len(result.rows) == 16


def test_fig8_performance_variable_sweep(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig8")
    assert len(result.rows) == 16


def test_fig9_per_pair_power_models(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig9")
    unified_rows = [r for r in result.rows if r[1] == "unified"]
    assert len(unified_rows) == len(GPU_NAMES)


def test_fig10_per_pair_performance_models(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig10")
    unified_rows = [r for r in result.rows if r[1] == "unified"]
    assert len(unified_rows) == len(GPU_NAMES)


def test_fig11_variable_influence(benchmark, save_result):
    result = _regenerate(benchmark, save_result, "fig11")
    assert {r[1] for r in result.rows} == {"power", "performance"}
