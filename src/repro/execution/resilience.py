"""Execution resilience: circuit breakers, watchdog, graceful shutdown.

Three mechanisms that keep a long campaign alive — and deterministic —
when units misbehave:

* :class:`BreakerBook` — per-(GPU, benchmark) circuit breakers.  After
  ``threshold`` *permanent* failures of the same fault class the
  breaker opens and the remaining units of that class are quarantined
  as deterministic exclusions instead of attempted; after a fixed
  cooldown the breaker half-opens and lets one probe unit through,
  closing again on success.  The engine drives every breaker in
  canonical unit-index order, so serial, pooled and resumed runs make
  identical quarantine decisions.
* :func:`call_with_timeout` — the per-unit wall-clock watchdog.  Runs a
  unit in a daemon thread (with the caller's context variables, so
  worker-local telemetry still records) and raises the *transient*
  :class:`~repro.errors.UnitTimeoutError` on overrun.  A timed-out
  unit's thread is abandoned, never joined — the cost of interrupting
  arbitrary Python.
* :class:`GracefulShutdown` — SIGINT/SIGTERM handler that flips a
  process-wide flag the engine polls between units (and the pool polls
  between chunk completions).  The first signal requests a drain; a
  second one falls back to ``KeyboardInterrupt``.
"""

from __future__ import annotations

import contextvars
import signal
import threading
from typing import Any, Callable

from repro.errors import UnitTimeoutError

#: Quarantined checks an open breaker absorbs before half-opening a
#: probe.  Fixed (not configured per-run) so the quarantine pattern is a
#: pure function of the failure sequence.
BREAKER_COOLDOWN = 8


# ----------------------------------------------------------------------
# circuit breakers
# ----------------------------------------------------------------------


class _Breaker:
    """State machine of one fault class: closed -> open -> half-open."""

    __slots__ = ("state", "failures", "skipped", "error_type")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.skipped = 0
        #: Error type of the failure that opened the breaker (label).
        self.error_type: str | None = None


class BreakerBook:
    """Circuit breakers keyed by (GPU, benchmark) fault class.

    ``threshold=None`` (the default) makes the book inert: every unit
    is admitted and nothing is ever recorded, so the breaker layer adds
    no behavior — and no cost — unless explicitly enabled.

    The book is deterministic by construction: state only advances in
    :meth:`admit`/:meth:`record` calls the engine makes in unit-index
    order, and transitions are pure functions of the permanent-failure
    sequence.  Transition events are returned to the caller (for the
    journal, health report and ``breaker.opens`` counter), never
    emitted as side effects.
    """

    def __init__(
        self, threshold: int | None, cooldown: int = BREAKER_COOLDOWN
    ) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ValueError(f"breaker cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._breakers: dict[tuple[str, str], _Breaker] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    @staticmethod
    def _key(unit: Any) -> tuple[str, str]:
        return (unit.gpu.name, unit.kernel.name)

    def label(self, unit: Any) -> str:
        """The journaled/reported fault-class label of a unit."""
        breaker = self._breakers.get(self._key(unit))
        error_type = breaker.error_type if breaker is not None else None
        return (
            f"{unit.gpu.name}:{unit.kernel.name}:{error_type or 'unknown'}"
        )

    def failures_for(self, unit: Any) -> int:
        breaker = self._breakers.get(self._key(unit))
        return breaker.failures if breaker is not None else 0

    def admit(self, unit: Any) -> tuple[bool, list[dict[str, Any]]]:
        """Whether a unit may run; ``False`` means quarantine it.

        An open breaker absorbs :attr:`cooldown` quarantined admissions
        and then half-opens, admitting the next unit as a probe.
        Returns the admission verdict plus any transition events.
        """
        if not self.enabled:
            return True, []
        breaker = self._breakers.get(self._key(unit))
        if breaker is None or breaker.state == "closed":
            return True, []
        if breaker.state == "open":
            breaker.skipped += 1
            if breaker.skipped >= self.cooldown:
                breaker.state = "half_open"
                return True, [self._event(unit, breaker, "half_open")]
            return False, []
        return True, []  # half-open: admit the probe

    def record(
        self, unit: Any, ok: bool, permanent_failure: bool,
        error_type: str | None = None,
    ) -> list[dict[str, Any]]:
        """Feed one executed unit's verdict; returns transition events."""
        if not self.enabled:
            return []
        key = self._key(unit)
        breaker = self._breakers.get(key)
        if breaker is None:
            if not permanent_failure:
                return []  # successes never materialize a breaker
            breaker = self._breakers[key] = _Breaker()
        if breaker.state == "half_open":
            if ok:
                breaker.state = "closed"
                breaker.failures = 0
                breaker.error_type = None
                return [self._event(unit, breaker, "close")]
            if permanent_failure:
                breaker.state = "open"
                breaker.skipped = 0
                breaker.failures += 1
                breaker.error_type = error_type
                return [self._event(unit, breaker, "open")]
            return []  # transient exhaustion: stay half-open, re-probe
        if breaker.state == "closed":
            if ok:
                breaker.failures = 0
                return []
            if not permanent_failure:
                return []
            breaker.failures += 1
            breaker.error_type = error_type
            if self.threshold is not None and (
                breaker.failures >= self.threshold
            ):
                breaker.state = "open"
                breaker.skipped = 0
                return [self._event(unit, breaker, "open")]
        return []

    def _event(
        self, unit: Any, breaker: _Breaker, event: str
    ) -> dict[str, Any]:
        return {
            "class": self.label(unit),
            "event": event,
            "failures": breaker.failures,
        }


# ----------------------------------------------------------------------
# per-unit wall-clock watchdog
# ----------------------------------------------------------------------


def call_with_timeout(fn: Callable[[], Any], timeout_s: float) -> Any:
    """Run ``fn()`` with a wall-clock budget; raise on overrun.

    The call runs in a daemon thread under a copy of the caller's
    context (so context-local telemetry keeps recording).  On overrun
    the thread is *abandoned* — Python offers no safe preemption — and
    :class:`~repro.errors.UnitTimeoutError` (transient) is raised so
    the retry loop treats the hang like any other flaky fault.
    """
    context = contextvars.copy_context()
    outcome: dict[str, Any] = {}

    def target() -> None:
        try:
            outcome["value"] = context.run(fn)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc

    thread = threading.Thread(
        target=target, name="unit-watchdog", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise UnitTimeoutError(
            f"unit execution exceeded the {timeout_s:g}s wall-clock budget"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------

_SHUTDOWN_REQUESTED = False

#: Observers invoked (once) when a shutdown is first requested — the
#: flight recorder registers here so a SIGTERM dumps its ring even when
#: the engine never reaches another drain point.  Callbacks run inside
#: the signal handler, so they must be fast and must not raise; they
#: are individually exception-guarded regardless.
_SHUTDOWN_CALLBACKS: list[Callable[[], None]] = []


def add_shutdown_callback(callback: Callable[[], None]) -> None:
    """Register an observer fired when a graceful shutdown begins."""
    if callback not in _SHUTDOWN_CALLBACKS:
        _SHUTDOWN_CALLBACKS.append(callback)


def remove_shutdown_callback(callback: Callable[[], None]) -> None:
    """Deregister a shutdown observer (idempotent)."""
    try:
        _SHUTDOWN_CALLBACKS.remove(callback)
    except ValueError:
        pass


def _fire_shutdown_callbacks() -> None:
    for callback in list(_SHUTDOWN_CALLBACKS):
        try:
            callback()
        except Exception:
            # Observe-only: a failing observer cannot break the drain.
            pass


def shutdown_requested() -> bool:
    """Whether a graceful shutdown has been requested (engine poll)."""
    return _SHUTDOWN_REQUESTED


def request_shutdown() -> None:
    """Request a graceful drain programmatically (tests, embedders)."""
    global _SHUTDOWN_REQUESTED
    already = _SHUTDOWN_REQUESTED
    _SHUTDOWN_REQUESTED = True
    if not already:
        _fire_shutdown_callbacks()


def clear_shutdown() -> None:
    """Reset the shutdown flag (tests, sequential CLI invocations)."""
    global _SHUTDOWN_REQUESTED
    _SHUTDOWN_REQUESTED = False


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a graceful drain.

    While active, the first signal sets the process-wide shutdown flag
    — the engine stops dispatching, drains in-flight work within the
    configured grace period, flushes the journal and raises
    :class:`~repro.errors.CampaignInterrupted`.  A second signal raises
    ``KeyboardInterrupt`` immediately (the operator insists).  Handlers
    are restored and the flag cleared on exit.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self._saved: dict[int, Any] = {}

    def _handler(self, signum: int, frame: Any) -> None:
        global _SHUTDOWN_REQUESTED
        if _SHUTDOWN_REQUESTED:
            raise KeyboardInterrupt
        _SHUTDOWN_REQUESTED = True
        _fire_shutdown_callbacks()

    def __enter__(self) -> "GracefulShutdown":
        clear_shutdown()
        for signum in self.SIGNALS:
            self._saved[signum] = signal.signal(signum, self._handler)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum, handler in self._saved.items():
            signal.signal(signum, handler)
        self._saved.clear()
        clear_shutdown()
