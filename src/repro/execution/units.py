"""Work units: the atoms of a measurement campaign.

The paper's Section III/IV campaign — 37 benchmarks at every (core,
memory) frequency pair of four GPUs plus the 114-sample modeling
dataset — decomposes into independent work units:

* a :class:`SweepUnit` is one (GPU, benchmark, frequency pair, scale)
  wall-meter measurement, and
* a :class:`DatasetUnit` is one (GPU, benchmark, input size) modeling
  sample: a profiler pass at the default clocks followed by a
  measurement at every requested pair.

Units are frozen, picklable value objects: they can be shipped to a
worker process, executed on a worker-local testbed, and their result
payload is a plain JSON document suitable for the content-addressed
:class:`~repro.execution.cache.ResultCache`.  The cache key of a unit
is a SHA-256 over its canonical spec, the noise seed and the package
version, so a cache survives process restarts but never serves stale
results across code versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro._version import __version__
from repro.arch.specs import GPUSpec
from repro.errors import ProfilerError
from repro.faults import FaultInjector, FaultPlan
from repro.instruments.powermeter import PowerTrace
from repro.instruments.profiler import CudaProfiler
from repro.instruments.testbed import Measurement, shared_testbed
from repro.kernels.profile import KernelSpec
from repro.telemetry.runtime import current_telemetry

if TYPE_CHECKING:  # session imports the engine; keep the cycle static-only
    from repro.session.context import RunContext


# ----------------------------------------------------------------------
# canonical fingerprints (cache-key ingredients)
# ----------------------------------------------------------------------

def gpu_document(gpu: GPUSpec) -> dict[str, Any]:
    """Canonical JSON-able description of a card.

    Enum-keyed tables and the ``allowed_pairs`` frozenset are rewritten
    into deterministically ordered primitives so the document — and any
    hash of it — is stable across processes and Python hash seeds.
    """
    return {
        "name": gpu.name,
        "architecture": gpu.architecture.value,
        "num_cores": gpu.num_cores,
        "num_sms": gpu.num_sms,
        "peak_gflops": gpu.peak_gflops,
        "mem_bandwidth_gbs": gpu.mem_bandwidth_gbs,
        "tdp_w": gpu.tdp_w,
        "core_mhz": {lv.value: gpu.core_mhz[lv] for lv in sorted(gpu.core_mhz)},
        "mem_mhz": {lv.value: gpu.mem_mhz[lv] for lv in sorted(gpu.mem_mhz)},
        "core_vdd": dataclasses.asdict(gpu.core_vdd),
        "mem_vdd": dataclasses.asdict(gpu.mem_vdd),
        "allowed_pairs": sorted(
            f"{c.value}-{m.value}" for c, m in gpu.allowed_pairs
        ),
        "power": dataclasses.asdict(gpu.power),
    }


def kernel_document(kernel: KernelSpec) -> dict[str, Any]:
    """Canonical JSON-able description of a benchmark."""
    return dataclasses.asdict(kernel)


# ----------------------------------------------------------------------
# measurement payloads
# ----------------------------------------------------------------------

def measurement_to_payload(m: Measurement) -> dict[str, Any]:
    """Flatten a measurement into a JSON-able payload document.

    Every float survives a JSON round-trip exactly (``repr`` round-trip),
    so cached and freshly measured payloads are byte-identical.
    """
    return {
        "gpu": m.gpu.name,
        "benchmark": m.kernel.name,
        "scale": float(m.scale),
        "pair": m.op.key,
        "exec_seconds": float(m.exec_seconds),
        "avg_power_w": float(m.avg_power_w),
        "energy_j": float(m.energy_j),
        "repeats": int(m.repeats),
        "degraded": bool(m.degraded),
        "trace_interval_s": float(m.trace.interval_s),
        "trace_samples": [float(s) for s in m.trace.samples],
        "trace_valid": (
            None if m.trace.valid is None else [bool(v) for v in m.trace.valid]
        ),
    }


def measurement_from_payload(
    doc: dict[str, Any], gpu: GPUSpec, kernel: KernelSpec
) -> Measurement:
    """Rebuild a :class:`Measurement` from its payload document."""
    valid = doc.get("trace_valid")
    trace = PowerTrace(
        samples=np.asarray(doc["trace_samples"], dtype=float),
        interval_s=float(doc["trace_interval_s"]),
        valid=None if valid is None else np.asarray(valid, dtype=bool),
    )
    return Measurement(
        gpu=gpu,
        kernel=kernel,
        scale=float(doc["scale"]),
        op=gpu.operating_point(doc["pair"]),
        exec_seconds=float(doc["exec_seconds"]),
        avg_power_w=float(doc["avg_power_w"]),
        energy_j=float(doc["energy_j"]),
        repeats=int(doc["repeats"]),
        trace=trace,
        degraded=bool(doc.get("degraded", False)),
    )


# ----------------------------------------------------------------------
# work units
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkUnit:
    """One independent, cacheable piece of campaign work."""

    gpu: GPUSpec
    kernel: KernelSpec
    seed: int | None
    #: Fault plan realized during execution; ``None`` (and null plans,
    #: which builders normalize away) means no injection.
    faults: FaultPlan | None = None

    #: Discriminator used in cache keys and payloads.
    kind = "abstract"

    def spec(self) -> dict[str, Any]:
        """Canonical description of what this unit measures."""
        raise NotImplementedError

    def execute(self) -> dict[str, Any]:
        """Run the unit and return its JSON-able result payload."""
        raise NotImplementedError

    def injector(self) -> FaultInjector | None:
        """The fault injector realizing this unit's plan, if any."""
        if self.faults is None:
            return None
        return FaultInjector(self.faults, seed=self.seed)

    def cache_key(self) -> str:
        """Content address of this unit's result.

        SHA-256 over the canonical (kind, spec, seed, package version)
        document — plus the fault plan when one is active, so faulty
        and fault-free campaigns never share cached results.  Any
        change to what is measured, to the noise seed or to the code
        version yields a different key.
        """
        document = {
            "kind": self.kind,
            "spec": self.spec(),
            "seed": self.seed,
            "version": __version__,
        }
        if self.faults is not None:
            document["faults"] = self.faults.document()
        blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __str__(self) -> str:
        return f"{self.kind}({self.gpu.name}, {self.kernel.name})"


@dataclass(frozen=True)
class SweepUnit(WorkUnit):
    """One (GPU, benchmark, frequency pair, scale) sweep measurement."""

    pair: str = "H-H"
    scale: float = 1.0

    kind = "sweep"

    def spec(self) -> dict[str, Any]:
        return {
            "gpu": gpu_document(self.gpu),
            "kernel": kernel_document(self.kernel),
            "pair": self.pair,
            "scale": self.scale,
        }

    def execute(self) -> dict[str, Any]:
        injector = self.injector()
        if injector is not None:
            injector.check_crash(
                self.kind, self.gpu.name, self.kernel.name, self.pair
            )
        testbed = shared_testbed(self.gpu, seed=self.seed, injector=injector)
        op = self.gpu.operating_point(self.pair)
        testbed.set_clocks(op.core_level, op.mem_level)
        measurement = testbed.measure(self.kernel, self.scale)
        payload = measurement_to_payload(measurement)
        payload["kind"] = self.kind
        return payload

    def __str__(self) -> str:
        return (
            f"sweep({self.gpu.name}, {self.kernel.name}, "
            f"{self.pair}, x{self.scale:g})"
        )


@dataclass(frozen=True)
class DatasetUnit(WorkUnit):
    """One (GPU, benchmark, input size) modeling-dataset sample.

    Mirrors the paper's protocol: the profiler collects counter totals
    once at the default (H-H) clocks — counters describe the workload,
    not the clocks — then the testbed measures time and wall power at
    every requested frequency pair.  Benchmarks the profiler cannot
    analyze contribute an empty payload, exactly as they contribute no
    modeling samples in Section IV-A.
    """

    scale: float = 1.0
    #: Frequency-pair keys to measure; ``None`` means every configurable
    #: pair of the card, in Table III (highest-first) order.
    pairs: tuple[str, ...] | None = None
    #: Seed of the profiler noise streams (may differ from the testbed
    #: seed when a custom profiler is used).
    profiler_seed: int | None = None
    #: Profiler-fidelity overrides (see :class:`CudaProfiler`).
    noise_scale: float | None = None
    bias_cv: float | None = None

    kind = "dataset"

    def spec(self) -> dict[str, Any]:
        return {
            "gpu": gpu_document(self.gpu),
            "kernel": kernel_document(self.kernel),
            "scale": self.scale,
            "pairs": list(self.pairs) if self.pairs is not None else None,
            "profiler_seed": self.profiler_seed,
            "noise_scale": self.noise_scale,
            "bias_cv": self.bias_cv,
        }

    def _operating_points(self):
        ops = self.gpu.operating_points()
        if self.pairs is None:
            return ops
        wanted = set(self.pairs)
        return [op for op in ops if op.key in wanted]

    def execute(self) -> dict[str, Any]:
        injector = self.injector()
        if injector is not None:
            injector.check_crash(
                self.kind, self.gpu.name, self.kernel.name, self.scale
            )
        testbed = shared_testbed(self.gpu, seed=self.seed, injector=injector)
        profiler = CudaProfiler(
            seed=self.profiler_seed,
            noise_scale=self.noise_scale,
            bias_cv=self.bias_cv,
            injector=injector,
        )
        testbed.set_clocks("H", "H")
        telemetry = current_telemetry()
        try:
            with telemetry.tracer.span(
                "profiler-pass",
                kind="instrument",
                gpu=self.gpu.name,
                benchmark=self.kernel.name,
            ):
                telemetry.metrics.inc("profiler.passes")
                totals = profiler.profile(testbed.sim, self.kernel, self.scale)
        except ProfilerError as exc:
            telemetry.metrics.inc("profiler.failures")
            return {
                "kind": self.kind,
                "gpu": self.gpu.name,
                "benchmark": self.kernel.name,
                "scale": float(self.scale),
                "profiled": False,
                "reason": str(exc),
                "counters": {},
                "measurements": [],
            }
        measurements = []
        for op in self._operating_points():
            testbed.set_clocks(op.core_level, op.mem_level)
            m = testbed.measure(self.kernel, self.scale)
            measurements.append(
                {
                    "pair": op.key,
                    "exec_seconds": float(m.exec_seconds),
                    "avg_power_w": float(m.avg_power_w),
                    "energy_j": float(m.energy_j),
                    "degraded": bool(m.degraded),
                }
            )
        return {
            "kind": self.kind,
            "gpu": self.gpu.name,
            "benchmark": self.kernel.name,
            "scale": float(self.scale),
            "profiled": True,
            "counters": {name: float(v) for name, v in totals.items()},
            "measurements": measurements,
        }

    def __str__(self) -> str:
        return f"dataset({self.gpu.name}, {self.kernel.name}, x{self.scale:g})"


# ----------------------------------------------------------------------
# unit-list builders
# ----------------------------------------------------------------------

def _normalize_plan(faults: FaultPlan | None) -> FaultPlan | None:
    """Drop null plans so they cannot split the result cache."""
    if faults is None or faults.is_null:
        return None
    return faults


def sweep_units(
    gpu: GPUSpec,
    benchmarks: Sequence[KernelSpec],
    scale: float = 1.0,
    seed: int | None = None,
    faults: FaultPlan | None = None,
    ctx: "RunContext | None" = None,
) -> list[SweepUnit]:
    """Decompose a Section III sweep into benchmark-major unit order.

    ``ctx`` supplies the session's (seed, fault plan) in one argument;
    the loose kwargs remain for direct unit construction in tests.
    Units deliberately carry those as plain data fields — a context
    holds live resources and must not leak into worker pickles.
    """
    if ctx is not None:
        seed, faults = ctx.seed, ctx.faults
    faults = _normalize_plan(faults)
    return [
        SweepUnit(
            gpu=gpu,
            kernel=bench,
            seed=seed,
            faults=faults,
            pair=op.key,
            scale=scale,
        )
        for bench in benchmarks
        for op in gpu.operating_points()
    ]


def dataset_units(
    gpu: GPUSpec,
    benchmarks: Sequence[KernelSpec],
    pairs: Sequence[str] | None = None,
    seed: int | None = None,
    profiler: CudaProfiler | None = None,
    faults: FaultPlan | None = None,
    ctx: "RunContext | None" = None,
) -> list[DatasetUnit]:
    """Decompose a Section IV dataset build into (benchmark, size) units.

    ``ctx`` supplies (seed, fault plan, profiler override) in one
    argument; the loose kwargs remain for direct unit construction in
    tests.
    """
    if ctx is not None:
        seed, faults = ctx.seed, ctx.faults
        if profiler is None:
            profiler = ctx.profiler
    if profiler is None:
        profiler = CudaProfiler(seed=seed)
    faults = _normalize_plan(faults)
    return [
        DatasetUnit(
            gpu=gpu,
            kernel=bench,
            seed=seed,
            faults=faults,
            scale=scale,
            pairs=tuple(pairs) if pairs is not None else None,
            profiler_seed=profiler.seed,
            noise_scale=profiler.noise_scale_override,
            bias_cv=profiler.bias_cv_override,
        )
        for bench in benchmarks
        for scale in bench.modeling_sizes
    ]
