"""Fast (batch-path) evaluation of campaign work units.

The scalar path executes each unit under a worker-local telemetry
context, recording spans and counters.  When the batch is running
*without* telemetry — every timed bench invocation, every plain
``sweep.run`` / ``dataset.build`` call — that bookkeeping is pure
overhead, and the unit's payload is a deterministic function of
(unit spec, seed).  This module computes exactly that payload through
the columnar batch layer: vectorized stream seeding and per-cell
memoization via :func:`~repro.instruments.batch.shared_batch_measurer`.

Scope and safety:

* only fault-free :class:`SweepUnit` / :class:`DatasetUnit` instances
  are batchable (:func:`is_batchable`) — fault plans are per-attempt
  and stateful, so they keep the scalar retry loop;
* payload parity with ``unit.execute()`` is byte-exact
  (tests/test_batch_parity.py asserts it over random grids);
* any exception from the fast path (invalid pair, profile too short,
  ...) is the caller's signal to fall back to the scalar path, which
  reproduces the error with the exact scalar semantics.
"""

from __future__ import annotations

from typing import Any

from repro.execution.units import (
    DatasetUnit,
    SweepUnit,
    WorkUnit,
    measurement_to_payload,
)
from repro.fleet.units import FleetShardUnit
from repro.instruments.batch import BatchMeasurer, shared_batch_measurer

#: The profiler-failure reason string (mirrors CudaProfiler.profile).
_PROFILER_REASON = (
    "CUDA Profiler failed to analyze {name!r} "
    "(as reported in the paper, Section IV-A)"
)


def is_batchable(unit: WorkUnit) -> bool:
    """Whether the unit can take the fast batch path."""
    if isinstance(unit, FleetShardUnit):
        # A fleet shard's execute() is already a pure columnar
        # computation (per-device BatchSimulator grids, no telemetry or
        # instrument state), so the fast path runs it directly.
        return unit.faults is None
    return isinstance(unit, (SweepUnit, DatasetUnit)) and unit.faults is None


def prepare_units(units: "list[WorkUnit]") -> None:
    """Vector-seed every stream a list of batchable units will draw.

    Best-effort: units whose streams cannot be enumerated (e.g. an
    invalid frequency pair) are skipped here and surface their error
    when evaluated.
    """
    measure_cells: dict[int, tuple[BatchMeasurer, list]] = {}
    profile_cells: dict[tuple[int, int | None], tuple[BatchMeasurer, list]] = {}
    for unit in units:
        if not is_batchable(unit):
            continue
        measurer = shared_batch_measurer(unit.gpu, unit.seed)
        try:
            if isinstance(unit, SweepUnit):
                cells = [
                    (unit.kernel, unit.scale, unit.gpu.operating_point(unit.pair))
                ]
            else:
                if not unit.kernel.profiler_ok:
                    continue
                key = (id(measurer), unit.profiler_seed)
                entry = profile_cells.get(key)
                if entry is None:
                    entry = profile_cells[key] = (measurer, [])
                entry[1].append((unit.kernel, unit.scale))
                cells = [
                    (unit.kernel, unit.scale, op)
                    for op in unit._operating_points()
                ]
                cells.append(
                    (unit.kernel, unit.scale, unit.gpu.operating_point("H-H"))
                )
        except Exception:
            continue
        entry = measure_cells.get(id(measurer))
        if entry is None:
            entry = measure_cells[id(measurer)] = (measurer, [])
        entry[1].extend(cells)
    for measurer, cells in measure_cells.values():
        measurer.prepare(cells)
    for (_, profiler_seed), (measurer, cells) in profile_cells.items():
        measurer.prepare_profiles(cells, profiler_seed=profiler_seed)


def evaluate_fast(unit: WorkUnit) -> dict[str, Any]:
    """Compute a batchable unit's payload through the batch layer.

    Byte-identical to ``unit.execute()`` for fault-free units.  Raises
    whatever the batch layer raises; callers fall back to the scalar
    path on any exception.
    """
    if isinstance(unit, SweepUnit):
        return _evaluate_sweep(unit)
    if isinstance(unit, DatasetUnit):
        return _evaluate_dataset(unit)
    if isinstance(unit, FleetShardUnit):
        return unit.execute()
    raise TypeError(f"unit kind {unit.kind!r} has no batch path")


def _evaluate_sweep(unit: SweepUnit) -> dict[str, Any]:
    measurer = shared_batch_measurer(unit.gpu, unit.seed)
    op = unit.gpu.operating_point(unit.pair)
    measurement = measurer.measure(unit.kernel, unit.scale, op)
    payload = measurement_to_payload(measurement)
    payload["kind"] = unit.kind
    return payload


def _evaluate_dataset(unit: DatasetUnit) -> dict[str, Any]:
    if not unit.kernel.profiler_ok:
        return {
            "kind": unit.kind,
            "gpu": unit.gpu.name,
            "benchmark": unit.kernel.name,
            "scale": float(unit.scale),
            "profiled": False,
            "reason": _PROFILER_REASON.format(name=unit.kernel.name),
            "counters": {},
            "measurements": [],
        }
    measurer = shared_batch_measurer(unit.gpu, unit.seed)
    totals = measurer.counter_totals(
        unit.kernel,
        unit.scale,
        unit.gpu.operating_point("H-H"),
        profiler_seed=unit.profiler_seed,
        noise_scale=unit.noise_scale,
        bias_cv=unit.bias_cv,
    )
    measurements = []
    for op in unit._operating_points():
        m = measurer.measure(unit.kernel, unit.scale, op)
        measurements.append(
            {
                "pair": op.key,
                "exec_seconds": float(m.exec_seconds),
                "avg_power_w": float(m.avg_power_w),
                "energy_j": float(m.energy_j),
                "degraded": bool(m.degraded),
            }
        )
    return {
        "kind": unit.kind,
        "gpu": unit.gpu.name,
        "benchmark": unit.kernel.name,
        "scale": float(unit.scale),
        "profiled": True,
        "counters": {name: float(v) for name, v in totals.items()},
        "measurements": measurements,
    }
