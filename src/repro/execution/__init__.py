"""Parallel campaign execution engine.

Decomposes campaigns into independent work units, runs them through a
pluggable executor (in-process or process pool) with bounded retry, and
memoizes results in a content-addressed on-disk cache so interrupted or
repeated campaigns resume at work-unit granularity.  A write-ahead run
journal, per-unit timeout watchdog, circuit breakers and graceful
shutdown make long campaigns durable (see ``docs/ROBUSTNESS.md``).
"""

from repro.execution.cache import ResultCache, atomic_write_text
from repro.execution.engine import (
    ExecutionConfig,
    ExecutionError,
    ExecutionResult,
    ExecutionStats,
    ProcessExecutor,
    ProgressEvent,
    SerialExecutor,
    UnitFailure,
    make_executor,
    run_units,
)
from repro.execution.journal import RunJournal
from repro.execution.resilience import (
    BreakerBook,
    GracefulShutdown,
    call_with_timeout,
    clear_shutdown,
    request_shutdown,
    shutdown_requested,
)
from repro.execution.units import (
    DatasetUnit,
    SweepUnit,
    WorkUnit,
    dataset_units,
    measurement_from_payload,
    measurement_to_payload,
    sweep_units,
)

__all__ = [
    "BreakerBook",
    "DatasetUnit",
    "ExecutionConfig",
    "ExecutionError",
    "ExecutionResult",
    "ExecutionStats",
    "GracefulShutdown",
    "ProcessExecutor",
    "ProgressEvent",
    "ResultCache",
    "RunJournal",
    "SerialExecutor",
    "SweepUnit",
    "UnitFailure",
    "WorkUnit",
    "atomic_write_text",
    "call_with_timeout",
    "clear_shutdown",
    "dataset_units",
    "make_executor",
    "measurement_from_payload",
    "measurement_to_payload",
    "request_shutdown",
    "run_units",
    "shutdown_requested",
    "sweep_units",
]
