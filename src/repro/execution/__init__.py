"""Parallel campaign execution engine.

Decomposes campaigns into independent work units, runs them through a
pluggable executor (in-process or process pool) with bounded retry, and
memoizes results in a content-addressed on-disk cache so interrupted or
repeated campaigns resume at work-unit granularity.
"""

from repro.execution.cache import ResultCache, atomic_write_text
from repro.execution.engine import (
    ExecutionConfig,
    ExecutionError,
    ExecutionResult,
    ExecutionStats,
    ProcessExecutor,
    ProgressEvent,
    SerialExecutor,
    UnitFailure,
    make_executor,
    run_units,
)
from repro.execution.units import (
    DatasetUnit,
    SweepUnit,
    WorkUnit,
    dataset_units,
    measurement_from_payload,
    measurement_to_payload,
    sweep_units,
)

__all__ = [
    "DatasetUnit",
    "ExecutionConfig",
    "ExecutionError",
    "ExecutionResult",
    "ExecutionStats",
    "ProcessExecutor",
    "ProgressEvent",
    "ResultCache",
    "SerialExecutor",
    "SweepUnit",
    "UnitFailure",
    "WorkUnit",
    "atomic_write_text",
    "dataset_units",
    "make_executor",
    "measurement_from_payload",
    "measurement_to_payload",
    "run_units",
    "sweep_units",
]
