"""Write-ahead run journal: durable unit outcomes for checkpoint/resume.

A :class:`RunJournal` is an append-only JSONL file recording what every
work unit of a campaign actually did — success, cache hit, failure or
quarantine — keyed by the unit's content-address (``cache_key``).  Each
record is flushed and ``fsync``\\ ed before the engine moves on, so a
campaign killed at any instant (SIGKILL included) leaves a journal that
reconstructs everything already settled:

* ``ok`` records replay from the result cache with their recorded
  attempt counts, so a resumed run re-earns the health accounting of
  the interrupted one without re-burning retry budgets;
* ``hit`` records replay as cache hits;
* ``fail`` and ``quarantined`` records replay as the same
  :class:`~repro.execution.engine.UnitFailure`\\ s (and exclusions)
  without re-executing doomed units;
* a unit with *no* record re-executes from scratch — even if a worker
  managed to cache its payload before the crash — because an
  unjournaled outcome was never acknowledged by the parent.

The file format is self-describing: a header line followed by one JSON
object per record.  A torn trailing line (the crash happened mid-write)
is truncated away on resume, never parsed.  When the same key appears
more than once the *last* record wins — the engine re-journals a unit
when a circuit breaker converts its raw outcome into a quarantine, so
replay self-heals to the canonical decision.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, TextIO

JOURNAL_FORMAT = "repro.journal"
JOURNAL_VERSION = 1

#: Statuses a unit record may carry.
UNIT_STATUSES = ("ok", "hit", "fail", "quarantined")


class RunJournal:
    """Append-only, fsync'd JSONL record of work-unit outcomes.

    Parameters
    ----------
    path:
        The journal file (``journal.jsonl`` under the campaign
        directory).
    resume:
        ``False`` (a fresh run) truncates any existing journal and
        writes a new header.  ``True`` replays the existing journal
        into memory — :attr:`resuming` reports whether there was
        anything valid to replay — and appends to it.
    observer:
        Optional callback invoked with each record dict *after* its
        durable append (write + flush + fsync).  The live event bus
        subscribes here so streamed unit records never report a
        completion the journal could still lose.  Observe-only: an
        observer error is swallowed, and replayed records are not
        re-announced.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        resume: bool = False,
        observer: Any = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.observer = observer
        self._handle: TextIO | None = None
        #: Last-wins unit records from a replayed journal, by unit key.
        self._records: dict[str, dict[str, Any]] = {}
        #: Whether this journal replayed prior records (resume mode with
        #: a valid pre-existing journal).
        self.resuming = False
        #: Records appended by this process (observability, tests).
        self.appends = 0
        if resume and self.path.exists():
            self._replay()
        else:
            self._start_fresh()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _start_fresh(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}
        )

    def _replay(self) -> None:
        """Load prior records, truncating any torn trailing line."""
        raw = self.path.read_bytes()
        valid_end = 0
        header_ok = False
        offset = 0
        for line in raw.splitlines(keepends=True):
            end = offset + len(line)
            if not line.endswith(b"\n"):
                break  # torn trailing write: drop it
            try:
                record = json.loads(line)
            except ValueError:
                break  # corrupt line: drop it and everything after
            if not isinstance(record, dict):
                break
            if offset == 0:
                if record.get("format") != JOURNAL_FORMAT:
                    break  # not a journal: start over
                header_ok = True
            elif record.get("type") == "unit" and "key" in record:
                self._records[record["key"]] = record
            offset = valid_end = end
        if not header_ok:
            self._records.clear()
            self._start_fresh()
            return
        if valid_end < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
        self.resuming = True
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def _write_line(self, record: dict[str, Any]) -> None:
        assert self._handle is not None, "journal is closed"
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _notify(self, record: dict[str, Any]) -> None:
        if self.observer is None:
            return
        try:
            self.observer(record)
        except Exception:
            # Observe-only: a broken observer must not fail the append
            # (the record is already durable at this point).
            pass

    def record_unit(
        self,
        key: str,
        status: str,
        attempts: int = 0,
        error_type: str | None = None,
        message: str | None = None,
        permanent: bool = False,
    ) -> None:
        """Durably append one unit outcome (write-ahead of any artifact)."""
        if status not in UNIT_STATUSES:
            raise ValueError(f"unknown journal status {status!r}")
        record = {
            "type": "unit",
            "key": key,
            "status": status,
            "attempts": attempts,
            "error_type": error_type,
            "message": message,
            "permanent": permanent,
        }
        self._write_line(record)
        self._records[key] = record
        self.appends += 1
        self._notify(record)

    def record_breaker(self, cls: str, event: str, failures: int) -> None:
        """Durably append one circuit-breaker state transition."""
        record = {
            "type": "breaker",
            "class": cls,
            "event": event,
            "failures": failures,
        }
        self._write_line(record)
        self.appends += 1
        self._notify(record)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> dict[str, Any] | None:
        """The last recorded outcome for a unit key, if any."""
        return self._records.get(key)

    def __len__(self) -> int:
        return len(self._records)
