"""Parallel campaign execution: executors, retry, cache and progress.

:func:`run_units` is the single entry point: it takes a list of work
units, consults the content-addressed result cache, runs the misses
through a pluggable executor — in-process :class:`SerialExecutor` or a
:class:`ProcessExecutor` built on ``concurrent.futures`` — with bounded
exponential-backoff retry, and returns payloads in *unit order*
regardless of completion order.  Because every noise stream in the
simulation is keyed by experimental coordinates (``repro.rng``), serial
and parallel runs of the same units produce byte-identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ReproError
from repro.execution.cache import ResultCache
from repro.execution.units import WorkUnit


class ExecutionError(ReproError, RuntimeError):
    """A work unit kept failing after its retry budget was exhausted."""


@dataclass(frozen=True)
class ProgressEvent:
    """One completed work unit, reported through the progress callback."""

    unit: WorkUnit
    #: Position of the unit in the submitted list.
    index: int
    #: Units completed so far (cache hits included).
    done: int
    #: Units submitted in total.
    total: int
    #: Whether the result came from the cache.
    cache_hit: bool
    #: Execution attempts this unit took (0 for cache hits).
    attempts: int


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class ExecutionConfig:
    """How a batch of work units should be executed.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` executes in-process.
    cache_dir:
        Root of the content-addressed result cache; ``None`` disables
        caching entirely.
    retries:
        Extra attempts granted to a failing unit before the batch is
        aborted with :class:`ExecutionError`.
    backoff_s:
        Initial retry delay; doubles after every failed attempt.
    callback:
        Invoked once per completed unit (cache hits included).
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    retries: int = 2
    backoff_s: float = 0.05
    callback: ProgressCallback | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff_s}")


@dataclass
class ExecutionStats:
    """What a batch (or a whole campaign) of units actually did."""

    total_units: int = 0
    #: Units measured by an executor (cache misses).
    measured: int = 0
    #: Units served from the result cache.
    cache_hits: int = 0
    #: Cache entries that existed but failed validation.
    corrupt_entries: int = 0
    #: Failed attempts that were retried successfully.
    retries: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of units served from the cache."""
        if self.total_units == 0:
            return 0.0
        return self.cache_hits / self.total_units

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another batch's counters into this one."""
        self.total_units += other.total_units
        self.measured += other.measured
        self.cache_hits += other.cache_hits
        self.corrupt_entries += other.corrupt_entries
        self.retries += other.retries
        self.wall_seconds += other.wall_seconds

    def summary(self) -> str:
        """One-line human-readable account of the batch."""
        return (
            f"{self.total_units} units: {self.measured} measured, "
            f"{self.cache_hits} cache hits"
            f" ({100.0 * self.cache_hit_rate:.0f}%), "
            f"{self.retries} retries, "
            f"{self.corrupt_entries} corrupt entries, "
            f"{self.wall_seconds:.2f}s"
        )


@dataclass(frozen=True)
class ExecutionResult:
    """Payloads (in unit order) plus the batch statistics."""

    payloads: tuple[dict[str, Any], ...]
    stats: ExecutionStats


def _execute_with_retry(
    unit: WorkUnit, retries: int, backoff_s: float
) -> tuple[dict[str, Any], int]:
    """Run one unit with bounded exponential-backoff retry.

    Returns the payload and the number of attempts taken.  Top-level so
    it can be pickled into worker processes.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return unit.execute(), attempts
        except Exception:
            if attempts > retries:
                raise
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** (attempts - 1)))


class SerialExecutor:
    """In-process executor: units complete in submission order."""

    jobs = 1

    def run(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        retries: int,
        backoff_s: float,
    ) -> Iterator[tuple[int, dict[str, Any], int]]:
        for index, unit in pending:
            try:
                payload, attempts = _execute_with_retry(unit, retries, backoff_s)
            except Exception as exc:
                raise ExecutionError(
                    f"{unit} failed after {retries + 1} attempts: {exc}"
                ) from exc
            yield index, payload, attempts


class ProcessExecutor:
    """``ProcessPoolExecutor``-backed executor for CPU-bound campaigns.

    Units complete in arbitrary order; :func:`run_units` restores unit
    order when assembling results.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        retries: int,
        backoff_s: float,
    ) -> Iterator[tuple[int, dict[str, Any], int]]:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_with_retry, unit, retries, backoff_s):
                    (index, unit)
                for index, unit in pending
            }
            for future in as_completed(futures):
                index, unit = futures[future]
                try:
                    payload, attempts = future.result()
                except Exception as exc:
                    raise ExecutionError(
                        f"{unit} failed after {retries + 1} attempts: {exc}"
                    ) from exc
                yield index, payload, attempts


def make_executor(jobs: int):
    """Pick the executor for a worker count (1 means in-process)."""
    return SerialExecutor() if jobs <= 1 else ProcessExecutor(jobs)


def run_units(
    units: Iterable[WorkUnit],
    config: ExecutionConfig | None = None,
) -> ExecutionResult:
    """Execute a batch of work units, consulting the result cache.

    Results come back in unit order whatever the executor's completion
    order was, so parallel and serial runs assemble byte-identical
    datasets and sweep tables.
    """
    if config is None:
        config = ExecutionConfig()
    unit_list = list(units)
    stats = ExecutionStats(total_units=len(unit_list))
    start = time.perf_counter()
    cache = (
        ResultCache(config.cache_dir) if config.cache_dir is not None else None
    )

    results: list[dict[str, Any] | None] = [None] * len(unit_list)
    keys: list[str | None] = [None] * len(unit_list)
    pending: list[tuple[int, WorkUnit]] = []
    done = 0

    def notify(index: int, cache_hit: bool, attempts: int) -> None:
        if config.callback is not None:
            config.callback(
                ProgressEvent(
                    unit=unit_list[index],
                    index=index,
                    done=done,
                    total=len(unit_list),
                    cache_hit=cache_hit,
                    attempts=attempts,
                )
            )

    for index, unit in enumerate(unit_list):
        if cache is not None:
            keys[index] = unit.cache_key()
            payload = cache.get(keys[index])
            if payload is not None:
                results[index] = payload
                stats.cache_hits += 1
                done += 1
                notify(index, cache_hit=True, attempts=0)
                continue
        pending.append((index, unit))

    if pending:
        executor = make_executor(config.jobs)
        for index, payload, attempts in executor.run(
            pending, config.retries, config.backoff_s
        ):
            results[index] = payload
            stats.measured += 1
            stats.retries += attempts - 1
            if cache is not None:
                cache.put(keys[index], payload)
            done += 1
            notify(index, cache_hit=False, attempts=attempts)

    if cache is not None:
        stats.corrupt_entries = cache.corrupt_entries
    stats.wall_seconds = time.perf_counter() - start
    return ExecutionResult(payloads=tuple(results), stats=stats)
