"""Parallel campaign execution: executors, retry, cache and progress.

:func:`run_units` is the single entry point: it takes a list of work
units, consults the content-addressed result cache, runs the misses
through a pluggable executor — in-process :class:`SerialExecutor` or a
:class:`ProcessExecutor` built on ``concurrent.futures`` — with bounded
exponential-backoff retry, and returns payloads in *unit order*
regardless of completion order.  Because every noise stream in the
simulation is keyed by experimental coordinates (``repro.rng``), serial
and parallel runs of the same units produce byte-identical results.

Durability (PR 7): when the config carries a
:class:`~repro.execution.journal.RunJournal`, every unit outcome is
journaled write-ahead (fsync'd before the batch proceeds) and a
*resuming* journal replays settled units — payloads from the cache,
failures and quarantines from the journal — instead of re-executing
them.  Per-unit wall-clock timeouts (``unit_timeout_s``), circuit
breakers (``breaker_threshold``) and graceful-shutdown draining all
run through one canonical settle loop in unit-index order, so serial,
pooled and resumed runs make byte-identical decisions.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import (
    CampaignInterrupted,
    ReproError,
    UnitTimeoutError,
    is_transient,
)
from repro.execution.cache import ResultCache
from repro.execution.resilience import (
    BreakerBook,
    call_with_timeout,
    shutdown_requested,
)
from repro.execution.units import WorkUnit
from repro.faults.runtime import executing_attempt
from repro.telemetry.runtime import NULL_TELEMETRY, Telemetry, using_telemetry

#: Ceiling on the exponential retry backoff (seconds): past this the
#: delay stops doubling, so a deep retry chain cannot sleep unbounded.
DEFAULT_MAX_BACKOFF_S = 8.0


class ExecutionError(ReproError, RuntimeError):
    """A work unit failed: permanently, or past its retry budget."""


@dataclass(frozen=True)
class UnitFailure:
    """One work unit that produced no payload, and why."""

    unit: WorkUnit
    #: Position of the unit in the submitted list.
    index: int
    #: Exception class name of the final error.
    error_type: str
    #: Message of the final error.
    message: str
    #: Execution attempts taken before giving up.
    attempts: int
    #: Whether the error was classified permanent (fail-fast) rather
    #: than a transient fault that exhausted its retry budget.
    permanent: bool
    #: Whether the unit was never attempted because its fault class's
    #: circuit breaker was open (a deterministic quarantine decision).
    quarantined: bool = False

    def describe(self) -> str:
        """Deterministic one-line account, used in exclusion reasons."""
        return f"{self.error_type}: {self.message}"


@dataclass(frozen=True)
class ProgressEvent:
    """One completed work unit, reported through the progress callback."""

    unit: WorkUnit
    #: Position of the unit in the submitted list.
    index: int
    #: Units completed so far (cache hits included).
    done: int
    #: Units submitted in total.
    total: int
    #: Whether the result came from the cache.
    cache_hit: bool
    #: Execution attempts this unit took (0 for cache hits).
    attempts: int
    #: Whether the unit failed (degrade mode only; failed units still
    #: count toward ``done``).
    failed: bool = False


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class ExecutionConfig:
    """How a batch of work units should be executed.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` executes in-process.
    cache_dir:
        Root of the content-addressed result cache; ``None`` disables
        caching entirely.
    retries:
        Extra attempts granted to a unit failing with a *transient*
        error; permanent errors (:func:`repro.errors.is_transient`)
        fail fast without burning the retry budget.
    backoff_s:
        Initial retry delay; doubles after every failed attempt, capped
        at ``max_backoff_s`` and jittered deterministically (the jitter
        is keyed by unit coordinates and attempt number, so serial and
        parallel runs stay byte-identical).
    max_backoff_s:
        Ceiling on the exponential retry delay.
    unit_timeout_s:
        Per-unit wall-clock budget; a unit overrunning it is timed out
        by the watchdog with the *transient*
        :class:`~repro.errors.UnitTimeoutError` (so it is retried, and
        past the retry budget recorded as a failure).  ``None`` (the
        default) disables the watchdog.
    breaker_threshold:
        Permanent failures of one (GPU, benchmark) fault class that
        open its circuit breaker: remaining units of the class are
        quarantined as deterministic exclusions instead of attempted.
        ``None`` (the default) disables breakers entirely.
    shutdown_grace_s:
        How long a graceful shutdown waits for in-flight worker chunks
        to drain before abandoning them.
    journal:
        Optional :class:`~repro.execution.journal.RunJournal` every
        outcome is durably appended to (and replayed from on resume).
    callback:
        Invoked once per completed unit (cache hits included).
    on_error:
        ``"raise"`` (default) aborts the batch with
        :class:`ExecutionError` on the first failed unit; ``"degrade"``
        records a :class:`UnitFailure`, leaves a ``None`` payload hole,
        and keeps going — the graceful-degradation mode fault-injected
        campaigns run under.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` context the batch
        reports into: per-unit spans (worker spans grafted into the
        parent tree), cache/retry/failure counters and wall-time
        histograms.  ``None`` records nothing.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    retries: int = 2
    backoff_s: float = 0.05
    max_backoff_s: float = DEFAULT_MAX_BACKOFF_S
    unit_timeout_s: float | None = None
    breaker_threshold: int | None = None
    shutdown_grace_s: float = 5.0
    journal: Any = None
    callback: ProgressCallback | None = None
    on_error: str = "raise"
    telemetry: Telemetry | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff_s}")
        if self.max_backoff_s < 0:
            raise ValueError(
                f"max_backoff must be >= 0, got {self.max_backoff_s}"
            )
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError(
                f"unit_timeout must be > 0, got {self.unit_timeout_s}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.shutdown_grace_s < 0:
            raise ValueError(
                f"shutdown_grace must be >= 0, got {self.shutdown_grace_s}"
            )
        if self.on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {self.on_error!r}"
            )


@dataclass
class ExecutionStats:
    """What a batch (or a whole campaign) of units actually did."""

    total_units: int = 0
    #: Units measured by an executor (cache misses).
    measured: int = 0
    #: Units served from the result cache.
    cache_hits: int = 0
    #: Cache entries that existed but failed validation.
    corrupt_entries: int = 0
    #: Failed attempts that were retried successfully.
    retries: int = 0
    #: Units that produced no payload (degrade mode only).
    failed: int = 0
    #: Units quarantined by an open circuit breaker (never attempted).
    quarantined: int = 0
    #: Persistent-pool rebuilds forced by crashed or stalled workers
    #: (scheduling-dependent, like the ``pool.rebuilds`` gauge).
    pool_rebuilds: int = 0
    #: Wall time of the whole batch, including scheduling overhead.
    wall_seconds: float = 0.0
    #: Sum of per-unit execution spans (the time workers actually spent
    #: inside units, summed across workers; excludes cache hits and
    #: engine overhead).  Backed by the telemetry span timings, so the
    #: engine's timing signal decomposes instead of being one opaque
    #: wall-clock number.
    busy_seconds: float = 0.0
    #: Circuit-breaker transitions, in canonical (unit-index) order:
    #: ``{"class", "event", "failures"}`` documents.
    breaker_events: list = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of units served from the cache."""
        if self.total_units == 0:
            return 0.0
        return self.cache_hits / self.total_units

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another batch's counters into this one."""
        self.total_units += other.total_units
        self.measured += other.measured
        self.cache_hits += other.cache_hits
        self.corrupt_entries += other.corrupt_entries
        self.retries += other.retries
        self.failed += other.failed
        self.quarantined += other.quarantined
        self.pool_rebuilds += other.pool_rebuilds
        self.wall_seconds += other.wall_seconds
        self.busy_seconds += other.busy_seconds
        self.breaker_events.extend(other.breaker_events)

    def summary(self) -> str:
        """One-line human-readable account of the batch."""
        quarantined = (
            f"{self.quarantined} quarantined, " if self.quarantined else ""
        )
        return (
            f"{self.total_units} units: {self.measured} measured, "
            f"{self.cache_hits} cache hits"
            f" ({100.0 * self.cache_hit_rate:.0f}%), "
            f"{self.retries} retries, "
            f"{self.failed} failed, "
            f"{quarantined}"
            f"{self.corrupt_entries} corrupt entries, "
            f"{self.wall_seconds:.2f}s wall "
            f"({self.busy_seconds:.2f}s in units)"
        )


@dataclass(frozen=True)
class ExecutionResult:
    """Payloads (in unit order) plus the batch statistics.

    In degrade mode a failed unit leaves a ``None`` hole in
    ``payloads`` and a matching entry in ``failures``; ``attempts``
    holds per-unit attempt counts (0 for cache hits) and ``durations``
    per-unit execution spans in seconds (0.0 for cache hits), both in
    unit order.
    """

    payloads: tuple[dict[str, Any] | None, ...]
    stats: ExecutionStats
    failures: tuple[UnitFailure, ...] = ()
    attempts: tuple[int, ...] = ()
    durations: tuple[float, ...] = ()


@dataclass(frozen=True)
class _UnitOutcome:
    """Picklable result of one unit's retry loop (worker -> parent)."""

    payload: dict[str, Any] | None
    attempts: int
    error_type: str | None = None
    message: str | None = None
    permanent: bool = False
    #: Serialized telemetry spans recorded during execution (the unit
    #: span, its attempts, and the instrument operations inside them).
    spans: tuple[dict[str, Any], ...] = ()
    #: Metrics snapshot recorded during execution (fault counters,
    #: meter re-measurements, ...).
    metrics: dict[str, Any] | None = None
    #: Wall duration of the unit span on the worker's clock.
    duration_s: float = 0.0
    #: Whether the executing worker already persisted the payload to the
    #: result cache (the parent then skips its own serialized write and
    #: only compensates the ``cache.puts`` counter).
    cached: bool = False
    #: Whether this outcome was reconstructed from the run journal (and
    #: the result cache) instead of executed — replayed outcomes carry
    #: no spans or metrics and must not re-touch the cache.
    replayed: bool = False


def _retry_delay(
    unit: WorkUnit, attempts: int, backoff_s: float, max_backoff_s: float
) -> float:
    """Capped exponential backoff with deterministic seeded jitter.

    The jitter multiplier (0.5–1.0) is keyed by the unit's
    content-address and the attempt number — pure coordinates, never
    wall clocks — so every schedule (serial, pooled, resumed) sleeps
    the exact same delays and stays byte-identical.
    """
    delay = min(backoff_s * (2 ** (attempts - 1)), max_backoff_s)
    token = f"{unit.cache_key()}:{attempts}".encode("utf-8")
    frac = int.from_bytes(hashlib.sha256(token).digest()[:4], "big") / (
        0xFFFFFFFF
    )
    return delay * (0.5 + 0.5 * frac)


def _execute_with_retry(
    unit: WorkUnit,
    retries: int,
    backoff_s: float,
    unit_timeout_s: float | None = None,
    max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
) -> _UnitOutcome:
    """Run one unit with bounded exponential-backoff retry.

    Transient errors are retried; permanent ones
    (:func:`repro.errors.is_transient`) fail fast without burning the
    retry budget.  Never raises: errors come back as a structured
    outcome so worker processes don't have to pickle exceptions.
    Top-level so it can be pickled into worker processes.

    With ``unit_timeout_s`` set, every attempt runs under the wall-clock
    watchdog (:func:`~repro.execution.resilience.call_with_timeout`);
    overruns count a ``watchdog.timeouts`` metric and retry like any
    transient fault.

    Execution happens under a fresh worker-local telemetry context:
    the unit span (with one child span per attempt, which in turn holds
    the instrument spans the testbed and profiler record) and every
    metric incremented inside the unit travel back to the parent in the
    outcome, keyed by nothing but the unit itself — which is what keeps
    the aggregated counters independent of worker scheduling.
    """
    telemetry = Telemetry()
    payload: dict[str, Any] | None = None
    error_type: str | None = None
    message: str | None = None
    permanent = False
    attempts = 0
    with using_telemetry(telemetry):
        with telemetry.tracer.span(
            str(unit),
            kind="unit",
            unit_kind=unit.kind,
            gpu=unit.gpu.name,
            benchmark=unit.kernel.name,
        ) as unit_span:
            while True:
                attempts += 1
                try:
                    with executing_attempt(attempts), telemetry.tracer.span(
                        f"attempt {attempts}", kind="attempt", attempt=attempts
                    ):
                        if unit_timeout_s is not None:
                            payload = call_with_timeout(
                                unit.execute, unit_timeout_s
                            )
                        else:
                            payload = unit.execute()
                    break
                except Exception as exc:
                    if isinstance(exc, UnitTimeoutError):
                        telemetry.metrics.inc("watchdog.timeouts")
                    permanent = not is_transient(exc)
                    if permanent or attempts > retries:
                        error_type = type(exc).__name__
                        message = str(exc)
                        unit_span.status = "error"
                        break
                    if backoff_s > 0:
                        time.sleep(
                            _retry_delay(
                                unit, attempts, backoff_s, max_backoff_s
                            )
                        )
    return _UnitOutcome(
        payload=payload,
        attempts=attempts,
        error_type=error_type,
        message=message,
        permanent=permanent,
        spans=tuple(telemetry.tracer.documents()),
        metrics=telemetry.metrics.snapshot(),
        duration_s=unit_span.duration_s,
    )


def _execute_fast(unit: WorkUnit, retries: int, backoff_s: float) -> _UnitOutcome:
    """Run one batchable unit through the batch layer, in-process.

    No telemetry is recorded (the fast path only engages when the batch
    runs without telemetry), so the outcome carries no spans and no
    metrics snapshot.  Batchable units are pure fault-free simulation —
    they cannot hang — so the fast path skips the watchdog.  Any
    fast-path error falls back to the scalar retry loop, which
    reproduces it with the exact scalar semantics.
    """
    from repro.execution.batch import evaluate_fast

    start = time.perf_counter()
    try:
        payload = evaluate_fast(unit)
    except Exception:
        return _execute_with_retry(unit, retries, backoff_s)
    return _UnitOutcome(
        payload=payload,
        attempts=1,
        duration_s=time.perf_counter() - start,
    )


class SerialExecutor:
    """In-process executor: units complete in submission order."""

    jobs = 1

    def run(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        retries: int,
        backoff_s: float,
    ) -> Iterator[tuple[int, _UnitOutcome]]:
        for index, unit in pending:
            yield index, _execute_with_retry(unit, retries, backoff_s)


class ProcessExecutor:
    """``ProcessPoolExecutor``-backed executor for CPU-bound campaigns.

    Units complete in arbitrary order; :func:`run_units` restores unit
    order when assembling results.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        retries: int,
        backoff_s: float,
    ) -> Iterator[tuple[int, _UnitOutcome]]:
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(_execute_with_retry, unit, retries, backoff_s):
                    index
                for index, unit in pending
            }
            for future in as_completed(futures):
                yield futures[future], future.result()


def make_executor(jobs: int):
    """Pick the executor for a worker count (1 means in-process)."""
    return SerialExecutor() if jobs <= 1 else ProcessExecutor(jobs)


def _journal_outcome(journal: Any, key: str, outcome: _UnitOutcome) -> None:
    """Durably record one raw executed outcome (write-ahead)."""
    if outcome.payload is not None:
        journal.record_unit(key, "ok", attempts=outcome.attempts)
    else:
        journal.record_unit(
            key,
            "fail",
            attempts=outcome.attempts,
            error_type=outcome.error_type or "Exception",
            message=outcome.message or "",
            permanent=outcome.permanent,
        )


def run_units(
    units: Iterable[WorkUnit],
    config: "ExecutionConfig | Any | None" = None,
) -> ExecutionResult:
    """Execute a batch of work units, consulting the result cache.

    ``config`` is an :class:`ExecutionConfig`, or a
    :class:`~repro.session.RunContext` whose (already normalized)
    execution config is used — the engine entry point speaks the
    session layer without importing it.

    Results come back in unit order whatever the executor's completion
    order was, so parallel and serial runs assemble byte-identical
    datasets and sweep tables.

    Failure semantics follow ``config.on_error``: ``"raise"`` aborts on
    the first failed unit with :class:`ExecutionError`; ``"degrade"``
    collects :class:`UnitFailure` records (with ``None`` payload holes)
    and completes the batch, so fault-injected campaigns account for
    lost work instead of dying.

    The batch settles in three phases.  Phase 0 resolves cache hits
    and — against a resuming journal — replays every journaled unit.
    Phase A executes the remainder (the persistent pool at ``jobs>1``,
    journaling raw outcomes in completion order for durability).  The
    settle loop then walks *all* unsettled units in unit-index order —
    one canonical sequence of circuit-breaker decisions, journal
    records, stats and progress callbacks that is identical for
    serial, pooled and resumed runs.  A graceful shutdown request
    raises :class:`~repro.errors.CampaignInterrupted` after draining
    in-flight work; everything already journaled replays on
    ``--resume``.
    """
    if config is None:
        config = ExecutionConfig()
    else:
        # A RunContext (duck-typed to avoid the engine -> session cycle).
        config = getattr(config, "execution", config)
    telemetry = (
        config.telemetry if config.telemetry is not None else NULL_TELEMETRY
    )
    #: Live event bus (observe-only): publishes progress/phase/incident
    #: envelopes and triggers flight-recorder dumps.  Everything below
    #: is gated on ``bus is not None`` and never alters control flow,
    #: journal bytes or metrics counters.
    bus = getattr(telemetry, "bus", None)
    if shutdown_requested():
        if bus is not None:
            bus.flight_dump("shutdown")
        raise CampaignInterrupted(
            "shutdown requested before batch dispatch"
        )
    unit_list = list(units)
    stats = ExecutionStats(total_units=len(unit_list))
    start = time.perf_counter()
    metrics = telemetry.metrics
    cache = (
        ResultCache(config.cache_dir, metrics=metrics)
        if config.cache_dir is not None
        else None
    )
    journal = config.journal
    resuming = journal is not None and journal.resuming
    breakers = BreakerBook(config.breaker_threshold)

    results: list[dict[str, Any] | None] = [None] * len(unit_list)
    attempts_taken: list[int] = [0] * len(unit_list)
    durations: list[float] = [0.0] * len(unit_list)
    #: Worker metric snapshots, merged in unit order after the batch so
    #: aggregation never depends on completion order.
    worker_metrics: dict[int, dict[str, Any]] = {}
    failures: list[UnitFailure] = []
    keys: list[str | None] = [None] * len(unit_list)
    #: Journal records replayed for settled units of a resumed run
    #: (successes additionally carry their cached payload).
    replayed: dict[int, dict[str, Any]] = {}
    pending: list[tuple[int, WorkUnit]] = []
    done = 0
    metrics.inc("units.total", len(unit_list))

    def notify(
        index: int,
        cache_hit: bool,
        attempts: int,
        failed: bool = False,
        quarantined: bool = False,
    ) -> None:
        if bus is not None:
            # One progress envelope per settled unit, in the canonical
            # settle order (identical at any --jobs), published after
            # any journal append for the unit — so streamed completions
            # are always a subset of what the journal can replay.
            bus.publish(
                "progress",
                {
                    "phase": bus.phase,
                    "unit": str(unit_list[index]),
                    "key": keys[index],
                    "index": index,
                    "done": done,
                    "total": len(unit_list),
                    "cache_hit": cache_hit,
                    "attempts": attempts,
                    "failed": failed,
                    "quarantined": quarantined,
                },
            )
        if config.callback is not None:
            config.callback(
                ProgressEvent(
                    unit=unit_list[index],
                    index=index,
                    done=done,
                    total=len(unit_list),
                    cache_hit=cache_hit,
                    attempts=attempts,
                    failed=failed,
                )
            )

    def serve_hit(index: int, unit: WorkUnit, payload: dict[str, Any],
                  lookup_start: float) -> None:
        nonlocal done
        # Hits get a parent-side span (misses get their real span
        # grafted from the worker below).
        telemetry.tracer.record(
            str(unit),
            kind="unit",
            start_s=lookup_start,
            end_s=telemetry.tracer.now(),
            unit_kind=unit.kind,
            cache_hit=True,
            index=index,
        )
        results[index] = payload
        stats.cache_hits += 1
        done += 1
        notify(index, cache_hit=True, attempts=0)

    # ------------------------------------------------------------------
    # Phase 0: cache hits and journal replay
    # ------------------------------------------------------------------
    for index, unit in enumerate(unit_list):
        if cache is not None or journal is not None:
            keys[index] = unit.cache_key()
        if resuming:
            record = journal.lookup(keys[index])
            if record is not None:
                status = record["status"]
                if status == "hit" and cache is not None:
                    lookup_start = telemetry.tracer.now()
                    payload = cache.get(keys[index])
                    if payload is not None:
                        serve_hit(index, unit, payload, lookup_start)
                        continue
                    # The cache lost the entry: fall through and
                    # re-execute from scratch.
                elif status == "ok":
                    payload = (
                        cache.get(keys[index]) if cache is not None else None
                    )
                    if payload is not None:
                        replayed[index] = {**record, "payload": payload}
                        continue
                    # Journaled success without a cached payload (or no
                    # cache at all): the result is gone, re-execute.
                elif status in ("fail", "quarantined"):
                    replayed[index] = dict(record)
                    continue
            # No (usable) journal record: the outcome was never
            # acknowledged — re-execute fresh, deliberately ignoring
            # any cache entry a worker wrote before the crash.
            pending.append((index, unit))
            continue
        if cache is not None:
            lookup_start = telemetry.tracer.now()
            payload = cache.get(keys[index])
            if payload is not None:
                if journal is not None:
                    journal.record_unit(keys[index], "hit")
                    metrics.inc("journal.appends")
                serve_hit(index, unit, payload, lookup_start)
                continue
        pending.append((index, unit))

    # ------------------------------------------------------------------
    # Phase A: execute the pending units
    # ------------------------------------------------------------------
    pool = None
    outcome_for: dict[int, _UnitOutcome] = {}
    fast_flags: dict[int, bool] = {}
    if pending:
        # Routing: batchable units running *without* telemetry take the
        # columnar fast path (vectorized seeding, memoized cells, no
        # span/metric bookkeeping); with telemetry enabled every unit
        # keeps the scalar recording path, so traced runs — and the
        # bench fingerprints built from their counters — are identical
        # to the pre-batch engine by construction.  At jobs > 1 both
        # kinds dispatch in chunks to the persistent worker pool.
        if not telemetry.enabled:
            from repro.execution.batch import is_batchable, prepare_units

            fast_flags = {i: True for i, unit in pending if is_batchable(unit)}
        if config.jobs > 1:
            from repro.execution.pool import PersistentPoolExecutor

            pool = PersistentPoolExecutor(config.jobs)

            def _pool_rebuilt(info: dict[str, Any]) -> None:
                # A worker crash or stall is exactly the incident the
                # flight recorder exists for: announce and dump.
                bus.publish("pool", info)
                bus.flight_dump("pool-rebuild")

            try:
                for index, outcome in pool.run_pending(
                    unit_list,
                    pending,
                    config.retries,
                    config.backoff_s,
                    fast_flags,
                    str(config.cache_dir) if cache is not None else None,
                    keys,
                    unit_timeout_s=config.unit_timeout_s,
                    max_backoff_s=config.max_backoff_s,
                    grace_s=config.shutdown_grace_s,
                    on_rebuild=_pool_rebuilt if bus is not None else None,
                ):
                    outcome_for[index] = outcome
                    if journal is not None:
                        # Raw write-ahead record in completion order;
                        # the settle loop below re-journals units a
                        # breaker quarantines (last record wins on
                        # replay).
                        _journal_outcome(journal, keys[index], outcome)
                        metrics.inc("journal.appends")
            except CampaignInterrupted:
                if bus is not None:
                    bus.flight_dump("shutdown")
                raise
        elif fast_flags:
            prepare_units([u for i, u in pending if i in fast_flags])

    # ------------------------------------------------------------------
    # The settle loop: one canonical pass in unit-index order.
    # Serial execution happens lazily *inside* this loop, so breaker
    # decisions, journal records and callbacks follow the exact same
    # sequence whether outcomes were computed here, by the pool, or
    # replayed from the journal.
    # ------------------------------------------------------------------
    def apply_breaker_events(events: list[dict[str, Any]]) -> None:
        for event in events:
            stats.breaker_events.append(event)
            if journal is not None:
                # The journal observer re-publishes the durable record
                # on the bus, so no direct publish here (no duplicates).
                journal.record_breaker(
                    event["class"], event["event"], event["failures"]
                )
                metrics.inc("journal.appends")
            elif bus is not None:
                bus.publish(
                    "breaker",
                    {
                        "class": event["class"],
                        "event": event["event"],
                        "failures": event["failures"],
                    },
                )
            if event["event"] == "open":
                metrics.inc("breaker.opens")
                if bus is not None:
                    # An opening breaker quarantines every remaining
                    # unit of its class: one dump per transition, not
                    # one per quarantined unit.
                    bus.flight_dump("breaker-quarantine")

    pending_index = {index for index, _ in pending}
    settle_order = sorted(pending_index | set(replayed))
    for index in settle_order:
        unit = unit_list[index]
        admitted, events = breakers.admit(unit)
        apply_breaker_events(events)
        record = replayed.get(index)
        if not admitted:
            # Quarantine: the unit is excluded deterministically, and
            # any speculative pool execution (workers ran ahead of the
            # canonical order) is discarded — including its cache entry,
            # so cache trees match a serial run that never executed it.
            label = breakers.label(unit)
            failure = UnitFailure(
                unit=unit,
                index=index,
                error_type="CircuitBreakerOpen",
                message=(
                    f"circuit breaker for {label} is open "
                    f"({breakers.failures_for(unit)} permanent failures); "
                    f"unit quarantined"
                ),
                attempts=0,
                permanent=True,
                quarantined=True,
            )
            speculative = outcome_for.pop(index, None)
            if (
                speculative is not None
                and speculative.cached
                and cache is not None
            ):
                cache.discard(keys[index])
            if journal is not None:
                journal.record_unit(
                    keys[index],
                    "quarantined",
                    attempts=0,
                    error_type=failure.error_type,
                    message=failure.message,
                    permanent=True,
                )
                metrics.inc("journal.appends")
            if config.on_error == "raise":
                error = ExecutionError(
                    f"{failure.unit} quarantined: {failure.describe()}"
                )
                error.failure = failure
                raise error
            failures.append(failure)
            stats.quarantined += 1
            done += 1
            notify(
                index, cache_hit=False, attempts=0, failed=True,
                quarantined=True,
            )
            continue
        if record is not None:
            if record["status"] == "ok":
                outcome = _UnitOutcome(
                    payload=record["payload"],
                    attempts=record["attempts"],
                    replayed=True,
                )
            else:
                # "fail" — or a journaled quarantine the current breaker
                # configuration no longer reproduces; either way the
                # recorded failure stands.
                outcome = _UnitOutcome(
                    payload=None,
                    attempts=max(1, record["attempts"]),
                    error_type=record["error_type"] or "Exception",
                    message=record["message"] or "",
                    permanent=bool(record["permanent"]),
                    replayed=True,
                )
        elif index in outcome_for:
            outcome = outcome_for[index]
        else:
            # Serial lazy execution: nothing is dispatched ahead of the
            # canonical order, so a quarantined unit truly never runs
            # and a shutdown request stops the batch between units.
            if shutdown_requested():
                if bus is not None:
                    bus.flight_dump("shutdown")
                raise CampaignInterrupted(
                    f"shutdown requested with {len(unit_list) - done} "
                    f"units unsettled; resume to continue"
                )
            if index in fast_flags:
                outcome = _execute_fast(unit, config.retries, config.backoff_s)
            else:
                outcome = _execute_with_retry(
                    unit,
                    config.retries,
                    config.backoff_s,
                    config.unit_timeout_s,
                    config.max_backoff_s,
                )
            if journal is not None:
                _journal_outcome(journal, keys[index], outcome)
                metrics.inc("journal.appends")
        apply_breaker_events(
            breakers.record(
                unit,
                ok=outcome.payload is not None,
                permanent_failure=outcome.payload is None and outcome.permanent,
                error_type=outcome.error_type,
            )
        )
        attempts_taken[index] = outcome.attempts
        durations[index] = outcome.duration_s
        stats.busy_seconds += outcome.duration_s
        telemetry.tracer.graft(outcome.spans, index=index)
        if outcome.metrics is not None:
            worker_metrics[index] = outcome.metrics
        if outcome.payload is None:
            if bus is not None and outcome.error_type == "UnitTimeoutError":
                # A unit that exhausted its watchdog budget is a crash
                # candidate: capture the recent event window now.
                bus.flight_dump("watchdog-timeout")
            failure = UnitFailure(
                unit=unit,
                index=index,
                error_type=outcome.error_type or "Exception",
                message=outcome.message or "",
                attempts=outcome.attempts,
                permanent=outcome.permanent,
            )
            if config.on_error == "raise":
                if outcome.permanent:
                    detail = (
                        f"{failure.unit} failed permanently "
                        f"(no retry) on attempt {failure.attempts}: "
                        f"{failure.describe()}"
                    )
                else:
                    detail = (
                        f"{failure.unit} failed after "
                        f"{failure.attempts} attempts: "
                        f"{failure.describe()}"
                    )
                error = ExecutionError(detail)
                error.failure = failure
                raise error
            failures.append(failure)
            stats.failed += 1
            stats.retries += outcome.attempts - 1
            done += 1
            notify(index, cache_hit=False, attempts=outcome.attempts, failed=True)
            continue
        results[index] = outcome.payload
        stats.measured += 1
        stats.retries += outcome.attempts - 1
        if cache is not None and not outcome.replayed:
            if outcome.cached:
                # A worker already persisted this result; keep the
                # counter identical to a parent-side write.
                metrics.inc("cache.puts")
            else:
                cache.put(keys[index], outcome.payload)
        done += 1
        notify(index, cache_hit=False, attempts=outcome.attempts)

    if pool is not None:
        stats.pool_rebuilds = pool.stats.rebuilds
        if telemetry.enabled:
            # Gauges, not counters: counters are guaranteed independent
            # of the worker count (and feed the bench fingerprints),
            # while worker-process accounting is scheduling-dependent
            # by nature.
            metrics.gauge("worker.state_loads").set(
                float(pool.stats.state_loads)
            )
            metrics.gauge("pool.rebuilds").set(float(pool.stats.rebuilds))

    if cache is not None:
        stats.corrupt_entries = cache.corrupt_entries
    stats.wall_seconds = time.perf_counter() - start
    failures.sort(key=lambda f: f.index)

    # Aggregate telemetry.  Worker metrics merge in unit-index order —
    # not completion order — so the aggregated counters (and even the
    # float timing sums) are independent of scheduling.
    for index in sorted(worker_metrics):
        metrics.merge(worker_metrics[index])
    metrics.inc("units.measured", stats.measured)
    metrics.inc("units.cache_hits", stats.cache_hits)
    metrics.inc("units.retries", stats.retries)
    metrics.inc("units.failed", stats.failed)
    if stats.quarantined:
        metrics.inc("units.quarantined", stats.quarantined)
    metrics.inc(
        "units.failures_permanent",
        sum(1 for f in failures if f.permanent and not f.quarantined),
    )
    metrics.inc(
        "units.failures_transient",
        sum(1 for f in failures if not f.permanent),
    )
    if telemetry.enabled:
        for duration in durations:
            if duration > 0.0:
                metrics.observe("unit.seconds", duration)
        metrics.observe("batch.wall_seconds", stats.wall_seconds)
        if stats.wall_seconds > 0.0:
            metrics.gauge("batch.units_per_second").set(
                len(unit_list) / stats.wall_seconds
            )
    return ExecutionResult(
        payloads=tuple(results),
        stats=stats,
        failures=tuple(failures),
        attempts=tuple(attempts_taken),
        durations=tuple(durations),
    )
