"""Persistent worker pool with chunked dispatch.

The old parallel path paid three per-unit taxes that swamp ~2 ms units:
a fresh ``ProcessPoolExecutor`` per batch (fork + interpreter boot), one
pickled (unit, args) round trip per unit, and a parent-side serialized
``fsync`` per cache write.  This module replaces all three:

* **one pool per (jobs, units-blob)** — the pool survives across
  ``run_units`` calls with the same unit list (every bench repeat,
  every retry of a campaign), keyed by a digest of the pickled units;
* **initializer preload** — workers unpickle the read-only unit list
  (and with it the arch/kernel tables) exactly once, in the pool
  initializer, and vector-seed the batchable units' noise streams;
  tasks then reference units by position, so per-task pickling is a
  few integers;
* **chunked dispatch** — pending units ship in chunks of roughly
  ``n / (jobs * 4)`` (clamped to [1, 64]), amortizing the submit/result
  round trip while keeping enough chunks in flight for load balance;
* **worker-side cache writes** — each worker persists its own results,
  so the cold path's durable-write latency parallelizes instead of
  serializing in the parent (the parent keeps the ``cache.puts``
  counter by compensating for flagged outcomes).

Worker crashes (``BrokenProcessPool``) are survived: the pool is
rebuilt — re-running the initializer — and unfinished chunks are
resubmitted, within a bounded rebuild budget; past the budget the
remaining units come back as permanent failures.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Iterator, Sequence

from repro.errors import CampaignInterrupted
from repro.execution.resilience import shutdown_requested

#: Chunk-size clamp: at least 1 unit, at most this many per task.
MAX_CHUNK_UNITS = 64

#: Target number of chunks per worker (load-balance headroom).
CHUNKS_PER_WORKER = 4

#: Pool rebuilds tolerated per dispatch before the remaining units are
#: reported as permanent failures.
MAX_POOL_REBUILDS = 2

#: How often the dispatch loop wakes to poll the shutdown flag and the
#: stall deadline while futures are in flight.
POLL_INTERVAL_S = 0.25

#: Slack added on top of the computed per-dispatch deadline before a
#: worker is declared wedged (scheduling, fork and pickling overhead).
DEADLINE_MARGIN_S = 5.0


def chunk_size(pending: int, jobs: int) -> int:
    """Units per chunk for a pending count and worker count."""
    if pending <= 0:
        return 1
    target = -(-pending // (jobs * CHUNKS_PER_WORKER))  # ceil
    return max(1, min(MAX_CHUNK_UNITS, target))


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: The read-only unit list, unpickled once per worker by the initializer.
_WORKER_UNITS: "tuple[Any, ...] | None" = None

#: How many times this worker process loaded the unit/arch state
#: (always 1 — the regression guard the state-load gauge watches).
_WORKER_STATE_LOADS = 0

_WORKER_CACHES: dict[str, Any] = {}


def _worker_init(blob: bytes) -> None:
    """Pool initializer: preload read-only state exactly once.

    Unpickling the blob materializes every unit — and through them the
    arch specs and kernel tables — in this worker; the batchable units'
    noise streams are then vector-seeded so the first task finds a warm
    evaluator instead of paying per-unit seeding.
    """
    global _WORKER_UNITS, _WORKER_STATE_LOADS
    from repro.execution.batch import is_batchable, prepare_units

    _WORKER_UNITS = pickle.loads(blob)
    _WORKER_STATE_LOADS += 1
    prepare_units([u for u in _WORKER_UNITS if is_batchable(u)])


def _worker_cache(cache_dir: str):
    from repro.execution.cache import ResultCache

    cache = _WORKER_CACHES.get(cache_dir)
    if cache is None:
        cache = _WORKER_CACHES[cache_dir] = ResultCache(cache_dir)
    return cache


def _run_chunk(
    positions: Sequence[int],
    retries: int,
    backoff_s: float,
    fast_flags: Sequence[bool],
    cache_dir: str | None,
    keys: Sequence[str | None],
    unit_timeout_s: float | None = None,
    max_backoff_s: float = 8.0,
) -> tuple[int, int, list]:
    """Execute one chunk of preloaded units; returns (pid, loads, results).

    ``positions`` index into the initializer-preloaded unit list.  Fast
    units are evaluated through the batch layer (falling back to the
    scalar retry loop on any error); scalar units run the full
    telemetry-recording retry loop.  With a cache directory, results
    are persisted worker-side and the outcome flagged ``cached`` so the
    parent skips its own serialized write.
    """
    from repro.execution.batch import evaluate_fast
    from repro.execution.engine import _execute_with_retry, _UnitOutcome

    assert _WORKER_UNITS is not None, "pool initializer did not run"
    cache = _worker_cache(cache_dir) if cache_dir is not None else None
    results = []
    for pos, fast, key in zip(positions, fast_flags, keys):
        unit = _WORKER_UNITS[pos]
        outcome = None
        if fast:
            start = time.perf_counter()
            try:
                payload = evaluate_fast(unit)
            except Exception:
                outcome = None  # scalar fallback reproduces the error
            else:
                outcome = _UnitOutcome(
                    payload=payload,
                    attempts=1,
                    duration_s=time.perf_counter() - start,
                )
        if outcome is None:
            outcome = _execute_with_retry(
                unit, retries, backoff_s, unit_timeout_s, max_backoff_s
            )
        if cache is not None and key is not None and outcome.payload is not None:
            cache.put(key, outcome.payload)
            outcome = replace(outcome, cached=True)
        results.append((pos, outcome))
    return os.getpid(), _WORKER_STATE_LOADS, results


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_KEY: tuple[int, str] | None = None


def shutdown_pool() -> None:
    """Tear down the persistent pool (idempotent; registered atexit)."""
    global _POOL, _POOL_KEY
    pool, _POOL, _POOL_KEY = _POOL, None, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pool)


def active_pool_key() -> "tuple[int, str] | None":
    """The (jobs, units-digest) key of the live pool, if any (tests)."""
    return _POOL_KEY


def _get_pool(jobs: int, blob: bytes, digest: str) -> ProcessPoolExecutor:
    global _POOL, _POOL_KEY
    key = (jobs, digest)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(
        max_workers=jobs, initializer=_worker_init, initargs=(blob,)
    )
    _POOL_KEY = key
    return _POOL


@dataclass
class PoolStats:
    """What the persistent pool did for one dispatch."""

    #: Worker state loads observed (one per worker process that served
    #: this dispatch — *not* per unit; the initializer-preload guard).
    state_loads: int = 0
    #: Pool rebuilds forced by worker crashes.
    rebuilds: int = 0


class PersistentPoolExecutor:
    """Executor running pending units on the persistent worker pool.

    Matches the executor protocol ``run_units`` expects — an iterator
    of ``(index, outcome)`` — plus ``stats`` for the state-load gauge.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError(f"persistent pool needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.stats = PoolStats()

    def run_pending(
        self,
        units: Sequence[Any],
        pending: Sequence[tuple[int, Any]],
        retries: int,
        backoff_s: float,
        fast_flags: dict[int, bool],
        cache_dir: str | None,
        keys: Sequence[str | None],
        unit_timeout_s: float | None = None,
        max_backoff_s: float = 8.0,
        grace_s: float = 5.0,
        on_rebuild: Any = None,
    ) -> Iterator[tuple[int, Any]]:
        """Run pending (index, unit) pairs; yields (index, outcome).

        The dispatch loop wakes every :data:`POLL_INTERVAL_S` to notice
        a graceful-shutdown request — unsubmitted chunks are cancelled,
        in-flight ones drain for ``grace_s``, then
        :class:`~repro.errors.CampaignInterrupted` is raised — and,
        when ``unit_timeout_s`` is set, to enforce a whole-dispatch
        deadline as a backstop against workers wedged beyond the
        in-worker watchdog (hung in C code, say).  A stalled dispatch
        is treated like a crashed one: the pool is rebuilt and the
        unfinished chunks resubmitted, within the shared rebuild
        budget.
        """
        from repro.execution.engine import _UnitOutcome

        blob = pickle.dumps(tuple(units), protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        size = chunk_size(len(pending), self.jobs)
        chunks: list[list[int]] = [
            [index for index, _ in pending[at : at + size]]
            for at in range(0, len(pending), size)
        ]
        loads_by_pid: dict[int, int] = {}
        remaining = list(range(len(chunks)))
        while remaining:
            pool = _get_pool(self.jobs, blob, digest)
            futures = {}
            for chunk_id in remaining:
                positions = chunks[chunk_id]
                futures[
                    pool.submit(
                        _run_chunk,
                        positions,
                        retries,
                        backoff_s,
                        [fast_flags.get(i, False) for i in positions],
                        cache_dir,
                        [keys[i] for i in positions],
                        unit_timeout_s,
                        max_backoff_s,
                    )
                ] = chunk_id
            deadline_s = None
            if unit_timeout_s is not None:
                # Worst case for this round if every unit burns its full
                # watchdog budget on every attempt, serialized over the
                # worker count.  The in-worker watchdog keeps real runs
                # far below this; only a wedged worker can reach it.
                units_this_round = sum(len(chunks[cid]) for cid in remaining)
                rounds = -(-units_this_round // self.jobs)  # ceil
                deadline_s = (
                    unit_timeout_s * (retries + 2) * max(1, rounds)
                    + DEADLINE_MARGIN_S
                )
            submitted_at = time.monotonic()
            broken = False
            stalled = False
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done,
                    timeout=POLL_INTERVAL_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    chunk_id = futures[future]
                    try:
                        pid, loads, results = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    loads_by_pid[pid] = loads
                    remaining.remove(chunk_id)
                    yield from results
                if broken:
                    break
                if not_done and shutdown_requested():
                    # Graceful drain: stop dispatch, give in-flight
                    # chunks a grace period, surface what finished.
                    for future in not_done:
                        future.cancel()
                    done, _ = wait(not_done, timeout=grace_s)
                    for future in done:
                        if future.cancelled():
                            continue
                        try:
                            pid, loads, results = future.result()
                        except BrokenProcessPool:
                            continue
                        loads_by_pid[pid] = loads
                        remaining.remove(futures[future])
                        yield from results
                    self.stats.state_loads = sum(loads_by_pid.values())
                    shutdown_pool()
                    unfinished = sum(len(chunks[cid]) for cid in remaining)
                    raise CampaignInterrupted(
                        f"shutdown requested: {unfinished} pooled units "
                        f"undispatched or unfinished after the {grace_s:g}s "
                        f"grace period"
                    )
                if (
                    not_done
                    and deadline_s is not None
                    and time.monotonic() - submitted_at > deadline_s
                ):
                    stalled = True
                    break
            if not remaining:
                break
            if broken or stalled:
                shutdown_pool()
                self.stats.rebuilds += 1
                if on_rebuild is not None:
                    # Observe-only incident hook (the live event bus):
                    # a failing observer must not break the rebuild.
                    try:
                        on_rebuild(
                            {
                                "rebuilds": self.stats.rebuilds,
                                "reason": "broken" if broken else "stalled",
                            }
                        )
                    except Exception:
                        pass
                if self.stats.rebuilds > MAX_POOL_REBUILDS:
                    if broken:
                        error_type = "BrokenProcessPool"
                        message = (
                            "worker process died repeatedly; gave up "
                            f"after {MAX_POOL_REBUILDS} pool rebuilds"
                        )
                    else:
                        error_type = "PoolDeadlineExceeded"
                        message = (
                            "worker stalled past the dispatch deadline; "
                            f"gave up after {MAX_POOL_REBUILDS} pool rebuilds"
                        )
                    for chunk_id in remaining:
                        for pos in chunks[chunk_id]:
                            yield pos, _UnitOutcome(
                                payload=None,
                                attempts=1,
                                error_type=error_type,
                                message=message,
                                permanent=True,
                            )
                    return
        self.stats.state_loads = sum(loads_by_pid.values())
