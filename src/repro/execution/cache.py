"""Content-addressed on-disk cache of work-unit results.

Every completed work unit stores its JSON payload under the hex digest
returned by :meth:`WorkUnit.cache_key`, sharded by the first two digest
characters (``<dir>/ab/abcdef....json``) to keep directory fan-out
bounded on large campaigns.  Entries are written atomically (temp file
plus rename) so a killed campaign can never leave a half-written entry
that later parses as valid JSON.

Reads are defensive: a missing file is a plain miss, while a truncated,
garbled or mislabelled entry counts as *corrupt*, is reported through
:attr:`ResultCache.corrupt_entries`, and falls back to re-measurement
instead of crashing the campaign.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro._version import __version__

ENTRY_FORMAT = "repro.cache-entry"


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write text atomically and durably: ``*.tmp`` sibling, then rename.

    The temporary name carries the writer's PID so concurrent writers
    never clobber each other's scratch file; ``os.replace`` makes the
    final publish atomic on POSIX and Windows alike.  The scratch file
    is fsynced before the rename (and the directory entry after it,
    where the platform allows) so a crash — not just a killed process —
    can never leave a published entry with truncated contents that only
    the corruption fallback catches.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
    except BaseException:
        # Never leave scratch files behind on a failed publish.
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    _fsync_directory(target.parent)
    return target


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush a rename to disk (best effort; no-op where unsupported)."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class ResultCache:
    """Work-unit result store addressed by content hash.

    Parameters
    ----------
    directory:
        Root of the cache tree; created lazily on first write.
    metrics:
        Optional :class:`~repro.telemetry.Metrics` registry the cache
        reports ``cache.hits`` / ``cache.misses`` / ``cache.corrupt`` /
        ``cache.puts`` counters into.
    """

    def __init__(
        self, directory: str | pathlib.Path, metrics=None
    ) -> None:
        self.directory = pathlib.Path(directory)
        #: Entries that existed but failed validation since construction.
        self.corrupt_entries = 0
        self._metrics = metrics

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(name)

    def path_for(self, key: str) -> pathlib.Path:
        """Where a key's entry lives (two-character shard prefix)."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached payload for a key, or ``None`` on a miss.

        Unreadable, truncated or mislabelled entries are counted in
        :attr:`corrupt_entries` and reported as misses, so corruption
        degrades to re-measurement rather than a crash.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._count("cache.misses")
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            self.corrupt_entries += 1
            self._count("cache.corrupt")
            self._count("cache.misses")
            return None
        if (
            not isinstance(document, dict)
            or document.get("format") != ENTRY_FORMAT
            or document.get("key") != key
            or not isinstance(document.get("payload"), dict)
        ):
            self.corrupt_entries += 1
            self._count("cache.corrupt")
            self._count("cache.misses")
            return None
        self._count("cache.hits")
        return document["payload"]

    def put(self, key: str, payload: dict[str, Any]) -> pathlib.Path:
        """Store a payload under its key, atomically."""
        self._count("cache.puts")
        document = {
            "format": ENTRY_FORMAT,
            "version": __version__,
            "key": key,
            "payload": payload,
        }
        return atomic_write_text(self.path_for(key), json.dumps(document))

    def discard(self, key: str) -> None:
        """Remove a key's entry if present (no error, no counter).

        Used when the engine quarantines a unit whose result a pool
        worker had already persisted speculatively: dropping the entry
        keeps the cache tree byte-identical to a serial run that never
        executed the unit at all.
        """
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))
