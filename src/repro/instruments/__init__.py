"""Measurement equipment substrate.

The paper measures *system* power at the wall outlet with a Yokogawa
WT1600 digital power meter (50 ms sampling) and collects workload
statistics with the CUDA Profiler v2.01.  This package reproduces both
instruments plus the host machine they are attached to, and wraps them in
the :class:`~repro.instruments.testbed.Testbed` measurement protocol
(repeat kernels to at least 500 ms so the meter sees >= 10 samples).
"""

from repro.instruments.host import HostSystem
from repro.instruments.powermeter import PowerMeter, PowerPhase, PowerTrace
from repro.instruments.profiler import CudaProfiler
from repro.instruments.testbed import Measurement, Testbed

__all__ = [
    "HostSystem",
    "PowerMeter",
    "PowerPhase",
    "PowerTrace",
    "CudaProfiler",
    "Measurement",
    "Testbed",
]
