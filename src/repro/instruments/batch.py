"""Batch measurement: whole (benchmark x frequency-pair) grids per call.

:class:`BatchMeasurer` is the instruments-layer counterpart of
:class:`~repro.engine.batch.BatchSimulator`: it produces the exact
:class:`~repro.instruments.testbed.Measurement` a fault-free
:class:`~repro.instruments.testbed.Testbed` produces for each grid
cell, and the exact counter totals a
:class:`~repro.instruments.profiler.CudaProfiler` reports — but with
stream seeding vectorized across the grid and every cell memoized, so
warm grids cost dictionary lookups.

Fault injection is deliberately out of scope: injected faults are
per-attempt, stateful, and rare, so faulty units keep the scalar path
(the execution layer routes them there).
"""

from __future__ import annotations

import math

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.batch import BatchSimulator, content_fingerprint
from repro.engine.counters import counter_set
from repro.engine.noise import lognormal_factor
from repro.engine.phases import busy_phase_profile
from repro.engine.simulator import RunRecord
from repro.instruments.host import HostSystem
from repro.instruments.powermeter import PowerMeter, PowerPhase
from repro.instruments.profiler import (
    EXTRAPOLATION_BIAS_CV,
    OBSERVATION_NOISE_SCALE,
)
from repro.instruments.testbed import MIN_MEASURE_WINDOW_S, Measurement
from repro.kernels.profile import KernelSpec
from repro.rng import StreamBank


class BatchMeasurer:
    """Grid-shaped, memoizing counterpart of a fault-free testbed.

    Parameters
    ----------
    gpu:
        The card under test.
    host / meter:
        Instrumentation; defaults match :class:`Testbed`'s defaults.
    seed:
        Optional override of the global noise seed.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        host: HostSystem | None = None,
        meter: PowerMeter | None = None,
        seed: int | None = None,
        ambient_c: float = 25.0,
    ) -> None:
        self.host = host if host is not None else HostSystem()
        self.meter = meter if meter is not None else PowerMeter()
        self.seed = seed
        self.sim = BatchSimulator(gpu, seed=seed, ambient_c=ambient_c)
        self._measurements: dict[tuple, Measurement] = {}
        self._host_factors: dict[int, float] = {}
        #: Extra per-base-seed banks for profiler streams (a dataset
        #: unit's profiler may run under a different seed override).
        self._profiler_banks: dict[int | None, StreamBank] = {}
        self._counter_totals: dict[tuple, dict[str, float]] = {}

    @property
    def gpu(self) -> GPUSpec:
        """The card under test."""
        return self.sim.spec

    # ------------------------------------------------------------------
    # vectorized seeding
    # ------------------------------------------------------------------

    def prepare(
        self, cells: "list[tuple[KernelSpec, float, OperatingPoint]]"
    ) -> None:
        """Vector-seed every stream the given measurement cells draw."""
        self.sim.prepare(cells)
        g = self.gpu.name
        coords: list[tuple] = []
        for kernel, scale, op in cells:
            if self._measure_key(kernel, scale, op) in self._measurements:
                continue
            coords.append(("host-power", g, kernel.name))
            coords.append(("meter", g, kernel.name, scale, op.key))
        self.sim.streams.prepare(coords)

    def prepare_profiles(
        self,
        cells: "list[tuple[KernelSpec, float]]",
        profiler_seed: int | None = None,
    ) -> None:
        """Vector-seed the profiler streams for (kernel, scale) cells."""
        bank = self._profiler_bank(profiler_seed)
        counters = counter_set(self.gpu.traits.counter_set)
        g = self.gpu.name
        coords: list[tuple] = []
        for kernel, scale in cells:
            if not kernel.profiler_ok:
                continue
            coords.append(("counter-bench-scale", g, kernel.name))
            coords.extend(
                ("counter-noise", g, kernel.name, scale, c.name)
                for c in counters
            )
        bank.prepare(coords)

    def _profiler_bank(self, profiler_seed: int | None) -> StreamBank:
        bank = self._profiler_banks.get(profiler_seed)
        if bank is None:
            bank = self._profiler_banks[profiler_seed] = StreamBank(
                profiler_seed
            )
        return bank

    # ------------------------------------------------------------------
    # measurement (mirrors Testbed.measure, fault-free path)
    # ------------------------------------------------------------------

    def _measure_key(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> tuple:
        return (content_fingerprint(kernel), scale, op.key)

    def measure(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> Measurement:
        """One cell's measurement, byte-identical to ``Testbed.measure``."""
        key = self._measure_key(kernel, scale, op)
        m = self._measurements.get(key)
        if m is None:
            m = self._measurements[key] = self._do_measure(kernel, scale, op)
        return m

    def measure_grid(
        self, cells: "list[tuple[KernelSpec, float, OperatingPoint]]"
    ) -> list[Measurement]:
        """Measure a whole grid: vector-seed once, then fill every cell."""
        self.prepare(cells)
        return [self.measure(kernel, scale, op) for kernel, scale, op in cells]

    def _do_measure(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> Measurement:
        record = self.sim.record(kernel, scale, op)
        busy = record.gpu_busy_seconds
        if busy >= MIN_MEASURE_WINDOW_S:
            repeats = 1
        else:
            repeats = max(1, math.ceil(MIN_MEASURE_WINDOW_S / busy))
        phases = self._wall_profile(record, repeats)
        rng = self.sim.streams.stream(
            "meter", self.gpu.name, kernel.name, scale, op.key
        )
        trace = self.meter.record(phases, rng)
        energy_j = trace.energy_j / repeats
        return Measurement(
            gpu=self.gpu,
            kernel=kernel,
            scale=scale,
            op=record.op,
            exec_seconds=record.total_seconds,
            avg_power_w=trace.average_power_w,
            energy_j=energy_j,
            repeats=repeats,
            trace=trace,
            degraded=False,
        )

    def _host_factor(self, kernel: KernelSpec) -> float:
        key = content_fingerprint(kernel)
        factor = self._host_factors.get(key)
        if factor is None:
            host_rng = self.sim.streams.stream(
                "host-power", self.gpu.name, kernel.name
            )
            factor = self._host_factors[key] = lognormal_factor(host_rng, 0.12)
        return factor

    def _wall_profile(
        self, record: RunRecord, repeats: int
    ) -> list[PowerPhase]:
        # Mirrors Testbed._wall_profile exactly.
        host_factor = self._host_factor(record.kernel)
        host_phase_w = self.host.wall_power(
            self.host.active_power_w * host_factor + record.gpu_idle_power_w
        )
        gpu_phase_w = self.host.wall_power(
            self.host.idle_power_w * host_factor + record.gpu_active_power_w
        )
        phases: list[PowerPhase] = []
        for _ in range(repeats):
            if record.idle_seconds > 0:
                phases.append(PowerPhase(record.idle_seconds, host_phase_w))
            phases.extend(
                PowerPhase(p.duration_s, p.watts)
                for p in busy_phase_profile(record, gpu_phase_w)
            )
        return phases

    # ------------------------------------------------------------------
    # profiler (mirrors CudaProfiler.profile, fault-free path)
    # ------------------------------------------------------------------

    def counter_totals(
        self,
        kernel: KernelSpec,
        scale: float,
        op: OperatingPoint,
        profiler_seed: int | None = None,
        noise_scale: float | None = None,
        bias_cv: float | None = None,
    ) -> dict[str, float]:
        """Counter totals, byte-identical to ``CudaProfiler.profile``.

        ``op`` is the point the profiled run executes at (datasets
        profile at the default H-H clocks).  The caller is responsible
        for the ``profiler_ok`` check — this method assumes an
        analyzable benchmark.
        """
        key = (
            content_fingerprint(kernel),
            scale,
            op.key,
            profiler_seed,
            noise_scale,
            bias_cv,
        )
        totals = self._counter_totals.get(key)
        if totals is None:
            totals = self._counter_totals[key] = self._do_profile(
                kernel, scale, op, profiler_seed, noise_scale, bias_cv
            )
        # Copy so callers mutating the payload can't poison the memo.
        return dict(totals)

    def _do_profile(
        self,
        kernel: KernelSpec,
        scale: float,
        op: OperatingPoint,
        profiler_seed: int | None,
        noise_scale: float | None,
        bias_cv: float | None,
    ) -> dict[str, float]:
        spec = self.gpu
        record = self.sim.record(kernel, scale, op)
        ctx = record.context
        counter_set_name = spec.traits.counter_set
        if noise_scale is None:
            noise_scale = OBSERVATION_NOISE_SCALE[counter_set_name]
        if bias_cv is None:
            bias_cv = EXTRAPOLATION_BIAS_CV[counter_set_name]
        bank = self._profiler_bank(profiler_seed)
        bias_rng = bank.stream("counter-bench-scale", spec.name, kernel.name)
        bias = lognormal_factor(bias_rng, bias_cv)
        values: dict[str, float] = {}
        for counter in counter_set(counter_set_name):
            rng = bank.stream(
                "counter-noise", spec.name, kernel.name, scale, counter.name
            )
            value = counter.evaluate(ctx)
            cv = counter.noise_cv * noise_scale
            values[counter.name] = value * bias * lognormal_factor(rng, cv)
        return values


#: Process-local shared measurers, keyed by (card content, seed).
#: Only default host/meter configurations are memoized (as with
#: ``shared_testbed``); custom instrumentation builds its own measurer.
_SHARED: dict[tuple[int, int | None], BatchMeasurer] = {}

_SHARED_CAP = 64


def shared_batch_measurer(
    gpu: GPUSpec, seed: int | None = None
) -> BatchMeasurer:
    """This process's memoized default batch measurer for a card."""
    key = (content_fingerprint(gpu), seed)
    measurer = _SHARED.get(key)
    if measurer is None:
        if len(_SHARED) >= _SHARED_CAP:
            _SHARED.clear()
        measurer = _SHARED[key] = BatchMeasurer(gpu, seed=seed)
    return measurer
