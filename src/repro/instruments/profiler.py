"""CUDA-Profiler-like counter collection.

Collects the generation's full counter set for one benchmark run, with
per-counter observation noise.  Mirrors two properties of the real tool
the paper depends on:

* the *number and kinds* of counters depend on the architecture
  (32 / 74 / 108 — Section IV), and
* some benchmarks simply fail to be analyzed (the paper excludes
  mummergpu, backprop, pathfinder and bfs from the modeling dataset for
  this reason).
"""

from __future__ import annotations

from repro.engine.counters import Counter, counter_set
from repro.engine.noise import lognormal_factor
from repro.engine.simulator import GPUSimulator, RunRecord
from repro.errors import ProfilerError
from repro.kernels.profile import KernelSpec
from repro.rng import stream


#: Per-generation observation-noise multiplier.  Tesla-era profilers
#: sampled counters on a subset of TPC units and extrapolated to the whole
#: chip, so observed values carried much larger error; Fermi widened the
#: sampled set; Kepler counts chip-wide.
OBSERVATION_NOISE_SCALE: dict[str, float] = {
    "tesla": 6.0,
    "fermi": 2.5,
    "kepler": 1.0,
    "gcn": 1.5,
}

#: Per-benchmark extrapolation bias (coefficient of variation).  The
#: sampled-unit extrapolation depends on how evenly a benchmark spreads
#: work across TPCs, so every counter of a benchmark carries a common,
#: benchmark-specific scale error.  This is what breaks cross-benchmark
#: comparability of old profiler data — and with it, the attainable
#: accuracy of the paper's regressions on older GPUs.
EXTRAPOLATION_BIAS_CV: dict[str, float] = {
    "tesla": 0.25,
    "fermi": 0.12,
    "kepler": 0.05,
    "gcn": 0.08,
}


class CudaProfiler:
    """Collects hardware counters for benchmark runs.

    Parameters
    ----------
    seed:
        Optional override of the global noise seed (tests).
    noise_scale:
        Override of the generation's observation-noise multiplier
        (``OBSERVATION_NOISE_SCALE``) — lets experiments ask "what if
        this GPU had a better/worse profiler?".
    bias_cv:
        Override of the per-benchmark extrapolation bias
        (``EXTRAPOLATION_BIAS_CV``).
    injector:
        Optional :class:`~repro.faults.FaultInjector`: lets a fault
        plan fail analysis of *additional* (GPU, benchmark) pairs
        deterministically, generalizing the paper's four failures.
    """

    def __init__(
        self,
        seed: int | None = None,
        noise_scale: float | None = None,
        bias_cv: float | None = None,
        injector=None,
    ) -> None:
        if noise_scale is not None and noise_scale < 0:
            raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
        if bias_cv is not None and bias_cv < 0:
            raise ValueError(f"bias_cv must be >= 0, got {bias_cv}")
        self._seed = seed
        self._noise_scale = noise_scale
        self._bias_cv = bias_cv
        self._injector = injector

    @property
    def seed(self) -> int | None:
        """The noise-seed override, if any."""
        return self._seed

    @property
    def noise_scale_override(self) -> float | None:
        """The observation-noise override, if any."""
        return self._noise_scale

    @property
    def bias_cv_override(self) -> float | None:
        """The extrapolation-bias override, if any."""
        return self._bias_cv

    def counters_for(self, sim: GPUSimulator) -> tuple[Counter, ...]:
        """The counter set the profiler exposes on this card."""
        return counter_set(sim.spec.traits.counter_set)

    def profile(
        self, sim: GPUSimulator, kernel: KernelSpec, scale: float = 1.0
    ) -> dict[str, float]:
        """Run a benchmark under the profiler and return counter totals.

        Raises
        ------
        ProfilerError
            For the benchmarks the real tool failed to analyze.
        """
        if not kernel.profiler_ok:
            raise ProfilerError(
                f"CUDA Profiler failed to analyze {kernel.name!r} "
                f"(as reported in the paper, Section IV-A)"
            )
        if self._injector is not None:
            self._injector.check_profiler(sim.spec.name, kernel.name)
        record: RunRecord = sim.run(kernel, scale)
        ctx = record.context
        counter_set_name = sim.spec.traits.counter_set
        noise_scale = (
            self._noise_scale
            if self._noise_scale is not None
            else OBSERVATION_NOISE_SCALE[counter_set_name]
        )
        bias_cv = (
            self._bias_cv
            if self._bias_cv is not None
            else EXTRAPOLATION_BIAS_CV[counter_set_name]
        )
        bias_rng = stream(
            "counter-bench-scale", sim.spec.name, kernel.name, seed=self._seed
        )
        bias = lognormal_factor(bias_rng, bias_cv)
        values: dict[str, float] = {}
        for counter in self.counters_for(sim):
            rng = stream(
                "counter-noise",
                sim.spec.name,
                kernel.name,
                scale,
                counter.name,
                seed=self._seed,
            )
            value = counter.evaluate(ctx)
            cv = counter.noise_cv * noise_scale
            values[counter.name] = value * bias * lognormal_factor(rng, cv)
        return values
