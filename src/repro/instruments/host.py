"""Host-system model: the machine the GPU is plugged into.

The paper's testbed is an Intel Core i5 2400 desktop running Linux 3.3;
power is measured at the wall, so host idle power and power-supply loss
are constant adders that dilute any GPU-side saving.  This is one of the
mechanisms behind the characterization's shape: a 40 W GPU-side saving
moves the wall reading far less on a 300 W system than the GPU-only
numbers would suggest.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostSystem:
    """DC-side host power model plus PSU efficiency.

    Attributes
    ----------
    idle_power_w:
        Motherboard + CPU + disk power while the CPU merely waits for
        the GPU (blocking synchronization).
    active_power_w:
        Host power while the CPU itself works (input preparation, result
        collection — the benchmark's host phases).
    psu_efficiency:
        AC->DC conversion efficiency of the power supply; the wall meter
        sees DC power divided by this.
    """

    idle_power_w: float = 38.0
    active_power_w: float = 72.0
    psu_efficiency: float = 0.87

    def __post_init__(self) -> None:
        if not 0.0 < self.psu_efficiency <= 1.0:
            raise ValueError(
                f"PSU efficiency must be in (0, 1], got {self.psu_efficiency}"
            )
        if self.idle_power_w <= 0 or self.active_power_w < self.idle_power_w:
            raise ValueError("host power must satisfy 0 < idle <= active")

    def wall_power(self, dc_watts: float) -> float:
        """Wall-outlet power for a given total DC load."""
        if dc_watts < 0:
            raise ValueError(f"DC power must be non-negative, got {dc_watts}")
        return dc_watts / self.psu_efficiency
