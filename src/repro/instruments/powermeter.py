"""Sampling digital power meter (Yokogawa WT1600 stand-in).

The instrument observes voltage and current at the wall outlet every
50 ms and reports their product; energy is the accumulation of those
samples.  Short runs therefore need the paper's repeat-to-500 ms protocol
to produce at least 10 samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MeasurementError

#: The WT1600's minimum data-update interval used in the paper.
SAMPLE_INTERVAL_S = 0.05


@dataclass(frozen=True)
class PowerPhase:
    """A piecewise-constant segment of the wall-power profile."""

    duration_s: float
    watts: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"phase duration must be >= 0, got {self.duration_s}")
        if self.watts < 0:
            raise ValueError(f"phase power must be >= 0, got {self.watts}")


@dataclass(frozen=True)
class PowerTrace:
    """What the meter recorded for one measurement window."""

    #: Instantaneous power readings, one per sample interval (W).
    samples: np.ndarray
    #: Sampling interval (s).
    interval_s: float

    @property
    def num_samples(self) -> int:
        """Number of recorded samples."""
        return int(self.samples.size)

    @property
    def duration_s(self) -> float:
        """Length of the measurement window."""
        return self.num_samples * self.interval_s

    @property
    def average_power_w(self) -> float:
        """Mean of the recorded samples."""
        return float(np.mean(self.samples))

    @property
    def energy_j(self) -> float:
        """Accumulated energy: sum(sample * interval)."""
        return float(np.sum(self.samples) * self.interval_s)


class PowerMeter:
    """Wall-outlet power meter with a fixed sampling interval.

    Parameters
    ----------
    interval_s:
        Sampling interval; the paper's configuration is 50 ms.
    adc_noise_cv:
        Relative per-sample measurement noise of the voltage/current
        channels (the WT1600 is a precision instrument, so this is
        small).
    """

    def __init__(
        self, interval_s: float = SAMPLE_INTERVAL_S, adc_noise_cv: float = 0.004
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval_s}")
        if adc_noise_cv < 0:
            raise ValueError(f"ADC noise must be non-negative, got {adc_noise_cv}")
        self.interval_s = interval_s
        self.adc_noise_cv = adc_noise_cv

    def record(
        self, phases: Sequence[PowerPhase], rng: np.random.Generator
    ) -> PowerTrace:
        """Sample a piecewise-constant power profile.

        Each sample reads the instantaneous power at its sample point;
        the profile must be long enough for at least one sample.
        """
        total = sum(p.duration_s for p in phases)
        n = int(total / self.interval_s)
        if n < 1:
            raise MeasurementError(
                f"profile of {total * 1e3:.1f} ms shorter than one "
                f"{self.interval_s * 1e3:.0f} ms sample; repeat the workload"
            )
        # Sample at interval midpoints.
        times = (np.arange(n) + 0.5) * self.interval_s
        edges = np.cumsum([p.duration_s for p in phases])
        idx = np.searchsorted(edges, times, side="right")
        idx = np.minimum(idx, len(phases) - 1)
        watts = np.array([phases[i].watts for i in idx], dtype=float)
        if self.adc_noise_cv:
            watts = watts * (1.0 + rng.normal(0.0, self.adc_noise_cv, size=n))
        return PowerTrace(samples=np.maximum(watts, 0.0), interval_s=self.interval_s)
