"""Sampling digital power meter (Yokogawa WT1600 stand-in).

The instrument observes voltage and current at the wall outlet every
50 ms and reports their product; energy is the accumulation of those
samples.  Short runs therefore need the paper's repeat-to-500 ms protocol
to produce at least 10 samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MeasurementError

#: The WT1600's minimum data-update interval used in the paper.
SAMPLE_INTERVAL_S = 0.05

#: Minimum valid samples per measurement window: the paper repeats
#: benchmarks to a >= 500 ms busy window precisely so the 50 ms meter
#: collects at least this many.
MIN_VALID_SAMPLES = 10


@dataclass(frozen=True)
class PowerPhase:
    """A piecewise-constant segment of the wall-power profile."""

    duration_s: float
    watts: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"phase duration must be >= 0, got {self.duration_s}")
        if self.watts < 0:
            raise ValueError(f"phase power must be >= 0, got {self.watts}")


@dataclass(frozen=True)
class PowerTrace:
    """What the meter recorded for one measurement window.

    Real meters drop and glitch samples; a trace therefore carries an
    optional validity mask.  Statistics are computed over the valid
    samples only, and the fault-free layout (``valid is None``) keeps
    the exact arithmetic of an unmasked trace, so fault-free runs stay
    byte-identical to earlier versions.
    """

    #: Instantaneous power readings, one per sample interval (W).
    #: Dropped samples read NaN.
    samples: np.ndarray
    #: Sampling interval (s).
    interval_s: float
    #: Per-sample validity; ``None`` means every sample is valid.
    valid: np.ndarray | None = None

    @property
    def num_samples(self) -> int:
        """Number of recorded samples (valid or not)."""
        return int(self.samples.size)

    @property
    def num_valid(self) -> int:
        """Number of samples that survived dropout/glitch screening."""
        if self.valid is None:
            return self.num_samples
        return int(np.count_nonzero(self.valid))

    @property
    def valid_samples(self) -> np.ndarray:
        """The valid readings only."""
        if self.valid is None:
            return self.samples
        return self.samples[self.valid]

    @property
    def meets_quorum(self) -> bool:
        """Whether the window holds the paper's >= 10 valid samples."""
        return self.num_valid >= MIN_VALID_SAMPLES

    @property
    def duration_s(self) -> float:
        """Length of the measurement window."""
        return self.num_samples * self.interval_s

    @property
    def average_power_w(self) -> float:
        """Mean of the valid samples (NaN if none survived)."""
        if self.num_valid == 0:
            return float("nan")
        return float(np.mean(self.valid_samples))

    @property
    def energy_j(self) -> float:
        """Accumulated energy over the window.

        With a complete trace this is ``sum(sample * interval)``; with
        dropped samples the gaps are filled by the valid-sample mean,
        i.e. ``mean(valid) * duration`` (NaN if nothing survived).
        """
        if self.valid is None:
            return float(np.sum(self.samples) * self.interval_s)
        if self.num_valid == 0:
            return float("nan")
        return float(np.mean(self.valid_samples) * self.duration_s)


class PowerMeter:
    """Wall-outlet power meter with a fixed sampling interval.

    Parameters
    ----------
    interval_s:
        Sampling interval; the paper's configuration is 50 ms.
    adc_noise_cv:
        Relative per-sample measurement noise of the voltage/current
        channels (the WT1600 is a precision instrument, so this is
        small).
    """

    def __init__(
        self, interval_s: float = SAMPLE_INTERVAL_S, adc_noise_cv: float = 0.004
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval_s}")
        if adc_noise_cv < 0:
            raise ValueError(f"ADC noise must be non-negative, got {adc_noise_cv}")
        self.interval_s = interval_s
        self.adc_noise_cv = adc_noise_cv

    def record(
        self, phases: Sequence[PowerPhase], rng: np.random.Generator
    ) -> PowerTrace:
        """Sample a piecewise-constant power profile.

        Each sample reads the instantaneous power at its sample point;
        the profile must be long enough for at least one sample.
        """
        total = sum(p.duration_s for p in phases)
        n = int(total / self.interval_s)
        if n < 1:
            raise MeasurementError(
                f"profile of {total * 1e3:.1f} ms shorter than one "
                f"{self.interval_s * 1e3:.0f} ms sample; repeat the workload"
            )
        # Sample at interval midpoints.
        times = (np.arange(n) + 0.5) * self.interval_s
        edges = np.cumsum([p.duration_s for p in phases])
        idx = np.searchsorted(edges, times, side="right")
        idx = np.minimum(idx, len(phases) - 1)
        watts = np.array([phases[i].watts for i in idx], dtype=float)
        if self.adc_noise_cv:
            watts = watts * (1.0 + rng.normal(0.0, self.adc_noise_cv, size=n))
        return PowerTrace(samples=np.maximum(watts, 0.0), interval_s=self.interval_s)
