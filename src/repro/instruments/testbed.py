"""The measurement testbed: host + GPU + wall power meter.

Reproduces the paper's measurement protocol end to end:

1. clocks are configured by reflashing the card's VBIOS (Table III pairs
   only);
2. a benchmark whose GPU phase is shorter than 500 ms is repeated until
   the phase reaches 500 ms, so the 50 ms meter sees at least 10 samples;
3. the meter records wall power (host + GPU, divided by PSU efficiency)
   and accumulates energy;
4. the result is reported as execution time, average system power, and
   per-run energy — the quantities Figs. 1-4 are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.dvfs import ClockLevel, OperatingPoint, coerce_levels, pair_key
from repro.arch.specs import GPUSpec
from repro.engine.phases import busy_phase_profile
from repro.engine.simulator import GPUSimulator, RunRecord
from repro.errors import MeasurementError
from repro.instruments.host import HostSystem
from repro.instruments.powermeter import PowerMeter, PowerPhase, PowerTrace
from repro.engine.noise import lognormal_factor
from repro.kernels.profile import KernelSpec
from repro.rng import stable_hash, stream
from repro.telemetry.runtime import current_telemetry

#: Minimum GPU-busy window the paper enforces before measuring.
MIN_MEASURE_WINDOW_S = 0.5


@dataclass(frozen=True)
class Measurement:
    """One (GPU, benchmark, size, operating point) measurement result."""

    gpu: GPUSpec
    kernel: KernelSpec
    scale: float
    op: OperatingPoint
    #: End-to-end execution time of a single run (s).
    exec_seconds: float
    #: Average wall power over the measurement window (W).
    avg_power_w: float
    #: Wall energy of a single run (J).
    energy_j: float
    #: How many times the run was repeated to fill the meter window.
    repeats: int
    #: The raw meter trace.
    trace: PowerTrace
    #: Whether the meter's sample quorum could not be met even after
    #: re-measurement (fault-injected dropout; never True without faults).
    degraded: bool = False

    @property
    def power_efficiency(self) -> float:
        """Reciprocal of energy — the paper's power-efficiency metric."""
        return 1.0 / self.energy_j

    @property
    def performance(self) -> float:
        """Reciprocal of execution time (the paper's performance axis)."""
        return 1.0 / self.exec_seconds


class Testbed:
    """A host machine with one GPU and a wall power meter.

    Parameters
    ----------
    gpu:
        The card under test.
    host:
        Host-system power model.
    meter:
        The sampling power meter.
    seed:
        Optional override of the global noise seed (tests).
    injector:
        Optional :class:`~repro.faults.FaultInjector` realizing a fault
        plan on this testbed: VBIOS reconfiguration failures in
        :meth:`set_clocks` and meter sample corruption in
        :meth:`measure`.
    strict_quorum:
        With ``True`` (default), a measurement window that cannot reach
        the meter's sample quorum even after re-measurement raises
        :class:`~repro.errors.MeasurementError`; with ``False`` the
        measurement is returned flagged ``degraded`` instead (the
        graceful-degradation path campaign work units use).
    ctx:
        Optional :class:`~repro.session.RunContext` supplying the
        session settings in one argument: its seed (unless ``seed`` is
        given explicitly) and, when the context carries a fault plan
        and no explicit ``injector``, an injector realizing that plan —
        with ``strict_quorum`` defaulting to ``False``, matching the
        graceful-degradation path fault-injected campaign units run
        under.
    """

    #: Not a pytest test class, despite the name matching ``Test*``.
    __test__ = False

    def __init__(
        self,
        gpu: GPUSpec,
        host: HostSystem | None = None,
        meter: PowerMeter | None = None,
        seed: int | None = None,
        ambient_c: float = 25.0,
        injector=None,
        strict_quorum: bool = True,
        ctx=None,
    ) -> None:
        if ctx is not None:
            if seed is None:
                seed = ctx.seed
            if injector is None and ctx.faults is not None:
                from repro.faults.injector import FaultInjector

                injector = FaultInjector(ctx.faults, seed=ctx.seed)
                strict_quorum = False
        self.host = host if host is not None else HostSystem()
        self.meter = meter if meter is not None else PowerMeter()
        self._seed = seed
        self.injector = injector
        self.strict_quorum = strict_quorum
        self.sim = GPUSimulator(gpu, seed=seed, ambient_c=ambient_c)

    @property
    def gpu(self) -> GPUSpec:
        """The card under test."""
        return self.sim.spec

    def set_clocks(self, core: ClockLevel | str, mem: ClockLevel | str) -> None:
        """Flash the VBIOS for a new (core, mem) pair and reboot.

        Under a fault plan the flash can fail
        (:class:`~repro.errors.ReconfigurationError`, transient): the
        engine's retry loop re-attempts the whole unit and the injector
        re-draws deterministically for the new attempt.
        """
        telemetry = current_telemetry()
        core, mem = coerce_levels(core, mem)
        pair = pair_key(core, mem)
        with telemetry.tracer.span(
            "vbios-reconfig", kind="instrument", gpu=self.gpu.name, pair=pair
        ):
            telemetry.metrics.inc("reconfig.flashes")
            if self.injector is not None:
                self.injector.check_reconfiguration(self.gpu.name, pair)
            self.sim.set_clocks(core, mem)

    def measure(self, kernel: KernelSpec, scale: float = 1.0) -> Measurement:
        """Measure one benchmark at the current operating point.

        Enforces the meter's sample quorum (>= 10 valid samples,
        mirroring the paper's 500 ms rule): a window thinned below the
        quorum by injected dropout is re-measured up to the plan's
        ``quorum_retries`` times; a still-short window raises
        :class:`~repro.errors.MeasurementError` under ``strict_quorum``
        and is returned flagged ``degraded`` otherwise.
        """
        telemetry = current_telemetry()
        with telemetry.tracer.span(
            "meter-window",
            kind="instrument",
            gpu=self.gpu.name,
            benchmark=kernel.name,
        ) as window_span:
            record: RunRecord = self.sim.run(kernel, scale)
            repeats = self._repeats_for(record)
            phases = self._wall_profile(record, repeats)
            trace = self._record_with_quorum(record, kernel, scale, phases)
            window_span.attrs["pair"] = record.op.key
            window_span.attrs["repeats"] = repeats
            telemetry.metrics.inc("meter.windows")
        # The repeat-to-500 ms protocol guarantees the quorum on a
        # healthy meter; only injected corruption can violate it, so
        # fault-free testbeds keep the exact legacy behavior.
        degraded = (
            self.injector is not None
            and trace.num_valid < self.injector.plan.quorum
        )
        if degraded:
            telemetry.metrics.inc("meter.quorum_violations")
        if degraded and self.strict_quorum:
            raise MeasurementError(
                f"meter quorum violated for {kernel.name} at "
                f"{record.op.key}: {trace.num_valid} valid samples of "
                f"{trace.num_samples} (need {self.injector.plan.quorum})"
            )
        # Per-run energy: the window holds `repeats` identical runs.
        energy_j = trace.energy_j / repeats
        return Measurement(
            gpu=self.gpu,
            kernel=kernel,
            scale=scale,
            op=record.op,
            exec_seconds=record.total_seconds,
            avg_power_w=trace.average_power_w,
            energy_j=energy_j,
            repeats=repeats,
            trace=trace,
            degraded=degraded,
        )

    def measure_grid(
        self, cells: "list[tuple[KernelSpec, float, OperatingPoint]]"
    ) -> list[Measurement]:
        """Batch API: measure many (kernel, scale, op) cells in one call.

        Fault-free testbeds evaluate the grid columnarly (vectorized
        stream seeding, memoized cells; no spans or counters are
        recorded) with results byte-identical to ``set_clocks`` +
        :meth:`measure` per cell.  Testbeds carrying a fault injector
        keep the scalar protocol — injected faults are per-attempt and
        stateful, so they cannot be batched.
        """
        if self.injector is not None:
            out = []
            for kernel, scale, op in cells:
                self.set_clocks(op.core_level, op.mem_level)
                out.append(self.measure(kernel, scale))
            return out
        from repro.instruments.batch import BatchMeasurer  # import cycle

        batch = self.__dict__.get("_batch")
        if batch is None:
            batch = self.__dict__["_batch"] = BatchMeasurer(
                self.gpu,
                host=self.host,
                meter=self.meter,
                seed=self._seed,
                ambient_c=self.sim.ambient_c,
            )
        return batch.measure_grid(cells)

    def _record_with_quorum(
        self,
        record: RunRecord,
        kernel: KernelSpec,
        scale: float,
        phases: list[PowerPhase],
    ) -> PowerTrace:
        """Record the meter trace, re-measuring until the quorum holds.

        The first attempt draws from the same noise stream as a
        fault-free measurement (byte-identical without faults);
        re-measurements key an extra coordinate so each retry is an
        independent deterministic draw of both ADC noise and injected
        corruption.
        """
        if self.injector is None:
            quorum, quorum_retries = 0, 0
        else:
            quorum = self.injector.plan.quorum
            quorum_retries = self.injector.plan.quorum_retries
        trace: PowerTrace | None = None
        for measure_attempt in range(quorum_retries + 1):
            coords = ["meter", self.gpu.name, kernel.name, scale, record.op.key]
            if measure_attempt > 0:
                coords += ["re-measure", measure_attempt]
                current_telemetry().metrics.inc("meter.re_measurements")
            rng = stream(*coords, seed=self._seed)
            candidate = self.meter.record(phases, rng)
            if self.injector is not None:
                samples, valid = self.injector.corrupt_samples(
                    candidate.samples,
                    self.gpu.name,
                    kernel.name,
                    scale,
                    record.op.key,
                    measure_attempt,
                )
                candidate = PowerTrace(
                    samples=samples, interval_s=candidate.interval_s, valid=valid
                )
            # Keep the best window seen so a degraded result reports
            # the fullest trace the meter managed.
            if trace is None or candidate.num_valid > trace.num_valid:
                trace = candidate
            if trace.num_valid >= quorum:
                break
        assert trace is not None
        return trace

    # ------------------------------------------------------------------
    # protocol internals
    # ------------------------------------------------------------------

    def _repeats_for(self, record: RunRecord) -> int:
        """Paper protocol: repeat the kernel until >= 500 ms of GPU work."""
        busy = record.gpu_busy_seconds
        if busy >= MIN_MEASURE_WINDOW_S:
            return 1
        return max(1, math.ceil(MIN_MEASURE_WINDOW_S / busy))

    def _wall_profile(self, record: RunRecord, repeats: int) -> list[PowerPhase]:
        """Piecewise-constant wall-power profile of the repeated run."""
        phases: list[PowerPhase] = []
        # Host-side power depends on what the benchmark's CPU code does
        # (polling vs blocking sync, input generation) — structure that
        # no GPU counter observes.
        host_rng = stream(
            "host-power", self.gpu.name, record.kernel.name, seed=self._seed
        )
        host_factor = lognormal_factor(host_rng, 0.12)
        host_phase_w = self.host.wall_power(
            self.host.active_power_w * host_factor + record.gpu_idle_power_w
        )
        gpu_phase_w = self.host.wall_power(
            self.host.idle_power_w * host_factor + record.gpu_active_power_w
        )
        for _ in range(repeats):
            if record.idle_seconds > 0:
                # Host work and PCIe transfers: CPU active, GPU idle.
                phases.append(PowerPhase(record.idle_seconds, host_phase_w))
            # The busy window alternates compute- and memory-dominated
            # stretches derived from the run's own timing decomposition
            # (energy-preserving by construction; engine.phases).
            phases.extend(
                PowerPhase(p.duration_s, p.watts)
                for p in busy_phase_profile(record, gpu_phase_w)
            )
        return phases


# ----------------------------------------------------------------------
# worker-safe construction
# ----------------------------------------------------------------------

#: Process-local memo of default-configuration testbeds, keyed by the
#: card's content fingerprint, the noise seed and the fault-injector
#: fingerprint.  Worker processes of a parallel campaign (and the
#: serial path alike) reuse one booted testbed per (GPU, seed, plan)
#: instead of re-parsing the VBIOS per work unit.  Safe because the
#: simulator carries no cross-run state beyond the currently flashed
#: clocks, which every work unit sets explicitly.
_SHARED_TESTBEDS: dict[tuple[int, int | None, int | None], Testbed] = {}


def shared_testbed(gpu: GPUSpec, seed: int | None = None, injector=None) -> Testbed:
    """Return this process's memoized default testbed for a card.

    Only default host/meter configurations are memoized here; build a
    :class:`Testbed` directly for custom instrumentation.  Testbeds
    with a fault injector are memoized separately per (plan, seed)
    fingerprint and run with ``strict_quorum=False`` — work units
    degrade gracefully instead of aborting the campaign.
    """
    fault_key = injector.fingerprint() if injector is not None else None
    key = (stable_hash(repr(gpu)), seed, fault_key)
    testbed = _SHARED_TESTBEDS.get(key)
    if testbed is None:
        testbed = Testbed(
            gpu, seed=seed, injector=injector, strict_quorum=injector is None
        )
        _SHARED_TESTBEDS[key] = testbed
    return testbed
