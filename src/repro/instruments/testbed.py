"""The measurement testbed: host + GPU + wall power meter.

Reproduces the paper's measurement protocol end to end:

1. clocks are configured by reflashing the card's VBIOS (Table III pairs
   only);
2. a benchmark whose GPU phase is shorter than 500 ms is repeated until
   the phase reaches 500 ms, so the 50 ms meter sees at least 10 samples;
3. the meter records wall power (host + GPU, divided by PSU efficiency)
   and accumulates energy;
4. the result is reported as execution time, average system power, and
   per-run energy — the quantities Figs. 1-4 are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.dvfs import ClockLevel, OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.phases import busy_phase_profile
from repro.engine.simulator import GPUSimulator, RunRecord
from repro.instruments.host import HostSystem
from repro.instruments.powermeter import PowerMeter, PowerPhase, PowerTrace
from repro.engine.noise import lognormal_factor
from repro.kernels.profile import KernelSpec
from repro.rng import stable_hash, stream

#: Minimum GPU-busy window the paper enforces before measuring.
MIN_MEASURE_WINDOW_S = 0.5


@dataclass(frozen=True)
class Measurement:
    """One (GPU, benchmark, size, operating point) measurement result."""

    gpu: GPUSpec
    kernel: KernelSpec
    scale: float
    op: OperatingPoint
    #: End-to-end execution time of a single run (s).
    exec_seconds: float
    #: Average wall power over the measurement window (W).
    avg_power_w: float
    #: Wall energy of a single run (J).
    energy_j: float
    #: How many times the run was repeated to fill the meter window.
    repeats: int
    #: The raw meter trace.
    trace: PowerTrace

    @property
    def power_efficiency(self) -> float:
        """Reciprocal of energy — the paper's power-efficiency metric."""
        return 1.0 / self.energy_j

    @property
    def performance(self) -> float:
        """Reciprocal of execution time (the paper's performance axis)."""
        return 1.0 / self.exec_seconds


class Testbed:
    """A host machine with one GPU and a wall power meter.

    Parameters
    ----------
    gpu:
        The card under test.
    host:
        Host-system power model.
    meter:
        The sampling power meter.
    seed:
        Optional override of the global noise seed (tests).
    """

    #: Not a pytest test class, despite the name matching ``Test*``.
    __test__ = False

    def __init__(
        self,
        gpu: GPUSpec,
        host: HostSystem | None = None,
        meter: PowerMeter | None = None,
        seed: int | None = None,
        ambient_c: float = 25.0,
    ) -> None:
        self.host = host if host is not None else HostSystem()
        self.meter = meter if meter is not None else PowerMeter()
        self._seed = seed
        self.sim = GPUSimulator(gpu, seed=seed, ambient_c=ambient_c)

    @property
    def gpu(self) -> GPUSpec:
        """The card under test."""
        return self.sim.spec

    def set_clocks(self, core: ClockLevel | str, mem: ClockLevel | str) -> None:
        """Flash the VBIOS for a new (core, mem) pair and reboot."""
        self.sim.set_clocks(core, mem)

    def measure(self, kernel: KernelSpec, scale: float = 1.0) -> Measurement:
        """Measure one benchmark at the current operating point."""
        record: RunRecord = self.sim.run(kernel, scale)
        repeats = self._repeats_for(record)
        phases = self._wall_profile(record, repeats)
        rng = stream(
            "meter",
            self.gpu.name,
            kernel.name,
            scale,
            record.op.key,
            seed=self._seed,
        )
        trace = self.meter.record(phases, rng)
        # Per-run energy: the window holds `repeats` identical runs.
        energy_j = trace.energy_j / repeats
        return Measurement(
            gpu=self.gpu,
            kernel=kernel,
            scale=scale,
            op=record.op,
            exec_seconds=record.total_seconds,
            avg_power_w=trace.average_power_w,
            energy_j=energy_j,
            repeats=repeats,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # protocol internals
    # ------------------------------------------------------------------

    def _repeats_for(self, record: RunRecord) -> int:
        """Paper protocol: repeat the kernel until >= 500 ms of GPU work."""
        busy = record.gpu_busy_seconds
        if busy >= MIN_MEASURE_WINDOW_S:
            return 1
        return max(1, math.ceil(MIN_MEASURE_WINDOW_S / busy))

    def _wall_profile(self, record: RunRecord, repeats: int) -> list[PowerPhase]:
        """Piecewise-constant wall-power profile of the repeated run."""
        phases: list[PowerPhase] = []
        # Host-side power depends on what the benchmark's CPU code does
        # (polling vs blocking sync, input generation) — structure that
        # no GPU counter observes.
        host_rng = stream(
            "host-power", self.gpu.name, record.kernel.name, seed=self._seed
        )
        host_factor = lognormal_factor(host_rng, 0.12)
        host_phase_w = self.host.wall_power(
            self.host.active_power_w * host_factor + record.gpu_idle_power_w
        )
        gpu_phase_w = self.host.wall_power(
            self.host.idle_power_w * host_factor + record.gpu_active_power_w
        )
        for _ in range(repeats):
            if record.idle_seconds > 0:
                # Host work and PCIe transfers: CPU active, GPU idle.
                phases.append(PowerPhase(record.idle_seconds, host_phase_w))
            # The busy window alternates compute- and memory-dominated
            # stretches derived from the run's own timing decomposition
            # (energy-preserving by construction; engine.phases).
            phases.extend(
                PowerPhase(p.duration_s, p.watts)
                for p in busy_phase_profile(record, gpu_phase_w)
            )
        return phases


# ----------------------------------------------------------------------
# worker-safe construction
# ----------------------------------------------------------------------

#: Process-local memo of default-configuration testbeds, keyed by the
#: card's content fingerprint and the noise seed.  Worker processes of a
#: parallel campaign (and the serial path alike) reuse one booted
#: testbed per (GPU, seed) instead of re-parsing the VBIOS per work
#: unit.  Safe because the simulator carries no cross-run state beyond
#: the currently flashed clocks, which every work unit sets explicitly.
_SHARED_TESTBEDS: dict[tuple[int, int | None], Testbed] = {}


def shared_testbed(gpu: GPUSpec, seed: int | None = None) -> Testbed:
    """Return this process's memoized default testbed for a card.

    Only default host/meter configurations are memoized here; build a
    :class:`Testbed` directly for custom instrumentation.
    """
    key = (stable_hash(repr(gpu)), seed)
    testbed = _SHARED_TESTBEDS.get(key)
    if testbed is None:
        testbed = Testbed(gpu, seed=seed)
        _SHARED_TESTBEDS[key] = testbed
    return testbed
