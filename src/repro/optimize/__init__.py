"""Model-driven DVFS management — the paper's motivating application.

The conclusion of the paper argues that its unified models "would be a
strong basis for the dynamic runtime management of power and performance
for GPU-accelerated systems".  This package closes that loop: a
:class:`~repro.optimize.governor.ModelGovernor` picks the frequency pair
that minimizes *predicted* energy (optionally under a performance
constraint), and :mod:`repro.optimize.oracle` provides the exhaustive-
measurement optimum to score it against.
"""

from repro.optimize.governor import (
    GovernorDecision,
    ModelGovernor,
    OnlineDecision,
    OnlineGovernor,
)
from repro.optimize.oracle import OracleResult, exhaustive_oracle, score_governor
from repro.optimize.scheduler import DVFSScheduler, Job, ScheduleOutcome
from repro.optimize.pareto import ParetoPoint, frontier_pairs, knee_point, pareto_frontier

__all__ = [
    "GovernorDecision",
    "ModelGovernor",
    "OnlineDecision",
    "OnlineGovernor",
    "OracleResult",
    "exhaustive_oracle",
    "score_governor",
    "DVFSScheduler",
    "Job",
    "ScheduleOutcome",
    "ParetoPoint",
    "pareto_frontier",
    "frontier_pairs",
    "knee_point",
]
