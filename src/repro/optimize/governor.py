"""Energy-aware DVFS governors driven by the unified models.

Given one profiled run of a workload (counter totals plus the execution
time and power measured at the default clocks), a governor predicts
time and power at *every* configurable pair using the unified models,
derives predicted energy, and picks the minimum — optionally subject to
a maximum allowed slowdown, in the spirit of Lee et al. [14].

Two governors share that planning core:

* :class:`ModelGovernor` — the offline original: decides once from
  batch-fitted models over a completed dataset.
* :class:`OnlineGovernor` — the closed loop: ingests streaming
  observations into the recursive estimators of
  :mod:`repro.core.online` and re-plans per-phase from the *live*
  model, with a warm-up fallback, hysteresis against oscillation, and
  the estimator's skip-update fault policy underneath — the runtime
  power management the paper's conclusion motivates.

This is precisely the use-case the unified models enable: per-pair prior
models could not extrapolate to pairs they were never trained on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.arch.dvfs import OperatingPoint
from repro.core.dataset import ModelingDataset, Observation
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.core.online import OnlinePerformanceModel, OnlinePowerModel
from repro.engine.counters import CounterDomain
from repro.errors import ModelNotFittedError
from repro.session.spec import GovernorSpec
from repro.telemetry.runtime import current_telemetry

#: The paper's default clocks: what a governor holds before it can plan.
DEFAULT_PAIR = "H-H"

#: Floor applied to predicted execution time (s) and power (W) so
#: predicted energy stays positive and finite whatever the model says.
MIN_PREDICTED_SECONDS = 1e-3
MIN_PREDICTED_POWER_W = 1.0


@dataclass(frozen=True)
class GovernorDecision:
    """Outcome of one governor invocation."""

    #: Chosen operating point.
    op: OperatingPoint
    #: Predicted execution time at the chosen point (s).
    predicted_seconds: float
    #: Predicted average power at the chosen point (W).
    predicted_power_w: float
    #: Predicted energy at every candidate pair (J), keyed by pair.
    predicted_energy_j: dict[str, float]

    @property
    def predicted_energy(self) -> float:
        """Predicted energy of the chosen point (J)."""
        return self.predicted_energy_j[self.op.key]


class ModelGovernor:
    """Selects the energy-minimal frequency pair from model predictions.

    Parameters
    ----------
    power_model / performance_model:
        Fitted unified models for the target GPU.
    max_slowdown:
        Maximum allowed predicted slowdown relative to the fastest
        predicted pair (1.10 = at most 10% slower).  ``None`` disables
        the constraint.
    """

    def __init__(
        self,
        power_model: UnifiedPowerModel,
        performance_model: UnifiedPerformanceModel,
        max_slowdown: float | None = None,
    ) -> None:
        if not (power_model.is_fitted and performance_model.is_fitted):
            raise ModelNotFittedError("governor requires fitted models")
        if max_slowdown is not None and max_slowdown < 1.0:
            raise ValueError(f"max_slowdown must be >= 1.0, got {max_slowdown}")
        self.power_model = power_model
        self.performance_model = performance_model
        self.max_slowdown = max_slowdown

    def predict_pairs(
        self, dataset: ModelingDataset, benchmark: str, scale: float
    ) -> tuple[list[OperatingPoint], np.ndarray, np.ndarray]:
        """Predicted ``(ops, seconds, power)`` at every configurable pair.

        Uses the sample's profiled counters; time and power at each pair
        come exclusively from the models (two-stage: predicted time feeds
        the power model's rate features).  This is the planning core
        :meth:`decide` ranks — exposed separately so fleet placement can
        consume the full per-pair table, not just the argmin.
        """
        sample = [
            o
            for o in dataset.observations
            if o.benchmark == benchmark and o.scale == scale
        ]
        if not sample:
            raise KeyError(f"no observations for {benchmark!r} at scale {scale}")
        profile_obs = sample[0]
        gpu = dataset.gpu
        ops = gpu.operating_points()
        candidates = ModelingDataset(
            gpu=gpu,
            counter_names=dataset.counter_names,
            counter_domains=dataset.counter_domains,
            observations=tuple(
                Observation(
                    benchmark=profile_obs.benchmark,
                    suite=profile_obs.suite,
                    scale=profile_obs.scale,
                    op=op,
                    counters=profile_obs.counters,
                    exec_seconds=1.0,  # replaced by prediction below
                    avg_power_w=0.0,
                    energy_j=1.0,
                )
                for op in ops
            ),
        )
        pred_seconds = np.maximum(
            self.performance_model.predict(candidates), 1e-3
        )
        # Second stage: rebuild candidates with predicted times so the
        # power model's per-second rates are meaningful.
        candidates = ModelingDataset(
            gpu=gpu,
            counter_names=dataset.counter_names,
            counter_domains=dataset.counter_domains,
            observations=tuple(
                Observation(
                    benchmark=o.benchmark,
                    suite=o.suite,
                    scale=o.scale,
                    op=o.op,
                    counters=o.counters,
                    exec_seconds=float(t),
                    avg_power_w=0.0,
                    energy_j=1.0,
                )
                for o, t in zip(candidates.observations, pred_seconds)
            ),
        )
        pred_power = np.maximum(self.power_model.predict(candidates), 1.0)
        return ops, pred_seconds, pred_power

    def decide(
        self, dataset: ModelingDataset, benchmark: str, scale: float
    ) -> GovernorDecision:
        """Pick a pair for one workload sample of a built dataset."""
        ops, pred_seconds, pred_power = self.predict_pairs(
            dataset, benchmark, scale
        )
        pred_energy = pred_seconds * pred_power

        allowed = np.ones(len(ops), dtype=bool)
        if self.max_slowdown is not None:
            fastest = float(np.min(pred_seconds))
            allowed = pred_seconds <= fastest * self.max_slowdown
        masked = np.where(allowed, pred_energy, np.inf)
        best = int(np.argmin(masked))
        return GovernorDecision(
            op=ops[best],
            predicted_seconds=float(pred_seconds[best]),
            predicted_power_w=float(pred_power[best]),
            predicted_energy_j={
                op.key: float(e) for op, e in zip(ops, pred_energy)
            },
        )


# ----------------------------------------------------------------------
# the closed loop
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OnlineDecision:
    """One re-planning outcome of the online governor.

    Always carries a valid operating point of the governed GPU — the
    fallback paths (warm-up, missing profile, degenerate predictions)
    resolve to the (H-H) default rather than emitting nothing.
    """

    benchmark: str
    scale: float
    #: Chosen operating point (never ``None``, never out of range).
    op: OperatingPoint
    #: Why this pair: ``model`` (fresh plan), ``held`` (hysteresis kept
    #: the previous pair), ``warmup`` (estimator below its observation
    #: floor), ``no-profile`` (no counters for the workload) or
    #: ``degenerate`` (model produced no finite energy ordering).
    source: str
    #: Predicted execution time at the chosen point (s); 0.0 on
    #: fallback paths, where the model was not consulted.
    predicted_seconds: float = 0.0
    #: Predicted average power at the chosen point (W); 0.0 on fallback.
    predicted_power_w: float = 0.0
    #: Predicted energy per candidate pair (J); empty on fallback.
    predicted_energy_j: dict[str, float] | None = None
    #: Accepted streaming samples at decision time.
    updates: int = 0

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (decision logs, regret tables)."""
        return {
            "benchmark": self.benchmark,
            "scale": self.scale,
            "pair": self.op.key,
            "source": self.source,
            "predicted_seconds": self.predicted_seconds,
            "predicted_power_w": self.predicted_power_w,
            "predicted_energy_j": (
                dict(sorted(self.predicted_energy_j.items()))
                if self.predicted_energy_j is not None
                else None
            ),
            "updates": self.updates,
        }


class OnlineGovernor:
    """Per-phase DVFS re-planning from a live recursive model.

    The governor wraps one :class:`~repro.core.online.OnlinePowerModel`
    and one :class:`~repro.core.online.OnlinePerformanceModel` and
    closes the loop the offline :class:`ModelGovernor` leaves open:

    * :meth:`observe` ingests each streaming (counters, power, time)
      measurement as the campaign produces it — degraded or non-finite
      samples engage the estimators' skip-update/covariance-inflation
      policy, so faults can starve the model but never corrupt it;
    * :meth:`decide` re-plans the (core, memory) pair for one workload
      phase from the *current* estimate, holding the (H-H) default
      until ``min_observations`` samples have been accepted and keeping
      the previous pair unless a switch promises at least
      ``hysteresis_pct`` predicted-energy improvement — the hysteresis
      that bounds oscillation under noisy streams.

    Every decision is appended to :attr:`decision_log` as a canonical
    document; the log is deterministic in the observation stream, so
    serial and parallel campaigns log byte-identical decisions.

    Parameters
    ----------
    gpu:
        The governed card (supplies the candidate operating points).
    counter_names / counter_domains:
        The feature space of the live models, exactly as a
        :class:`~repro.core.dataset.ModelingDataset` carries them.
    spec:
        Governor tuning (:class:`~repro.session.spec.GovernorSpec`);
        defaults to the online mode's defaults.
    """

    def __init__(
        self,
        gpu,
        counter_names: tuple[str, ...],
        counter_domains: Mapping[str, CounterDomain],
        spec: GovernorSpec | None = None,
    ) -> None:
        if spec is None:
            spec = GovernorSpec(mode="online")
        if spec.mode != "online":
            raise ValueError(
                f"OnlineGovernor requires an online governor spec, "
                f"got mode={spec.mode!r}"
            )
        self.gpu = gpu
        self.spec = spec
        self.power_model = OnlinePowerModel(
            tuple(counter_names), dict(counter_domains),
            forgetting=spec.forgetting,
        )
        self.performance_model = OnlinePerformanceModel(
            tuple(counter_names), dict(counter_domains),
            forgetting=spec.forgetting,
        )
        self.decision_log: list[dict[str, Any]] = []
        self.n_switches = 0
        self.n_fallbacks = 0
        self._last: dict[tuple[str, float], str] = {}

    # ------------------------------------------------------------------
    # streaming ingestion
    # ------------------------------------------------------------------

    @property
    def n_updates(self) -> int:
        """Samples accepted by both live models."""
        return min(
            self.power_model.n_updates, self.performance_model.n_updates
        )

    @property
    def n_skipped(self) -> int:
        """Samples rejected by either live model's fault policy."""
        return max(
            self.power_model.n_skipped, self.performance_model.n_skipped
        )

    @property
    def ready(self) -> bool:
        """Whether the estimator has cleared its warm-up floor."""
        return self.n_updates >= self.spec.min_observations

    def clone(self) -> "OnlineGovernor":
        """An independent controller checkpoint (models, log, hysteresis).

        Decisions taken on the clone never touch the original — the
        bench harness uses this to re-plan from an identical converged
        state on every invocation, and a campaign can use it to
        snapshot a controller before a risky reconfiguration.
        """
        twin = OnlineGovernor.__new__(OnlineGovernor)
        twin.gpu = self.gpu
        twin.spec = self.spec
        twin.power_model = self.power_model.clone()
        twin.performance_model = self.performance_model.clone()
        twin.decision_log = list(self.decision_log)
        twin.n_switches = self.n_switches
        twin.n_fallbacks = self.n_fallbacks
        twin._last = dict(self._last)
        return twin

    def observe(self, observation: Observation) -> bool:
        """Feed one streaming measurement into both live models."""
        metrics = current_telemetry().metrics
        power_ok = self.power_model.observe(observation)
        perf_ok = self.performance_model.observe(observation)
        accepted = power_ok and perf_ok
        if accepted:
            metrics.inc("governor.updates")
        else:
            metrics.inc("governor.skipped_updates")
        return accepted

    # ------------------------------------------------------------------
    # re-planning
    # ------------------------------------------------------------------

    def _fallback(
        self, benchmark: str, scale: float, source: str
    ) -> OnlineDecision:
        self.n_fallbacks += 1
        current_telemetry().metrics.inc("governor.fallbacks")
        return OnlineDecision(
            benchmark=benchmark,
            scale=scale,
            op=self.gpu.operating_point(DEFAULT_PAIR),
            source=source,
            updates=self.n_updates,
        )

    def decide(
        self,
        benchmark: str,
        scale: float,
        counters: Mapping[str, float] | None,
    ) -> OnlineDecision:
        """Re-plan the frequency pair for one workload phase.

        ``counters`` is the workload's profiled counter-total mapping
        (``None`` when the profiler never produced one — e.g. the
        sample was excluded under a fault plan); the live models supply
        time and power at every candidate pair.
        """
        telemetry = current_telemetry()
        with telemetry.tracer.span(
            "governor-replan", kind="governor",
            benchmark=benchmark, scale=scale,
        ):
            decision = self._plan(benchmark, scale, counters)
        self.decision_log.append(decision.document())
        telemetry.metrics.inc("governor.decisions")
        bus = getattr(telemetry, "bus", None)
        if bus is not None:
            bus.publish(
                "governor",
                {
                    "benchmark": benchmark,
                    "scale": scale,
                    "pair": decision.op.key,
                    "source": decision.source,
                },
            )
        return decision

    def _plan(
        self,
        benchmark: str,
        scale: float,
        counters: Mapping[str, float] | None,
    ) -> OnlineDecision:
        if counters is None:
            return self._fallback(benchmark, scale, "no-profile")
        if not self.ready:
            return self._fallback(benchmark, scale, "warmup")

        counters = dict(counters)
        ops = self.gpu.operating_points()
        # Stage one: predicted time per pair (Eq. 2 features need no
        # measured time); stage two: power from rates at the predicted
        # time, exactly as the offline governor does.
        perf_rows = np.array(
            [
                self.performance_model.feature_row(counters, 1.0, op)
                for op in ops
            ]
        )
        pred_seconds = np.maximum(
            self.performance_model.predict_rows(perf_rows),
            MIN_PREDICTED_SECONDS,
        )
        power_rows = np.array(
            [
                self.power_model.feature_row(counters, float(t), op)
                for op, t in zip(ops, pred_seconds)
            ]
        )
        pred_power = np.maximum(
            self.power_model.predict_rows(power_rows), MIN_PREDICTED_POWER_W
        )
        pred_energy = pred_seconds * pred_power

        allowed = np.isfinite(pred_energy)
        if self.spec.max_slowdown is not None and np.any(allowed):
            fastest = float(np.min(pred_seconds[allowed]))
            allowed &= pred_seconds <= fastest * self.spec.max_slowdown
        if not np.any(allowed):
            return self._fallback(benchmark, scale, "degenerate")
        masked = np.where(allowed, pred_energy, np.inf)
        best = int(np.argmin(masked))

        # Hysteresis: keep the previous pair unless the fresh plan
        # promises a big enough predicted-energy improvement.
        key = (benchmark, scale)
        source = "model"
        previous = self._last.get(key)
        if previous is not None and previous != ops[best].key:
            index = {op.key: i for i, op in enumerate(ops)}.get(previous)
            if index is not None and np.isfinite(masked[index]):
                threshold = 1.0 - self.spec.hysteresis_pct / 100.0
                if masked[best] > masked[index] * threshold:
                    best, source = index, "held"
        chosen = ops[best]
        if previous is not None and chosen.key != previous:
            self.n_switches += 1
            current_telemetry().metrics.inc("governor.switches")
        self._last[key] = chosen.key

        return OnlineDecision(
            benchmark=benchmark,
            scale=scale,
            op=chosen,
            source=source,
            predicted_seconds=float(pred_seconds[best]),
            predicted_power_w=float(pred_power[best]),
            predicted_energy_j={
                op.key: float(e)
                for op, e in zip(ops, pred_energy)
                if np.isfinite(e)
            },
            updates=self.n_updates,
        )
