"""Energy-aware DVFS governor driven by the unified models.

Given one profiled run of a workload (counter totals plus the execution
time and power measured at the default clocks), the governor predicts
time and power at *every* configurable pair using the fitted unified
models, derives predicted energy, and picks the minimum — optionally
subject to a maximum allowed slowdown, in the spirit of Lee et al. [14].

This is precisely the use-case the unified models enable: per-pair prior
models could not extrapolate to pairs they were never trained on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.dvfs import OperatingPoint
from repro.core.dataset import ModelingDataset, Observation
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.errors import ModelNotFittedError


@dataclass(frozen=True)
class GovernorDecision:
    """Outcome of one governor invocation."""

    #: Chosen operating point.
    op: OperatingPoint
    #: Predicted execution time at the chosen point (s).
    predicted_seconds: float
    #: Predicted average power at the chosen point (W).
    predicted_power_w: float
    #: Predicted energy at every candidate pair (J), keyed by pair.
    predicted_energy_j: dict[str, float]

    @property
    def predicted_energy(self) -> float:
        """Predicted energy of the chosen point (J)."""
        return self.predicted_energy_j[self.op.key]


class ModelGovernor:
    """Selects the energy-minimal frequency pair from model predictions.

    Parameters
    ----------
    power_model / performance_model:
        Fitted unified models for the target GPU.
    max_slowdown:
        Maximum allowed predicted slowdown relative to the fastest
        predicted pair (1.10 = at most 10% slower).  ``None`` disables
        the constraint.
    """

    def __init__(
        self,
        power_model: UnifiedPowerModel,
        performance_model: UnifiedPerformanceModel,
        max_slowdown: float | None = None,
    ) -> None:
        if not (power_model.is_fitted and performance_model.is_fitted):
            raise ModelNotFittedError("governor requires fitted models")
        if max_slowdown is not None and max_slowdown < 1.0:
            raise ValueError(f"max_slowdown must be >= 1.0, got {max_slowdown}")
        self.power_model = power_model
        self.performance_model = performance_model
        self.max_slowdown = max_slowdown

    def decide(
        self, dataset: ModelingDataset, benchmark: str, scale: float
    ) -> GovernorDecision:
        """Pick a pair for one workload sample of a built dataset.

        Uses the sample's profiled counters; time and power at each pair
        come exclusively from the models (two-stage: predicted time feeds
        the power model's rate features).
        """
        sample = [
            o
            for o in dataset.observations
            if o.benchmark == benchmark and o.scale == scale
        ]
        if not sample:
            raise KeyError(f"no observations for {benchmark!r} at scale {scale}")
        profile_obs = sample[0]
        gpu = dataset.gpu
        ops = gpu.operating_points()
        candidates = ModelingDataset(
            gpu=gpu,
            counter_names=dataset.counter_names,
            counter_domains=dataset.counter_domains,
            observations=tuple(
                Observation(
                    benchmark=profile_obs.benchmark,
                    suite=profile_obs.suite,
                    scale=profile_obs.scale,
                    op=op,
                    counters=profile_obs.counters,
                    exec_seconds=1.0,  # replaced by prediction below
                    avg_power_w=0.0,
                    energy_j=1.0,
                )
                for op in ops
            ),
        )
        pred_seconds = np.maximum(
            self.performance_model.predict(candidates), 1e-3
        )
        # Second stage: rebuild candidates with predicted times so the
        # power model's per-second rates are meaningful.
        candidates = ModelingDataset(
            gpu=gpu,
            counter_names=dataset.counter_names,
            counter_domains=dataset.counter_domains,
            observations=tuple(
                Observation(
                    benchmark=o.benchmark,
                    suite=o.suite,
                    scale=o.scale,
                    op=o.op,
                    counters=o.counters,
                    exec_seconds=float(t),
                    avg_power_w=0.0,
                    energy_j=1.0,
                )
                for o, t in zip(candidates.observations, pred_seconds)
            ),
        )
        pred_power = np.maximum(self.power_model.predict(candidates), 1.0)
        pred_energy = pred_seconds * pred_power

        allowed = np.ones(len(ops), dtype=bool)
        if self.max_slowdown is not None:
            fastest = float(np.min(pred_seconds))
            allowed = pred_seconds <= fastest * self.max_slowdown
        masked = np.where(allowed, pred_energy, np.inf)
        best = int(np.argmin(masked))
        return GovernorDecision(
            op=ops[best],
            predicted_seconds=float(pred_seconds[best]),
            predicted_power_w=float(pred_power[best]),
            predicted_energy_j={
                op.key: float(e) for op, e in zip(ops, pred_energy)
            },
        )
