"""Energy/performance Pareto analysis of the frequency-pair space.

The paper optimizes pure energy (power efficiency), but its Fig. 1-3
discussion constantly weighs energy against performance loss.  The
Pareto frontier makes that trade-off explicit: a pair is dominated if
another pair is both faster *and* cheaper; only the frontier is worth a
runtime manager's consideration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.instruments.testbed import Measurement


@dataclass(frozen=True)
class ParetoPoint:
    """One frequency pair in (time, energy) space."""

    pair: str
    exec_seconds: float
    energy_j: float
    #: Whether no other pair is both faster and cheaper.
    optimal: bool


def pareto_frontier(
    measurements: Mapping[str, Measurement],
) -> list[ParetoPoint]:
    """Classify every measured pair; frontier members first.

    A pair is Pareto-optimal iff no other pair has both strictly lower
    time and strictly lower energy (weak dominance with ties broken in
    favour of the candidate).
    """
    if not measurements:
        raise ValueError("no measurements given")
    items = [
        (key, m.exec_seconds, m.energy_j) for key, m in measurements.items()
    ]
    points = []
    for key, t, e in items:
        dominated = any(
            (t2 < t and e2 <= e) or (t2 <= t and e2 < e)
            for k2, t2, e2 in items
            if k2 != key
        )
        points.append(
            ParetoPoint(
                pair=key, exec_seconds=t, energy_j=e, optimal=not dominated
            )
        )
    points.sort(key=lambda p: (not p.optimal, p.exec_seconds))
    return points


def frontier_pairs(measurements: Mapping[str, Measurement]) -> list[str]:
    """Just the Pareto-optimal pair keys, fastest first."""
    return [p.pair for p in pareto_frontier(measurements) if p.optimal]


def knee_point(measurements: Mapping[str, Measurement]) -> ParetoPoint:
    """The frontier point with the best energy-delay product.

    EDP is the standard scalarization when neither pure speed nor pure
    energy is the goal; the knee is where a runtime manager without an
    explicit constraint should sit.
    """
    frontier = [p for p in pareto_frontier(measurements) if p.optimal]
    return min(frontier, key=lambda p: p.exec_seconds * p.energy_j)
