"""Exhaustive-measurement oracle and governor scoring.

The oracle measures a workload at every configurable pair and reports the
true energy-minimal choice; :func:`score_governor` compares a model-driven
decision against it (energy regret, top-k hit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec
from repro.characterize.sweep import FrequencySweep
from repro.session.context import RunContext
from repro.instruments.testbed import Measurement
from repro.kernels.profile import KernelSpec
from repro.optimize.governor import GovernorDecision


@dataclass(frozen=True)
class OracleResult:
    """Ground-truth energy landscape of one workload."""

    #: Measured energy per pair key (J).
    energy_j: dict[str, float]
    #: Energy-minimal pair key.
    best_pair: str

    @property
    def best_energy_j(self) -> float:
        """Energy at the true optimum."""
        return self.energy_j[self.best_pair]

    def regret(self, pair_key: str) -> float:
        """Relative extra energy of choosing ``pair_key`` over the optimum."""
        return self.energy_j[pair_key] / self.best_energy_j - 1.0

    def rank(self, pair_key: str) -> int:
        """1-based rank of a pair in the true energy ordering."""
        ordered = sorted(self.energy_j, key=self.energy_j.get)
        return ordered.index(pair_key) + 1


def exhaustive_oracle(
    gpu: GPUSpec,
    kernel: KernelSpec,
    scale: float = 1.0,
    seed: int | None = None,
    measurements: dict[str, Measurement] | None = None,
) -> OracleResult:
    """Measure every pair (or reuse a sweep) and return the true optimum."""
    if measurements is None:
        measurements = FrequencySweep(
            gpu, RunContext.resolve(seed=seed)
        ).run_benchmark(kernel, scale)
    energy = {key: m.energy_j for key, m in measurements.items()}
    best = min(energy, key=energy.get)
    return OracleResult(energy_j=energy, best_pair=best)


@dataclass(frozen=True)
class GovernorScore:
    """How well a governor decision did against the oracle."""

    chosen_pair: str
    oracle_pair: str
    #: Relative extra energy vs. the optimum (0.0 = optimal).
    energy_regret: float
    #: 1-based rank of the chosen pair in the true ordering.
    rank: int
    #: Energy saved vs. the (H-H) default, in percent (can be negative).
    saving_vs_default_pct: float


def score_governor(
    decision: GovernorDecision, oracle: OracleResult
) -> GovernorScore:
    """Score a governor's choice against ground truth."""
    chosen = decision.op.key
    default_energy = oracle.energy_j["H-H"]
    chosen_energy = oracle.energy_j[chosen]
    return GovernorScore(
        chosen_pair=chosen,
        oracle_pair=oracle.best_pair,
        energy_regret=oracle.regret(chosen),
        rank=oracle.rank(chosen),
        saving_vs_default_pct=(default_energy / chosen_energy - 1.0) * 100.0,
    )
