"""Online DVFS scheduling over a job stream, with reconfiguration costs.

The paper's BIOS-patching method makes a frequency change *expensive*:
the card must be reflashed and rebooted.  A runtime manager therefore
faces a real trade-off — reconfigure for every job, or amortize one
setting over many.  This module simulates that loop over a stream of
jobs and compares policies:

* ``static-hh`` — never reconfigure (the default everything runs at);
* ``governor`` — reconfigure to the model-chosen pair per job when the
  predicted saving exceeds the switching energy;
* ``oracle`` — per-job true-optimal pair with the same switching costs
  (the lower bound any online policy can approach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.dvfs import coerce_levels
from repro.arch.specs import (
    DEFAULT_RECONFIGURE_POWER_W,
    DEFAULT_RECONFIGURE_SECONDS,
    GPUSpec,
)
from repro.core.dataset import ModelingDataset
from repro.instruments.testbed import Testbed
from repro.kernels.suites import get_benchmark
from repro.optimize.governor import ModelGovernor

#: Cost of one VBIOS reflash + reboot: the card is unusable for this long
#: while the system still burns idle power.  Kept as module aliases for
#: backward compatibility; the per-card truth lives on
#: :attr:`GPUSpec.reconfigure_seconds` / :attr:`GPUSpec.reconfigure_power_w`.
RECONFIGURE_SECONDS = DEFAULT_RECONFIGURE_SECONDS
RECONFIGURE_POWER_W = DEFAULT_RECONFIGURE_POWER_W


@dataclass(frozen=True)
class Job:
    """One unit of work in the stream."""

    benchmark: str
    scale: float


@dataclass(frozen=True)
class ScheduleOutcome:
    """Aggregate result of running a job stream under one policy."""

    policy: str
    total_energy_j: float
    total_seconds: float
    reconfigurations: int
    #: Energy charged per reconfiguration on the card that ran the
    #: stream; defaults to the paper-card cost so pre-fleet outcomes are
    #: unchanged.
    reconfigure_cost_j: float = (
        DEFAULT_RECONFIGURE_SECONDS * DEFAULT_RECONFIGURE_POWER_W
    )

    @property
    def switch_energy_j(self) -> float:
        """Energy spent reflashing."""
        return self.reconfigurations * self.reconfigure_cost_j


class DVFSScheduler:
    """Runs a job stream on a testbed under a reconfiguration policy.

    Parameters
    ----------
    gpu:
        Card to schedule on.
    governor:
        Fitted model governor (used by the ``governor`` policy).
    dataset:
        Modeling dataset supplying the profiled counters the governor
        needs (one profile per workload, as in deployment).
    seed:
        Noise-seed override.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        governor: ModelGovernor | None = None,
        dataset: ModelingDataset | None = None,
        seed: int | None = None,
        amortization_horizon: int = 10,
    ) -> None:
        if amortization_horizon < 1:
            raise ValueError(
                f"amortization_horizon must be >= 1, got {amortization_horizon}"
            )
        self.gpu = gpu
        self.governor = governor
        self.dataset = dataset
        self.seed = seed
        #: How many upcoming jobs a reconfiguration is assumed to serve.
        #: Batch queues with long homogeneous phases justify a large
        #: horizon; fully mixed streams should use 1 (myopic).
        self.amortization_horizon = amortization_horizon

    # ------------------------------------------------------------------

    def _measure(self, testbed: Testbed, job: Job):
        return testbed.measure(get_benchmark(job.benchmark), job.scale)

    def _target_pair(self, job: Job, policy: str, testbed: Testbed) -> str:
        if policy == "static-hh":
            return "H-H"
        if policy == "governor":
            if self.governor is None or self.dataset is None:
                raise ValueError("governor policy needs a governor + dataset")
            decision = self.governor.decide(
                self.dataset, job.benchmark, job.scale
            )
            # Only move if the predicted saving beats the switch cost.
            current = testbed.sim.operating_point.key
            if decision.op.key == current:
                return current
            predicted = decision.predicted_energy_j
            saving = predicted.get(current, float("inf")) - predicted[
                decision.op.key
            ]
            switch = self.gpu.reconfigure_energy_j / self.amortization_horizon
            return decision.op.key if saving > switch else current
        if policy == "oracle":
            best_key, best_energy = None, float("inf")
            current = testbed.sim.operating_point.key
            probe = Testbed(self.gpu, seed=self.seed)
            energies = {}
            for op in self.gpu.operating_points():
                probe.set_clocks(op.core_level, op.mem_level)
                energies[op.key] = self._measure(probe, job).energy_j
            switch = self.gpu.reconfigure_energy_j / self.amortization_horizon
            for key, energy in energies.items():
                cost = energy + (switch if key != current else 0.0)
                if cost < best_energy:
                    best_key, best_energy = key, cost
            assert best_key is not None
            return best_key
        raise ValueError(f"unknown policy {policy!r}")

    def run(self, jobs: Sequence[Job], policy: str) -> ScheduleOutcome:
        """Execute the stream under a policy and account everything."""
        testbed = Testbed(self.gpu, seed=self.seed)
        total_energy = 0.0
        total_seconds = 0.0
        reconfigurations = 0
        for job in jobs:
            target = self._target_pair(job, policy, testbed)
            if target != testbed.sim.operating_point.key:
                testbed.set_clocks(*coerce_levels(target))
                reconfigurations += 1
                total_energy += self.gpu.reconfigure_energy_j
                total_seconds += self.gpu.reconfigure_seconds
            m = self._measure(testbed, job)
            total_energy += m.energy_j
            total_seconds += m.exec_seconds
        return ScheduleOutcome(
            policy=policy,
            total_energy_j=total_energy,
            total_seconds=total_seconds,
            reconfigurations=reconfigurations,
            reconfigure_cost_j=self.gpu.reconfigure_energy_j,
        )

    def compare(
        self, jobs: Sequence[Job], policies: Sequence[str] = (
            "static-hh", "governor", "oracle",
        )
    ) -> dict[str, ScheduleOutcome]:
        """Run the same stream under several policies."""
        return {p: self.run(jobs, p) for p in policies}
