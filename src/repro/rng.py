"""Deterministic random-number streams.

Every stochastic element of the simulation (measurement noise, unmodeled
per-benchmark power effects, counter observation error) draws from a
:class:`numpy.random.Generator` seeded from a stable hash of the
experimental coordinates (GPU, benchmark, input size, operating point,
stream label).  Two properties follow:

* the whole reproduction is bit-reproducible run to run, and
* changing one coordinate (e.g. the memory frequency) re-randomizes only
  the streams that depend on it, as on real hardware where re-running the
  same configuration re-samples the same physical noise distribution.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

#: Global experiment seed.  Changing it re-rolls every noise stream while
#: keeping the simulation physics fixed.
GLOBAL_SEED = 20140519  # IPDPS 2014 conference date


def stable_hash(*coords: Any) -> int:
    """Return a 64-bit integer hash of the given coordinates.

    Unlike built-in ``hash``, the result is stable across processes and
    Python versions (``PYTHONHASHSEED`` does not affect it).
    """
    text = "\x1f".join(repr(c) for c in coords)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(*coords: Any, seed: int | None = None) -> np.random.Generator:
    """Create a deterministic generator for the given coordinates.

    Parameters
    ----------
    coords:
        Arbitrary hashable-by-repr coordinates identifying the stream,
        e.g. ``("power-noise", gpu.name, kernel.name, size, op.key)``.
    seed:
        Override for :data:`GLOBAL_SEED`, mainly for tests.
    """
    base = GLOBAL_SEED if seed is None else seed
    return np.random.default_rng(np.random.SeedSequence([base, stable_hash(*coords)]))
