"""Deterministic random-number streams.

Every stochastic element of the simulation (measurement noise, unmodeled
per-benchmark power effects, counter observation error) draws from a
:class:`numpy.random.Generator` seeded from a stable hash of the
experimental coordinates (GPU, benchmark, input size, operating point,
stream label).  Two properties follow:

* the whole reproduction is bit-reproducible run to run, and
* changing one coordinate (e.g. the memory frequency) re-randomizes only
  the streams that depend on it, as on real hardware where re-running the
  same configuration re-samples the same physical noise distribution.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

#: Global experiment seed.  Changing it re-rolls every noise stream while
#: keeping the simulation physics fixed.
GLOBAL_SEED = 20140519  # IPDPS 2014 conference date


def stable_hash(*coords: Any) -> int:
    """Return a 64-bit integer hash of the given coordinates.

    Unlike built-in ``hash``, the result is stable across processes and
    Python versions (``PYTHONHASHSEED`` does not affect it).
    """
    text = "\x1f".join(repr(c) for c in coords)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(*coords: Any, seed: int | None = None) -> np.random.Generator:
    """Create a deterministic generator for the given coordinates.

    Parameters
    ----------
    coords:
        Arbitrary hashable-by-repr coordinates identifying the stream,
        e.g. ``("power-noise", gpu.name, kernel.name, size, op.key)``.
    seed:
        Override for :data:`GLOBAL_SEED`, mainly for tests.
    """
    base = GLOBAL_SEED if seed is None else seed
    return np.random.default_rng(np.random.SeedSequence([base, stable_hash(*coords)]))


# ----------------------------------------------------------------------
# vectorized stream seeding (the batch hot path)
#
# ``stream()`` costs ~16us per call, almost all of it inside
# ``SeedSequence`` entropy mixing and PCG64 construction.  The batch
# evaluation path needs thousands of streams per grid, so this section
# reimplements both steps with bit-identical results:
#
# * :func:`seed_state_words` runs the SeedSequence entropy-mixing
#   algorithm (numpy's C implementation, constants and all) over a whole
#   column of stream hashes at once, and
# * :class:`StreamBank` turns a precomputed word row into a generator by
#   writing the PCG64 state directly instead of re-running ``srandom``.
#
# Parity with ``stream()`` is asserted by tests/test_batch_parity.py.
# ----------------------------------------------------------------------

#: SeedSequence mixing constants (numpy _sfc64/_pcg seed hasher).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_MASK32 = 0xFFFFFFFF

#: PCG64 LCG multiplier and 128-bit mask for direct state construction.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1

#: Below this many streams the per-array numpy overhead beats the
#: reference path; fall back to plain SeedSequence.
_VECTOR_MIN = 8


def _hashmix(values: np.ndarray, hc: list[int]) -> np.ndarray:
    """Vectorized SeedSequence ``hashmix``; ``hc`` is the stateful scalar.

    The hash constant stays a masked python int: numpy 2.x raises on
    out-of-range *scalar* conversions, while uint32 *array* arithmetic
    wraps silently — exactly the C semantics being reproduced.
    """
    values = values ^ np.uint32(hc[0])
    hc[0] = (hc[0] * _MULT_A) & _MASK32
    values = values * np.uint32(hc[0])
    return values ^ (values >> _XSHIFT)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized SeedSequence inter-pool ``mix``."""
    r = (x * _MIX_MULT_L) - (y * _MIX_MULT_R)
    return r ^ (r >> _XSHIFT)


def _mixed_seed_words(entropy: list[np.ndarray]) -> np.ndarray:
    """Entropy-mix ``k`` uint32 columns into ``(n, 4)`` uint64 seed words.

    Lane ``i`` of the result equals
    ``SeedSequence(<lane-i entropy words>).generate_state(4, uint64)``.
    """
    n = entropy[0].shape[0]
    k = len(entropy)
    hc = [_INIT_A]
    pool = []
    for i in range(4):
        src = entropy[i] if i < k else np.zeros(n, dtype=np.uint32)
        pool.append(_hashmix(src, hc))
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], hc))
    hc = [_INIT_B]
    words32 = []
    for i_dst in range(8):
        data = pool[i_dst % 4] ^ np.uint32(hc[0])
        hc[0] = (hc[0] * _MULT_B) & _MASK32
        data = data * np.uint32(hc[0])
        words32.append(data ^ (data >> _XSHIFT))
    out = np.empty((n, 4), dtype=np.uint64)
    for j in range(4):
        lo = words32[2 * j].astype(np.uint64)
        hi = words32[2 * j + 1].astype(np.uint64)
        out[:, j] = lo | (hi << np.uint64(32))
    return out


def seed_state_words(base: int, hashes: "list[int] | np.ndarray") -> np.ndarray:
    """PCG64 seed words for ``SeedSequence([base, h])``, one row per hash.

    Vectorizes the common entropy layout — ``base`` fitting one 32-bit
    word and ``h`` filling two — and falls back to the reference
    SeedSequence for the rare lanes (h < 2**32, probability 2**-32 per
    stream) and for small batches where numpy overhead loses.
    """
    hashes = np.asarray(hashes, dtype=np.uint64)
    n = hashes.shape[0]
    out = np.empty((n, 4), dtype=np.uint64)
    vectorizable = 0 <= base < (1 << 32) and n >= _VECTOR_MIN
    big = (
        hashes >= np.uint64(1 << 32)
        if vectorizable
        else np.zeros(n, dtype=bool)
    )
    idx = np.nonzero(big)[0]
    if idx.size:
        e0 = np.full(idx.size, base, dtype=np.uint32)
        e1 = (hashes[idx] & np.uint64(_MASK32)).astype(np.uint32)
        e2 = (hashes[idx] >> np.uint64(32)).astype(np.uint32)
        out[idx] = _mixed_seed_words([e0, e1, e2])
    for i in np.nonzero(~big)[0]:
        ss = np.random.SeedSequence([base, int(hashes[i])])
        out[i] = ss.generate_state(4, dtype=np.uint64)
    return out


class StreamBank:
    """Batch-seeded, reusable deterministic generators.

    ``prepare()`` computes PCG64 seed words for many coordinate tuples
    in one vectorized pass; ``stream()`` then yields a generator whose
    draws are bit-identical to :func:`stream` for the same coordinates.

    The bank reuses **one** generator object by rewriting its bit
    generator's state, so the returned generator is only valid until
    the next ``stream()`` call — the batch evaluator's
    draw-immediately-and-discard usage.  Unprepared coordinates are
    seeded on demand (reference path), so the bank is always correct,
    just slower when cold.
    """

    def __init__(self, seed: int | None = None) -> None:
        self.base = GLOBAL_SEED if seed is None else seed
        self._words: dict[tuple, np.ndarray] = {}
        self._bit_generator = np.random.PCG64(0)
        self._generator = np.random.Generator(self._bit_generator)

    def prepare(self, coords_list: "list[tuple]") -> None:
        """Seed every missing coordinate tuple in one vectorized pass."""
        missing = [c for c in coords_list if c not in self._words]
        if not missing:
            return
        hashes = [stable_hash(*c) for c in missing]
        words = seed_state_words(self.base, hashes)
        for coords, row in zip(missing, words):
            self._words[coords] = row

    def stream(self, *coords: Any) -> np.random.Generator:
        """A generator for the coordinates (valid until the next call)."""
        row = self._words.get(coords)
        if row is None:
            self.prepare([coords])
            row = self._words[coords]
        initstate = (int(row[0]) << 64) | int(row[1])
        initseq = (int(row[2]) << 64) | int(row[3])
        # PCG64.srandom: state=0; inc=(initseq<<1)|1; step; state+=initstate;
        # step — collapsed into one LCG advance of (inc + initstate).
        inc = ((initseq << 1) | 1) & _MASK128
        state = ((inc + initstate) * _PCG_MULT + inc) & _MASK128
        self._bit_generator.state = {
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        }
        return self._generator
