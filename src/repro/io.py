"""CSV export of measurements and datasets for external analysis.

JSON archives (``repro.core.serialize``) are for round-tripping inside
the library; CSV is for everything else — spreadsheets, R, pandas.
Written with the standard library only, like the rest of the package.
"""

from __future__ import annotations

import csv
import io as _io
import pathlib
from typing import Iterable

from repro.characterize.sweep import SweepTable
from repro.core.dataset import ModelingDataset
from repro.instruments.testbed import Measurement


def measurements_to_csv(
    measurements: Iterable[Measurement],
) -> str:
    """Render measurements as CSV text (one row per measurement)."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "gpu",
            "benchmark",
            "scale",
            "pair",
            "core_mhz",
            "mem_mhz",
            "exec_seconds",
            "avg_power_w",
            "energy_j",
            "repeats",
        ]
    )
    count = 0
    for m in measurements:
        writer.writerow(
            [
                m.gpu.name,
                m.kernel.name,
                m.scale,
                m.op.key,
                m.op.core_mhz,
                m.op.mem_mhz,
                f"{m.exec_seconds:.6f}",
                f"{m.avg_power_w:.3f}",
                f"{m.energy_j:.3f}",
                m.repeats,
            ]
        )
        count += 1
    if count == 0:
        raise ValueError("no measurements given")
    return buffer.getvalue()


def sweep_to_csv(table: SweepTable) -> str:
    """Render a full Section III sweep as CSV."""
    flat = [
        m
        for pairs in table.measurements.values()
        for m in pairs.values()
    ]
    return measurements_to_csv(flat)


def dataset_to_csv(dataset: ModelingDataset) -> str:
    """Render a modeling dataset as CSV (one row per observation).

    Counter columns come after the measured targets, in the dataset's
    counter order.
    """
    if dataset.n_observations == 0:
        raise ValueError("empty dataset")
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "benchmark",
            "suite",
            "scale",
            "pair",
            "core_mhz",
            "mem_mhz",
            "exec_seconds",
            "avg_power_w",
            "energy_j",
            *dataset.counter_names,
        ]
    )
    for o in dataset.observations:
        writer.writerow(
            [
                o.benchmark,
                o.suite,
                o.scale,
                o.op.key,
                o.op.core_mhz,
                o.op.mem_mhz,
                f"{o.exec_seconds:.6f}",
                f"{o.avg_power_w:.3f}",
                f"{o.energy_j:.3f}",
                *(f"{o.counters[n]:.6g}" for n in dataset.counter_names),
            ]
        )
    return buffer.getvalue()


def write_csv(text: str, path: str | pathlib.Path) -> pathlib.Path:
    """Write CSV text to a file, returning the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target
