"""ASCII line charts for terminal-rendered figures.

The paper's Figs. 1-3 are line charts (normalized performance and power
efficiency against the core clock, one line per memory level).  This
module renders such series as monospace plots so `python -m repro run
fig1` shows the *shape* directly, not just the numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Marker per series, cycled in insertion order.
MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 56,
    height: int = 12,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one ASCII grid.

    Points are plotted with one marker per series; collisions show the
    most recently drawn series.  Axes are annotated with the data range.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no data points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y - y_lo) / y_span * (height - 1)))
        return height - 1 - row, col

    for marker, (name, pts) in zip(
        _cycle(MARKERS), sorted(series.items())
    ):
        ordered = sorted(pts)
        # Draw line segments by linear interpolation between points.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]),
                abs(cell(x1, y1)[0] - cell(x0, y0)[0]),
                1,
            )
            for i in range(steps + 1):
                t = i / steps
                r, c = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                grid[r][c] = "."
        for x, y in ordered:
            r, c = cell(x, y)
            grid[r][c] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        prefix = (
            f"{y_hi:8.2f} |"
            if i == 0
            else f"{y_lo:8.2f} |"
            if i == height - 1
            else " " * 9 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = f"{x_lo:<10.0f}{x_label:^{max(width - 20, 0)}}{x_hi:>10.0f}"
    lines.append(" " * 9 + x_axis)
    legend = "   ".join(
        f"{marker}={name}"
        for marker, (name, _) in zip(_cycle(MARKERS), sorted(series.items()))
    )
    lines.append(" " * 9 + legend)
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)


def _cycle(markers: str):
    while True:
        yield from markers
