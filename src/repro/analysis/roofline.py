"""Roofline analysis of the workload suite against each GPU.

Places every Table II benchmark on the classic roofline plot of one GPU
at one operating point: attainable performance is the minimum of the
compute roof (peak FLOP/s) and the bandwidth roof (peak bytes/s times
arithmetic intensity).  The machine-balance point — where the roofs
cross — moves with the frequency pair, which is the geometric intuition
behind the whole characterization: DVFS *moves the roofline*, and the
energy-optimal pair depends on which side of the ridge a workload sits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import simulate_cache
from repro.engine.timing import STREAM_EFFICIENCY
from repro.kernels.profile import KernelSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One benchmark's position on a GPU's roofline."""

    benchmark: str
    #: Operational intensity in FLOPs per DRAM byte (post-cache).
    intensity: float
    #: Attainable performance under the roofline (GFLOP/s).
    attainable_gflops: float
    #: Whether the compute roof is the binding one.
    compute_bound: bool

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"``."""
        return "compute" if self.compute_bound else "memory"


def machine_balance(spec: GPUSpec, op: OperatingPoint) -> float:
    """Ridge-point intensity (FLOPs/byte) of a GPU at an operating point."""
    return spec.peak_flops(op) / (
        spec.peak_bandwidth(op) * STREAM_EFFICIENCY
    )


def roofline_point(
    kernel: KernelSpec, spec: GPUSpec, op: OperatingPoint, scale: float = 1.0
) -> RooflinePoint:
    """Place one benchmark on the roofline of (GPU, operating point).

    Uses *post-cache* DRAM traffic for the operational intensity — the
    cache hierarchy shifts kernels rightward on newer generations, which
    is why memory-frequency scaling becomes viable there.
    """
    work = kernel.work(scale)
    cache = simulate_cache(work, spec)
    flops = work.flops + work.dp_flops
    intensity = flops / max(cache.dram_bytes, 1.0)
    compute_roof = spec.peak_flops(op)
    memory_roof = spec.peak_bandwidth(op) * STREAM_EFFICIENCY * intensity
    attainable = min(compute_roof, memory_roof)
    return RooflinePoint(
        benchmark=kernel.name,
        intensity=intensity,
        attainable_gflops=attainable / 1e9,
        compute_bound=compute_roof <= memory_roof,
    )


def roofline_sweep(
    kernels: list[KernelSpec], spec: GPUSpec, op: OperatingPoint | None = None
) -> list[RooflinePoint]:
    """Roofline positions of a benchmark list on one GPU."""
    if op is None:
        op = spec.default_point()
    return [roofline_point(k, spec, op) for k in kernels]


def bound_migration(
    kernel: KernelSpec, spec: GPUSpec
) -> dict[str, str]:
    """Which side of the ridge a kernel sits on, per operating point.

    A kernel that flips between compute- and memory-bound across pairs
    (like Gaussian in Fig. 3) is exactly the case where the energy-
    optimal pair is non-obvious.
    """
    return {
        op.key: roofline_point(kernel, spec, op).bound
        for op in spec.operating_points()
    }
