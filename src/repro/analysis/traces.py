"""Power-trace analysis: phase segmentation and summary statistics.

The WT1600-style meter yields a 50 ms sample stream.  On the real
testbed, distinguishing GPU-busy phases from host/transfer phases in that
stream is how one attributes energy without GPU-side instrumentation —
this module implements the standard threshold-based segmentation plus the
summary statistics used when sanity-checking a measurement campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instruments.powermeter import PowerTrace


@dataclass(frozen=True)
class Phase:
    """A contiguous segment of a power trace."""

    #: Sample index where the phase starts (inclusive).
    start: int
    #: Sample index where the phase ends (exclusive).
    end: int
    #: Whether the segment is classified as GPU-busy.
    busy: bool
    #: Mean power over the segment (W).
    mean_power_w: float

    @property
    def num_samples(self) -> int:
        """Samples in the phase."""
        return self.end - self.start


@dataclass(frozen=True)
class TraceSummary:
    """Energy attribution of one trace."""

    phases: tuple[Phase, ...]
    interval_s: float

    @property
    def busy_seconds(self) -> float:
        """Total time classified as GPU-busy."""
        return (
            sum(p.num_samples for p in self.phases if p.busy)
            * self.interval_s
        )

    @property
    def idle_seconds(self) -> float:
        """Total time classified as idle/host."""
        return (
            sum(p.num_samples for p in self.phases if not p.busy)
            * self.interval_s
        )

    @property
    def busy_energy_j(self) -> float:
        """Energy of the busy phases."""
        return sum(
            p.mean_power_w * p.num_samples * self.interval_s
            for p in self.phases
            if p.busy
        )

    @property
    def idle_energy_j(self) -> float:
        """Energy of the idle phases."""
        return sum(
            p.mean_power_w * p.num_samples * self.interval_s
            for p in self.phases
            if not p.busy
        )

    @property
    def busy_fraction(self) -> float:
        """Fraction of the window spent busy."""
        total = self.busy_seconds + self.idle_seconds
        return self.busy_seconds / total if total else 0.0


def segment_trace(trace: PowerTrace, threshold_w: float | None = None) -> TraceSummary:
    """Split a trace into busy/idle phases by a power threshold.

    Parameters
    ----------
    trace:
        Meter output.
    threshold_w:
        Power level separating busy from idle samples.  Defaults to the
        midpoint between the 10th and 90th percentile of the trace — the
        standard heuristic for bimodal power streams.
    """
    samples = np.asarray(trace.samples, dtype=float)
    if samples.size == 0:
        raise ValueError("empty trace")
    if threshold_w is None:
        p10, p90 = np.percentile(samples, [10, 90])
        threshold_w = (p10 + p90) / 2.0
    busy_mask = samples >= threshold_w

    phases: list[Phase] = []
    start = 0
    for i in range(1, samples.size + 1):
        if i == samples.size or busy_mask[i] != busy_mask[start]:
            phases.append(
                Phase(
                    start=start,
                    end=i,
                    busy=bool(busy_mask[start]),
                    mean_power_w=float(np.mean(samples[start:i])),
                )
            )
            start = i
    return TraceSummary(phases=tuple(phases), interval_s=trace.interval_s)


def trace_statistics(trace: PowerTrace) -> dict[str, float]:
    """Descriptive statistics of a power trace."""
    samples = np.asarray(trace.samples, dtype=float)
    if samples.size == 0:
        raise ValueError("empty trace")
    return {
        "samples": float(samples.size),
        "duration_s": trace.duration_s,
        "mean_w": float(np.mean(samples)),
        "min_w": float(np.min(samples)),
        "max_w": float(np.max(samples)),
        "std_w": float(np.std(samples)),
        "energy_j": trace.energy_j,
        "peak_to_mean": float(np.max(samples) / np.mean(samples)),
    }
