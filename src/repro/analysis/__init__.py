"""Text rendering and summary statistics for experiment outputs."""

from repro.analysis.format import format_table, format_series, format_box
from repro.analysis.stats import box_summary, geometric_mean

__all__ = [
    "format_table",
    "format_series",
    "format_box",
    "box_summary",
    "geometric_mean",
]
