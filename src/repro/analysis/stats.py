"""Small statistics helpers shared by experiments."""

from __future__ import annotations

from typing import Iterable

import numpy as np


def box_summary(values: Iterable[float]) -> dict[str, float]:
    """Box-and-whisker summary (min, quartiles, max, mean)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return {
        "min": float(arr.min()),
        "q1": float(q1),
        "median": float(med),
        "q3": float(q3),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
