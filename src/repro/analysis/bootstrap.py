"""Bootstrap confidence intervals for the model-quality statistics.

The paper reports point estimates (Tables V-VIII).  With 114 workload
samples the sampling variability of R-bar-squared and the mean errors is
non-trivial; this module quantifies it by resampling *benchmarks* (the
exchangeable unit — observations within a benchmark are correlated) with
replacement and refitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Type

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.core.evaluate import evaluate_model
from repro.core.models import _UnifiedModel
from repro.rng import stream


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval."""

    point: float
    low: float
    high: float
    level: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.point:.3g} [{self.low:.3g}, {self.high:.3g}]"


@dataclass(frozen=True)
class ModelQualityCI:
    """Bootstrap intervals for one model family on one GPU."""

    adjusted_r2: BootstrapInterval
    mean_pct_error: BootstrapInterval
    mean_abs_error: BootstrapInterval
    n_resamples: int


def _resample_dataset(
    dataset: ModelingDataset, rng: np.random.Generator
) -> ModelingDataset:
    """Resample benchmarks with replacement, keeping all their observations."""
    names = dataset.benchmarks
    chosen = rng.choice(len(names), size=len(names), replace=True)
    observations = []
    for idx in chosen:
        name = names[idx]
        observations.extend(
            o for o in dataset.observations if o.benchmark == name
        )
    return ModelingDataset(
        gpu=dataset.gpu,
        counter_names=dataset.counter_names,
        counter_domains=dataset.counter_domains,
        observations=tuple(observations),
    )


def _interval(
    point: float, draws: Sequence[float], level: float
) -> BootstrapInterval:
    alpha = (1.0 - level) / 2.0
    low, high = np.percentile(draws, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapInterval(
        point=point, low=float(low), high=float(high), level=level
    )


def model_quality_ci(
    model_cls: Type[_UnifiedModel],
    dataset: ModelingDataset,
    n_resamples: int = 50,
    level: float = 0.90,
    max_features: int = 10,
    seed: int | None = None,
) -> ModelQualityCI:
    """Bootstrap CIs for R-bar-squared and the mean errors.

    Parameters
    ----------
    model_cls:
        Unified model family to evaluate.
    dataset:
        Full modeling dataset of one GPU.
    n_resamples:
        Bootstrap replicates; each refits the model, so keep moderate.
    level:
        Confidence level of the percentile intervals.
    """
    if n_resamples < 10:
        raise ValueError(f"need at least 10 resamples, got {n_resamples}")
    if not 0.5 < level < 1.0:
        raise ValueError(f"confidence level must be in (0.5, 1), got {level}")
    base = model_cls(max_features=max_features).fit(dataset)
    base_report = evaluate_model(base, dataset)

    rng = stream("bootstrap", dataset.gpu.name, model_cls.__name__, seed=seed)
    r2_draws, pct_draws, abs_draws = [], [], []
    for _ in range(n_resamples):
        resampled = _resample_dataset(dataset, rng)
        model = model_cls(max_features=max_features).fit(resampled)
        report = evaluate_model(model, resampled)
        r2_draws.append(model.adjusted_r2)
        pct_draws.append(report.mean_pct_error)
        abs_draws.append(report.mean_abs_error)

    return ModelQualityCI(
        adjusted_r2=_interval(base.adjusted_r2, r2_draws, level),
        mean_pct_error=_interval(
            base_report.mean_pct_error, pct_draws, level
        ),
        mean_abs_error=_interval(
            base_report.mean_abs_error, abs_draws, level
        ),
        n_resamples=n_resamples,
    )
