"""Plain-text rendering of experiment tables and figure series.

The paper's figures are line charts and box plots; in a terminal-first
reproduction we render the underlying series as aligned text so the
numbers can be compared directly against the paper.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table with a header rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    title: str, series: Mapping[str, Sequence[tuple[float, float]]]
) -> str:
    """Render named (x, y) series as a compact text block."""
    lines = [title]
    for name, points in series.items():
        pts = "  ".join(f"({x:g}, {y:.4g})" for x, y in points)
        lines.append(f"  {name}: {pts}")
    return "\n".join(lines)


def format_box(stats: Mapping[str, float], width: int = 40) -> str:
    """Render one box-and-whisker summary as an ASCII strip.

    Expects keys min/q1/median/q3/max (as produced by
    :meth:`repro.core.evaluate.ErrorReport.box_stats`).
    """
    lo, hi = stats["min"], stats["max"]
    span = max(hi - lo, 1e-12)

    def pos(v: float) -> int:
        return int(round((v - lo) / span * (width - 1)))

    strip = [" "] * width
    for i in range(pos(stats["q1"]), pos(stats["q3"]) + 1):
        strip[i] = "="
    strip[pos(stats["min"])] = "|"
    strip[pos(stats["max"])] = "|"
    strip[pos(stats["median"])] = "#"
    return (
        f"[{''.join(strip)}] min={lo:.1f} q1={stats['q1']:.1f} "
        f"med={stats['median']:.1f} q3={stats['q3']:.1f} max={hi:.1f}"
    )
