"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while standard ``ValueError`` /
``KeyError`` semantics are preserved through multiple inheritance.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TransientError(ReproError):
    """A fault that may clear on retry (flaky instrument, crashed run).

    The execution engine retries transient errors with backoff; every
    other :class:`ReproError` is *permanent* and fails fast (see
    :func:`is_transient`).  Measurement studies report exactly this
    split: a VBIOS flash that did not take or a dropped meter sample is
    worth re-trying, a benchmark the profiler cannot analyze is not.
    """


class ReconfigurationError(TransientError, RuntimeError):
    """A VBIOS/DVFS clock reconfiguration did not take.

    Real DVFS studies (Mei et al.; Nunez-Yanez et al.) report flaky
    clock reconfiguration as a routine obstacle; the fix is to reflash
    and reboot again, so this error is transient.
    """


class UnitCrashError(TransientError, RuntimeError):
    """A work unit's run crashed for no attributable reason.

    Stands in for the long tail of campaign flakiness — driver hangs,
    benchmark segfaults, host hiccups — that a re-run usually clears.
    """


class UnitTimeoutError(TransientError, TimeoutError):
    """A work unit overran its wall-clock budget (``unit_timeout_s``).

    Raised by the execution engine's per-unit watchdog, never by the
    unit itself.  Classified transient: a hang is usually a wedged
    driver or instrument, which a retry (on real hardware: after a
    reset) often clears.  A unit that *always* hangs exhausts its retry
    budget and is recorded as a failure like any other transient fault.
    """


class CampaignInterrupted(ReproError, RuntimeError):
    """A campaign stopped early on an operator shutdown request.

    Raised after a graceful drain — dispatch stopped, in-flight work
    given a grace period, the run journal flushed — so a follow-up
    ``--resume`` reconstructs the interrupted run exactly.  The CLI
    maps this to a distinct exit code (75, ``EX_TEMPFAIL``).
    """


class UnknownGPUError(ReproError, KeyError):
    """Requested GPU name is not in the registry.

    The message lists what *is* resolvable: the canonical cards plus any
    synthesized fleet devices registered in this process, so a typo'd
    device id in a journal or spec is diagnosable from the error alone.
    """

    @classmethod
    def for_name(cls, name, canonical=(), instances=()):
        """Build the registry-aware error for a failed lookup.

        ``instances`` is an iterable of ``(device_id, spec)`` pairs; only
        a bounded sample is printed, with the total count.
        """
        parts = [f"unknown GPU {name!r}"]
        if canonical:
            parts.append(f"available: {', '.join(canonical)}")
        sample = []
        total = 0
        for did, spec in instances:
            total += 1
            if len(sample) < 4:
                sample.append(f"{spec.name} ({did})")
        if total:
            more = f", ... {total - len(sample)} more" if total > len(sample) else ""
            parts.append(
                f"{total} synthesized fleet device(s): {'; '.join(sample)}{more}"
            )
        return cls("; ".join(parts))


class UnknownBenchmarkError(ReproError, KeyError):
    """Requested benchmark name is not in the registry."""


class InvalidOperatingPointError(ReproError, ValueError):
    """A (core, memory) frequency pair is not configurable on this GPU.

    Mirrors the blank cells of Table III: not every H/M/L combination is
    exposed by the card's BIOS.
    """


class BIOSFormatError(ReproError, ValueError):
    """A VBIOS image is malformed (bad magic, truncated, bad checksum)."""


class ProfilerError(ReproError, RuntimeError):
    """The (simulated) CUDA profiler failed to analyze a benchmark.

    The paper reports this for mummergpu, backprop and pathfinder from
    Rodinia and bfs from Parboil; those runs are excluded from the
    modeling dataset.
    """


class ModelNotFittedError(ReproError, RuntimeError):
    """A statistical model was queried before ``fit`` was called."""


class MeasurementError(ReproError, RuntimeError):
    """The power-measurement protocol could not be completed.

    Raised when the meter window is shorter than one sample interval or
    when the sample quorum (>= 10 valid samples, mirroring the paper's
    500 ms / 50 ms rule) cannot be met even after re-measurement.
    """


def is_transient(exc: BaseException) -> bool:
    """Whether an exception is worth retrying.

    The classification the execution engine's retry loop uses:

    * :class:`TransientError` subclasses are retryable by definition;
    * every other :class:`ReproError` is a *permanent* verdict about the
      work itself (unknown benchmark, unconfigurable pair, profiler
      analysis failure) — retrying cannot change it, so fail fast;
    * exceptions from outside the package (``OSError``, a worker dying)
      are unknown, and retrying is the safe default.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, ReproError):
        return False
    return True
