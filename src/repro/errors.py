"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while standard ``ValueError`` /
``KeyError`` semantics are preserved through multiple inheritance.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UnknownGPUError(ReproError, KeyError):
    """Requested GPU name is not in the registry."""


class UnknownBenchmarkError(ReproError, KeyError):
    """Requested benchmark name is not in the registry."""


class InvalidOperatingPointError(ReproError, ValueError):
    """A (core, memory) frequency pair is not configurable on this GPU.

    Mirrors the blank cells of Table III: not every H/M/L combination is
    exposed by the card's BIOS.
    """


class BIOSFormatError(ReproError, ValueError):
    """A VBIOS image is malformed (bad magic, truncated, bad checksum)."""


class ProfilerError(ReproError, RuntimeError):
    """The (simulated) CUDA profiler failed to analyze a benchmark.

    The paper reports this for mummergpu, backprop and pathfinder from
    Rodinia and bfs from Parboil; those runs are excluded from the
    modeling dataset.
    """


class ModelNotFittedError(ReproError, RuntimeError):
    """A statistical model was queried before ``fit`` was called."""


class MeasurementError(ReproError, RuntimeError):
    """The power-measurement protocol could not be completed."""
