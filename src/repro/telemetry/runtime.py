"""Process-local telemetry context.

Instrument-layer code (the testbed's meter windows, the fault injector,
the profiler pass in a dataset unit) runs deep inside work units — in a
worker process when the campaign is parallel — where threading a
telemetry object through every constructor would contaminate cache keys
and pickled unit specs.  Instead, the active :class:`Telemetry` is a
context-local ambient: the execution engine activates a fresh one
around each unit attempt (:func:`using_telemetry`), instrumented code
reads it through :func:`current_telemetry`, and the engine ships the
collected spans and metrics back to the parent inside the unit outcome.

When nothing is active, :func:`current_telemetry` returns a shared
*disabled* context whose tracer records nothing and whose metrics
discard increments, so instrumentation costs one contextvar read on
untelemetered runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.telemetry.metrics import Metrics, NullMetrics
from repro.telemetry.spans import Tracer


class Telemetry:
    """One tracing + metrics context (a campaign's, or one unit's).

    Parameters
    ----------
    sinks:
        Event sinks shared by the tracer (e.g. a
        :class:`~repro.telemetry.sinks.JsonlSink` writing the campaign
        event log).
    enabled:
        A disabled context records nothing; :data:`NULL_TELEMETRY` is
        the shared disabled instance.
    bus:
        Optional :class:`~repro.telemetry.bus.EventBus`.  The bus joins
        the tracer's sinks (so every span / point / metrics document is
        re-published as a live envelope) and stays reachable as
        ``telemetry.bus`` for engine-side publishes (progress ticks,
        phase starts, flight dumps).  Ignored when disabled.
    """

    def __init__(
        self,
        sinks: tuple | list = (),
        enabled: bool = True,
        bus: Any = None,
    ) -> None:
        self.enabled = enabled
        self.bus = bus if enabled else None
        all_sinks = list(sinks)
        if self.bus is not None:
            all_sinks.append(self.bus)
        self.tracer = Tracer(sinks=all_sinks, enabled=enabled)
        self.metrics: Metrics = Metrics() if enabled else NullMetrics()

    def snapshot(self) -> dict[str, Any]:
        """Picklable (spans, metrics) state for worker -> parent shipping."""
        return {
            "spans": self.tracer.documents(),
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        """Close every sink attached to the tracer."""
        for sink in self.tracer.sinks:
            sink.close()


#: Shared disabled context returned when no telemetry is active.
NULL_TELEMETRY = Telemetry(enabled=False)

_ACTIVE: ContextVar[Telemetry | None] = ContextVar(
    "repro_telemetry", default=None
)


def current_telemetry() -> Telemetry:
    """The active telemetry context, or the shared disabled one."""
    active = _ACTIVE.get()
    return active if active is not None else NULL_TELEMETRY


@contextmanager
def using_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make a telemetry context ambient for the enclosed block."""
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)
