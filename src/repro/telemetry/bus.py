"""Live event bus: the ``repro.events`` v1 streaming protocol.

Post-hoc trace logs answer "what happened"; a running 1000-device fleet
campaign needs "what is happening".  The :class:`EventBus` is the
observe-only multiplexer between the two: it attaches to the tracer as
one more sink, wraps every span/event/metrics document — plus the
journal records, breaker transitions, governor decisions and progress
ticks the engine publishes directly — into versioned envelopes, and
fans them out to bounded subscribers:

* :class:`LiveEventWriter` streams envelopes to ``events.ndjson``,
  line-flushed, so ``repro top`` and ``repro trace summarize --follow``
  can tail the file while the campaign runs;
* :class:`FlightRecorder` keeps a fixed-size ring of the most recent
  envelopes and dumps it to ``flight.json`` when something goes wrong
  (watchdog timeout, breaker quarantine, pool rebuild, SIGTERM).

Protocol (``repro.events`` version 1) — one JSON envelope per line::

    {"v": 1, "seq": 17, "kind": "progress", "data": {...}}

* ``seq`` increases strictly monotonically per bus; a gap observed by
  a consumer means envelopes it did not receive (dropped on overflow,
  or synthesized for another subscriber).
* A slow or failing subscriber never blocks the run: its queue is
  bounded, the oldest envelopes are dropped (and counted), and a
  ``drop`` envelope announces the loss once the subscriber recovers.
* The bus is observe-only *by construction*: it touches no metrics
  counters, no artifacts and no control flow, and :meth:`publish`
  swallows subscriber errors — so every deterministic artifact is
  byte-identical with the bus enabled at any ``--jobs`` value.

See docs/OBSERVABILITY.md for the full protocol specification.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Any, Callable

from repro._version import __version__
from repro.telemetry.sinks import Sink

EVENTS_FORMAT = "repro.events"
EVENTS_VERSION = 1

FLIGHT_FORMAT = "repro.flight"
FLIGHT_VERSION = 1

#: Envelope kinds of protocol version 1, in rough pipeline order.
EVENT_KINDS = (
    "header",  # stream preamble: format/version/producer
    "span",  # completed tracer span (verbatim span document)
    "event",  # tracer point event (verbatim event document)
    "metrics",  # final aggregated metrics document (ends a run)
    "phase",  # a phase started: name + declared unit total
    "progress",  # one unit settled, in canonical unit-index order
    "unit",  # a journal unit record was durably appended
    "breaker",  # a circuit-breaker transition
    "governor",  # an online-governor re-plan decision
    "pool",  # a persistent-pool rebuild
    "flight",  # the flight recorder dumped flight.json
    "drop",  # a subscriber lost envelopes (overflow accounting)
    "summary",  # bus accounting at close (ends a stream)
)

#: Default per-subscriber queue bound.  Generous enough that the only
#: way to overflow it is a subscriber failing for a sustained stretch.
DEFAULT_QUEUE_CAPACITY = 4096

#: Default flight-recorder ring size (most recent envelopes kept).
DEFAULT_FLIGHT_CAPACITY = 256


class Subscription:
    """One bounded consumer of the bus.

    Envelopes queue into a bounded deque and drain synchronously on
    every publish; a handler that raises keeps its envelope queued and
    is retried on the next publish, so a transiently failing writer
    catches up, losing only what overflowed while it was down.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[dict[str, Any]], None],
        capacity: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"subscriber capacity must be >= 1, got {capacity}")
        self.name = name
        self.handler = handler
        self.capacity = capacity
        self.queue: deque[dict[str, Any]] = deque()
        #: Envelopes delivered to the handler successfully.
        self.delivered = 0
        #: Envelopes dropped on queue overflow (total).
        self.dropped = 0
        #: Handler invocations that raised.
        self.failures = 0
        #: Drops not yet announced with a ``drop`` envelope.
        self.pending_drop = 0

    def offer(self, envelope: dict[str, Any]) -> None:
        """Enqueue one envelope, dropping the oldest on overflow."""
        self.queue.append(envelope)
        while len(self.queue) > self.capacity:
            self.queue.popleft()
            self.dropped += 1
            self.pending_drop += 1

    def close(self) -> None:
        """Release handler resources, if it has any."""
        close = getattr(self.handler, "close", None)
        if callable(close):
            close()


class LiveEventWriter:
    """Line-flushed NDJSON envelope writer (the ``events.ndjson`` file).

    Opened lazily and line-buffered; every envelope is flushed as one
    complete line so a concurrent tailer sees at worst a torn final
    line, never interleaved or stale content.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle = None

    def __call__(self, envelope: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(
                self.path, "w", encoding="utf-8", buffering=1
            )
        self._handle.write(json.dumps(envelope, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class FlightRecorder:
    """Fixed-size ring of the most recent envelopes, dumped on trouble.

    The ring costs one deque append per envelope while everything is
    healthy; :meth:`dump` serializes it to ``flight.json`` atomically
    when the engine (or a SIGTERM handler) declares an incident, so a
    crash post-mortem starts from the last ``capacity`` events instead
    of a multi-gigabyte log — or from nothing at all.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.path = pathlib.Path(path)
        self.capacity = capacity
        self.ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Envelopes that rotated out of the ring before the last dump.
        self.evicted = 0
        #: Reasons of every dump taken so far, in order.
        self.reasons: list[str] = []

    def __call__(self, envelope: dict[str, Any]) -> None:
        if len(self.ring) == self.capacity:
            self.evicted += 1
        self.ring.append(envelope)

    def document(self, reason: str) -> dict[str, Any]:
        """The canonical ``flight.json`` document for one dump."""
        return {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "producer": f"repro {__version__}",
            "reason": reason,
            "reasons": list(self.reasons) + [reason],
            "capacity": self.capacity,
            "evicted": self.evicted,
            "events": list(self.ring),
        }

    def dump(self, reason: str) -> pathlib.Path:
        """Write the ring to ``flight.json`` atomically; returns the path.

        Repeated dumps overwrite the file — the latest incident wins —
        but every reason so far is accumulated in the document, so a
        run that timed out *and* was SIGTERMed shows both.
        """
        # Local import: telemetry must stay importable before the
        # execution package finishes initializing.
        from repro.execution.cache import atomic_write_text

        document = self.document(reason)
        self.reasons.append(reason)
        text = json.dumps(document, indent=2, sort_keys=True)
        return atomic_write_text(self.path, text)


class EventBus(Sink):
    """Bounded, drop-counting fan-out of live campaign events.

    The bus doubles as a tracer sink (:meth:`emit` wraps span / point /
    metrics documents into envelopes), and exposes :meth:`publish` for
    the engine-side kinds the tracer never sees: progress ticks, phase
    starts, journal records, breaker transitions, governor decisions
    and pool rebuilds.

    Everything is synchronous and exception-isolated: a publish costs
    one envelope allocation plus one bounded append per subscriber, and
    no subscriber error can escape into the measurement path.
    """

    def __init__(self, capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        self.capacity = capacity
        self._seq = -1
        self._subscriptions: list[Subscription] = []
        self._recorder: FlightRecorder | None = None
        self._shutdown_hooked = False
        self._closed = False
        #: Envelopes allocated (header and drop/summary synthesis
        #: included).
        self.published = 0
        #: Internal publish errors swallowed (should stay 0).
        self.errors = 0
        #: Label of the currently announced phase, stamped onto
        #: progress envelopes.
        self.phase: str | None = None
        self._header = self._envelope(
            "header",
            {
                "format": EVENTS_FORMAT,
                "version": EVENTS_VERSION,
                "producer": f"repro {__version__}",
            },
        )

    # ------------------------------------------------------------------
    # subscribing
    # ------------------------------------------------------------------

    def subscribe(
        self,
        name: str,
        handler: Callable[[dict[str, Any]], None],
        capacity: int | None = None,
    ) -> Subscription:
        """Attach a consumer; it immediately receives the stream header."""
        subscription = Subscription(
            name, handler, capacity if capacity is not None else self.capacity
        )
        self._subscriptions.append(subscription)
        subscription.offer(self._header)
        self._drain(subscription)
        return subscription

    def attach_writer(self, path: str | pathlib.Path) -> Subscription:
        """Stream envelopes to an NDJSON file (``events.ndjson``)."""
        writer = LiveEventWriter(path)
        return self.subscribe(f"writer:{pathlib.Path(path).name}", writer)

    def attach_flight_recorder(
        self,
        path: str | pathlib.Path,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> FlightRecorder:
        """Keep a crash ring and dump it to ``flight.json`` on SIGTERM.

        The recorder subscribes like any consumer (its ring never
        overflows a queue — appends cannot fail) and additionally
        registers a process-wide shutdown callback so a SIGINT/SIGTERM
        under :class:`~repro.execution.resilience.GracefulShutdown`
        dumps the ring even if the engine never reaches its next
        drain point.
        """
        recorder = FlightRecorder(path, capacity=capacity)
        self._recorder = recorder
        self.subscribe("flight-recorder", recorder)
        # Local import: keep telemetry importable before the execution
        # package finishes initializing.
        from repro.execution.resilience import add_shutdown_callback

        add_shutdown_callback(self._on_shutdown_signal)
        self._shutdown_hooked = True
        return recorder

    @property
    def recorder(self) -> FlightRecorder | None:
        """The attached flight recorder, if any."""
        return self._recorder

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def _envelope(self, kind: str, data: dict[str, Any]) -> dict[str, Any]:
        self._seq += 1
        self.published += 1
        return {"v": EVENTS_VERSION, "seq": self._seq, "kind": kind, "data": data}

    def publish(self, kind: str, data: dict[str, Any]) -> None:
        """Fan one event out to every subscriber.  Never raises."""
        if self._closed:
            return
        try:
            envelope = self._envelope(kind, data)
            for subscription in self._subscriptions:
                subscription.offer(envelope)
                self._drain(subscription)
        except Exception:
            self.errors += 1

    def _drain(self, subscription: Subscription) -> None:
        """Deliver a subscriber's queue; stop (and retry later) on error."""
        if subscription.pending_drop:
            announcement = self._envelope(
                "drop",
                {
                    "subscriber": subscription.name,
                    "dropped": subscription.pending_drop,
                },
            )
            try:
                subscription.handler(announcement)
            except Exception:
                subscription.failures += 1
                return
            subscription.delivered += 1
            subscription.pending_drop = 0
        while subscription.queue:
            envelope = subscription.queue[0]
            try:
                subscription.handler(envelope)
            except Exception:
                subscription.failures += 1
                return
            subscription.queue.popleft()
            subscription.delivered += 1

    def emit(self, event: dict[str, Any]) -> None:
        """Tracer-sink entry point: wrap one tracer document."""
        etype = event.get("type")
        if etype == "span":
            self.publish("span", event)
        elif etype == "metrics":
            self.publish("metrics", event)
        else:
            self.publish("event", event)

    def phase_start(self, phase: str, units: int) -> None:
        """Announce a phase and its declared unit total."""
        self.phase = phase
        self.publish("phase", {"phase": phase, "units": units})

    def journal_observer(self) -> Callable[[dict[str, Any]], None]:
        """A callback publishing durably-appended journal records.

        Wire it as ``RunJournal(..., observer=bus.journal_observer())``:
        every ``unit``/``breaker`` record is re-published on the bus
        *after* its fsync, so a consumer never sees a completion the
        journal could lose.
        """

        def observe(record: dict[str, Any]) -> None:
            kind = record.get("type")
            data = {k: v for k, v in record.items() if k != "type"}
            self.publish(kind if kind in EVENT_KINDS else "event", data)

        return observe

    # ------------------------------------------------------------------
    # flight dumps and lifecycle
    # ------------------------------------------------------------------

    def flight_dump(self, reason: str) -> pathlib.Path | None:
        """Dump the flight ring, if a recorder is attached.  Never raises."""
        if self._recorder is None:
            return None
        try:
            path = self._recorder.dump(reason)
        except Exception:
            self.errors += 1
            return None
        self.publish("flight", {"reason": reason, "path": self._recorder.path.name})
        return path

    def _on_shutdown_signal(self) -> None:
        self.flight_dump("shutdown-signal")

    def stats(self) -> dict[str, Any]:
        """Accounting snapshot: published/dropped/delivered per subscriber."""
        return {
            "published": self.published,
            "dropped": sum(s.dropped for s in self._subscriptions),
            "errors": self.errors,
            "subscribers": {
                s.name: {
                    "delivered": s.delivered,
                    "dropped": s.dropped,
                    "failures": s.failures,
                    "queued": len(s.queue),
                }
                for s in self._subscriptions
            },
        }

    def close(self) -> None:
        """Publish the closing summary and release every subscriber."""
        if self._closed:
            return
        summary = self.stats()
        summary["dropped"] += sum(s.pending_drop for s in self._subscriptions)
        self.publish("summary", summary)
        self._closed = True
        if self._shutdown_hooked:
            from repro.execution.resilience import remove_shutdown_callback

            remove_shutdown_callback(self._on_shutdown_signal)
            self._shutdown_hooked = False
        for subscription in self._subscriptions:
            try:
                subscription.close()
            except Exception:
                self.errors += 1
