"""Progress engine: fold a ``repro.events`` stream into live state.

:class:`ProgressEngine` consumes envelopes (or raw trace events from a
plain ``events.jsonl``) and maintains per-phase completed / total /
failed / quarantined counts, journal-confirmed unit counts, sequence-gap
accounting and the last notable event — everything ``repro top`` and
``repro trace summarize --follow`` render while a campaign runs.

Wall-clock discipline: the event stream itself carries **no wall-clock
timestamps** (spans carry per-process monotonic offsets only), so the
rate half of the ETA comes from the *consumer's* clock — the tailer
passes its own reading to :meth:`ProgressEngine.fold` — blended with a
prior seeded from the committed ``BENCH_pipeline.json`` baseline
(:func:`bench_unit_seconds`).  Before enough stream has been observed
the ETA leans on the prior; as real throughput accumulates the
observation dominates.  Either half alone still yields an estimate.

:class:`TailReader` is the torn-tail-safe NDJSON follower both CLI
views share: it re-polls a growing file, parses only complete lines and
buffers a partial final line until its newline arrives.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Bench workload whose median seeds the per-unit-seconds ETA prior.
#: Jobs=1 and cache-cold: the most conservative committed throughput.
BENCH_PRIOR_WORKLOAD = "engine.run_units.cold.jobs1"

#: Weight (in observed-unit equivalents) of the bench-seeded prior.
PRIOR_WEIGHT = 5.0


@dataclass
class PhaseProgress:
    """Live counters for one announced phase."""

    name: str
    #: Declared unit total from the ``phase`` envelope (0 = unsized).
    units: int = 0
    #: Units settled (one ``progress`` envelope each, canonical order).
    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    cache_hits: int = 0
    #: Unit records confirmed durably appended to the run journal.
    journaled: int = 0

    def document(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "units": self.units,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "cache_hits": self.cache_hits,
            "journaled": self.journaled,
        }


class EtaEstimator:
    """Blend a bench-seeded seconds/unit prior with the observed rate."""

    def __init__(self, prior_unit_s: float | None = None) -> None:
        self.prior_unit_s = prior_unit_s
        self._first: tuple[float, int] | None = None
        self._last: tuple[float, int] | None = None

    def observe(self, wall_s: float, completed: int) -> None:
        """Record the consumer-side clock against the completed count."""
        if self._first is None:
            self._first = (wall_s, completed)
        self._last = (wall_s, completed)

    def observed_unit_s(self) -> float | None:
        """Seconds per unit measured from the tailer's own clock."""
        if self._first is None or self._last is None:
            return None
        elapsed = self._last[0] - self._first[0]
        done = self._last[1] - self._first[1]
        if done <= 0 or elapsed <= 0:
            return None
        return elapsed / done

    def unit_seconds(self) -> float | None:
        """The blended seconds/unit estimate, or None if blind."""
        observed = self.observed_unit_s()
        if observed is None:
            return self.prior_unit_s
        if self.prior_unit_s is None:
            return observed
        done = self._last[1] - self._first[1] if self._first else 0
        weight = PRIOR_WEIGHT + done
        return (self.prior_unit_s * PRIOR_WEIGHT + observed * done) / weight

    def eta_s(self, remaining: int) -> float | None:
        """Estimated seconds until ``remaining`` more units settle."""
        if remaining <= 0:
            return 0.0
        unit_s = self.unit_seconds()
        if unit_s is None:
            return None
        return remaining * unit_s


def bench_unit_seconds(
    source: str | pathlib.Path | dict[str, Any],
) -> float | None:
    """Seconds/unit prior from a ``BENCH_pipeline.json`` document.

    Uses the committed cold jobs=1 engine workload: its median runtime
    divided by its fingerprinted unit count.  Returns None when the
    document (or the workload inside it) is missing or malformed —
    the ETA then starts blind and converges from observation alone.
    """
    try:
        if isinstance(source, dict):
            document = source
        else:
            document = json.loads(pathlib.Path(source).read_text(encoding="utf-8"))
        workload = document["workloads"][BENCH_PRIOR_WORKLOAD]
        median = float(workload["timing_s"]["median"])
        units = int(workload["fingerprint"]["work.units"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if units <= 0 or median <= 0:
        return None
    return median / units


def discover_bench_prior(*roots: str | pathlib.Path) -> float | None:
    """Find a ``BENCH_pipeline.json`` near the given roots, if any."""
    for root in roots:
        candidate = pathlib.Path(root) / "BENCH_pipeline.json"
        if candidate.is_file():
            prior = bench_unit_seconds(candidate)
            if prior is not None:
                return prior
    return None


def _is_envelope(event: dict[str, Any]) -> bool:
    return "v" in event and "kind" in event and "data" in event


class ProgressEngine:
    """Fold envelopes (or raw trace events) into renderable state."""

    def __init__(
        self,
        eta: EtaEstimator | None = None,
        track_keys: bool = False,
    ) -> None:
        self.eta = eta if eta is not None else EtaEstimator()
        self.phases: dict[str, PhaseProgress] = {}
        self.current_phase: str | None = None
        #: Total envelopes/events folded.
        self.events = 0
        #: Producer-announced drops plus sequence gaps we observed.
        self.dropped = 0
        self.seq_gaps = 0
        self._last_seq: int | None = None
        self.header: dict[str, Any] | None = None
        self.summary: dict[str, Any] | None = None
        #: True once a ``metrics`` or ``summary`` event ends the stream.
        self.finished = False
        self.flight_reasons: list[str] = []
        self.last_note: str | None = None
        self.track_keys = track_keys
        #: Keys of settled units (``progress`` envelopes).
        self.completed_keys: set[str] = set()
        #: Keys of journal-confirmed unit records (``unit`` envelopes).
        self.journaled_keys: set[str] = set()

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------

    def _phase(self, name: str | None) -> PhaseProgress:
        label = name or self.current_phase or "(run)"
        if label not in self.phases:
            self.phases[label] = PhaseProgress(name=label)
        return self.phases[label]

    def fold(self, event: dict[str, Any], at: float | None = None) -> None:
        """Fold one stream element; ``at`` is the consumer's clock."""
        self.events += 1
        if _is_envelope(event):
            self._fold_envelope(event)
        else:
            self._fold_raw(event)
        if at is not None:
            self.eta.observe(at, self.completed_total())

    def _fold_envelope(self, envelope: dict[str, Any]) -> None:
        seq = envelope.get("seq")
        if isinstance(seq, int):
            if self._last_seq is not None and seq > self._last_seq + 1:
                self.seq_gaps += seq - self._last_seq - 1
            if self._last_seq is None or seq > self._last_seq:
                self._last_seq = seq
        kind = envelope.get("kind")
        data = envelope.get("data")
        if not isinstance(data, dict):
            return
        if kind == "header":
            self.header = data
        elif kind == "phase":
            name = str(data.get("phase", "(run)"))
            phase = self._phase(name)
            phase.units = int(data.get("units", 0) or 0)
            self.current_phase = name
        elif kind == "progress":
            phase = self._phase(data.get("phase"))
            phase.completed += 1
            if data.get("failed"):
                phase.failed += 1
            if data.get("quarantined"):
                phase.quarantined += 1
            if data.get("cache_hit"):
                phase.cache_hits += 1
            if self.track_keys and data.get("key"):
                self.completed_keys.add(str(data["key"]))
        elif kind == "unit":
            phase = self._phase(None)
            phase.journaled += 1
            if self.track_keys and data.get("key"):
                self.journaled_keys.add(str(data["key"]))
        elif kind == "drop":
            self.dropped += int(data.get("dropped", 0) or 0)
            self.last_note = (
                f"dropped {data.get('dropped')} for {data.get('subscriber')}"
            )
        elif kind == "flight":
            reason = str(data.get("reason", "?"))
            self.flight_reasons.append(reason)
            self.last_note = f"flight recorder dumped: {reason}"
        elif kind == "breaker":
            self.last_note = (
                f"breaker {data.get('event')}: {data.get('class')} "
                f"({data.get('failures')} failures)"
            )
        elif kind == "governor":
            self.last_note = (
                f"governor re-plan: {data.get('benchmark')} -> {data.get('pair')}"
            )
        elif kind == "pool":
            self.last_note = f"worker pool rebuilt (x{data.get('rebuilds')})"
        elif kind == "summary":
            self.summary = data
            self.finished = True
        elif kind == "metrics":
            self.finished = True
        # ``span``/``event`` envelopes carry no progress information the
        # ``phase``/``progress`` kinds don't already provide; counting
        # unit spans here would double-count against progress ticks.

    #: Phase-span names mapped onto the ``unit_kind`` their units carry,
    #: so raw-mode unit and phase spans land in the same bucket.
    _RAW_PHASE_KINDS = {"dataset-build": "dataset", "sweep": "sweep"}

    def _fold_raw(self, event: dict[str, Any]) -> None:
        """Fold a raw tracer document (plain ``events.jsonl`` lines).

        Spans arrive in *completion* order — units before the phase
        span that contains them — so raw mode groups by the unit's own
        ``unit_kind`` attr and folds phase spans onto the same bucket
        (accumulating declared totals across GPUs) instead of relying
        on a current-phase announcement the stream cannot provide.
        """
        etype = event.get("type")
        if etype == "metrics":
            self.finished = True
            return
        if etype != "span":
            return
        kind = event.get("kind")
        attrs = event.get("attrs") or {}
        if kind == "phase":
            name = str(event.get("name", "(run)"))
            phase = self._phase(self._RAW_PHASE_KINDS.get(name, name))
            units = attrs.get("units")
            if isinstance(units, int):
                phase.units += units
        elif kind == "unit":
            # Exactly one unit span per unit: executed units get one
            # grafted ``worker_clock`` span (serial runs included),
            # cache hits one parent-side span *instead* — never both.
            phase = self._phase(str(attrs.get("unit_kind") or "(units)"))
            phase.completed += 1
            if attrs.get("cache_hit"):
                phase.cache_hits += 1
            if event.get("status") not in (None, "ok"):
                phase.failed += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def completed_total(self) -> int:
        return sum(p.completed for p in self.phases.values())

    def journaled_total(self) -> int:
        return sum(p.journaled for p in self.phases.values())

    def declared_total(self) -> int:
        return sum(p.units for p in self.phases.values())

    def remaining(self) -> int:
        return max(0, self.declared_total() - self.completed_total())

    def eta_seconds(self) -> float | None:
        if self.finished:
            return 0.0
        if self.declared_total() <= 0:
            return None
        return self.eta.eta_s(self.remaining())

    def document(self) -> dict[str, Any]:
        """A machine-readable snapshot of the folded state."""
        return {
            "format": "repro.progress",
            "version": 1,
            "events": self.events,
            "dropped": self.dropped,
            "seq_gaps": self.seq_gaps,
            "finished": self.finished,
            "completed": self.completed_total(),
            "journaled": self.journaled_total(),
            "total": self.declared_total(),
            "flight_reasons": list(self.flight_reasons),
            "phases": [p.document() for p in self.phases.values()],
        }


def _format_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "--:--"
    seconds = max(0, int(round(eta_s)))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours:d}:{minutes:02d}:{secs:02d}"
    return f"{minutes:02d}:{secs:02d}"


def render_progress(engine: ProgressEngine) -> str:
    """The ``repro top`` console frame for the current folded state."""
    lines: list[str] = []
    header = engine.header or {}
    producer = header.get("producer", "unknown producer")
    state = "complete" if engine.finished else "running"
    lines.append(f"repro top — {producer} [{state}]")
    lines.append("")
    name_width = max([len(p.name) for p in engine.phases.values()] + [len("phase")])
    lines.append(
        f"{'phase':<{name_width}}  {'done':>6}  {'total':>6}  "
        f"{'fail':>5}  {'quar':>5}  {'hits':>5}  {'journal':>7}"
    )
    for phase in engine.phases.values():
        total = str(phase.units) if phase.units else "?"
        lines.append(
            f"{phase.name:<{name_width}}  {phase.completed:>6}  {total:>6}  "
            f"{phase.failed:>5}  {phase.quarantined:>5}  {phase.cache_hits:>5}  "
            f"{phase.journaled:>7}"
        )
    if not engine.phases:
        lines.append("(no phases announced yet)")
    lines.append("")
    completed = engine.completed_total()
    total = engine.declared_total()
    pct = f" ({100.0 * completed / total:.0f}%)" if total else ""
    eta = "done" if engine.finished else f"eta {_format_eta(engine.eta_seconds())}"
    lines.append(f"units: {completed}/{total or '?'}{pct}   {eta}")
    lines.append(
        f"events: {engine.events} folded, {engine.dropped} dropped, "
        f"{engine.seq_gaps} sequence gaps"
    )
    if engine.flight_reasons:
        lines.append(f"flight dumps: {', '.join(engine.flight_reasons)}")
    if engine.last_note:
        lines.append(f"last: {engine.last_note}")
    return "\n".join(lines) + "\n"


class TailReader:
    """Incremental NDJSON reader tolerant of a torn final line.

    Each :meth:`poll` reads whatever the producer appended since the
    last call and yields only *complete* lines; a partial final line
    (the writer mid-``write``, or a SIGKILL mid-flush) stays buffered
    until its newline shows up — or forever, which is exactly the
    durability contract: torn tails are ignored, never misparsed.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._offset = 0
        self._buffer = ""
        #: Complete lines that failed to parse as JSON (should stay 0).
        self.malformed = 0

    def poll(self) -> list[dict[str, Any]]:
        """Parse and return the complete new lines since the last poll."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except OSError:
            return []
        if not chunk:
            return []
        self._buffer += chunk
        events: list[dict[str, Any]] = []
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                self.malformed += 1
                continue
            if isinstance(parsed, dict):
                events.append(parsed)
        return events


def follow_into(
    engine: ProgressEngine,
    reader: TailReader,
    at: float | None = None,
) -> int:
    """Fold one poll's worth of events; returns how many were folded."""
    events = reader.poll()
    for event in events:
        engine.fold(event, at=at)
    return len(events)


def iter_events(path: str | pathlib.Path) -> Iterator[dict[str, Any]]:
    """One-shot iteration over a (possibly torn) NDJSON event file."""
    reader = TailReader(path)
    yield from reader.poll()
