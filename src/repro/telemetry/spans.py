"""Span trees: hierarchical timing of campaign work.

A :class:`Span` is one timed operation — a whole campaign, one GPU's
dataset build, one work unit, one execution attempt, or one instrument
operation (a meter window, a profiler pass, a VBIOS reconfiguration).
Spans nest: the :class:`Tracer` keeps a stack of open spans, so a span
opened while another is active becomes its child, and the completed
spans form a forest that mirrors the campaign's call structure::

    campaign
    └── phase: dataset:GTX 480
        └── unit: dataset(GTX 480, sgemm, x1)
            └── attempt 1
                ├── instrument: profiler-pass
                ├── instrument: vbios-reconfig
                └── instrument: meter-window   (one per frequency pair)

Work units execute in worker processes under their own tracer; the
parent grafts the serialized worker spans into its tree
(:meth:`Tracer.graft`), remapping span ids and flagging the grafted
spans ``worker_clock`` because their timestamps come from the worker's
monotonic clock, not the parent's.

Span *timings are wall-clock* and therefore never byte-identical run to
run; everything that must be deterministic lives in the metrics
registry (:mod:`repro.telemetry.metrics`) instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One timed operation in the span tree."""

    span_id: int
    parent_id: int | None
    name: str
    #: Coarse role of the span: ``campaign``, ``phase``, ``batch``,
    #: ``unit``, ``attempt`` or ``instrument``.
    kind: str
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Monotonic-clock start/end (seconds); ``end_s`` is ``None`` while
    #: the span is open.
    start_s: float = 0.0
    end_s: float | None = None
    status: str = "ok"

    @property
    def duration_s(self) -> float:
        """Wall duration of the span (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (one ``span`` event)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class Tracer:
    """Produces the span tree and streams completed spans to sinks.

    Parameters
    ----------
    sinks:
        Event sinks (:mod:`repro.telemetry.sinks`) receiving one event
        per completed span, in completion order (children before their
        parent, as in any tracing system).
    clock:
        Monotonic time source; injectable for tests.
    enabled:
        A disabled tracer records nothing and yields inert spans, so
        instrumented code pays one attribute check when telemetry is
        off.
    """

    def __init__(
        self,
        sinks: tuple | list = (),
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = True,
    ) -> None:
        self.sinks = list(sinks)
        self.enabled = enabled
        self._clock = clock
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs: Any) -> Iterator[Span]:
        """Open a child span of the currently active span."""
        if not self.enabled:
            yield _INERT_SPAN
            return
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            attrs=dict(attrs),
            start_s=self._clock(),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end_s = self._clock()
            self._stack.pop()
            self._finished.append(span)
            self.emit(span.document())

    def now(self) -> float:
        """Current reading of the tracer's monotonic clock."""
        return self._clock()

    def record(
        self,
        name: str,
        kind: str,
        start_s: float,
        end_s: float,
        status: str = "ok",
        **attrs: Any,
    ) -> Span | None:
        """Record an already-completed span under the active span.

        For call sites that only know whether an operation deserves a
        span after it finished (e.g. a cache lookup that turned out to
        be a hit).
        """
        if not self.enabled:
            return None
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            attrs=dict(attrs),
            start_s=start_s,
            end_s=end_s,
            status=status,
        )
        self._next_id += 1
        self._finished.append(span)
        self.emit(span.document())
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event (no duration) under the active span."""
        if not self.enabled:
            return
        self.emit(
            {
                "type": "event",
                "name": name,
                "parent_id": (
                    self._stack[-1].span_id if self._stack else None
                ),
                "attrs": {k: attrs[k] for k in sorted(attrs)},
            }
        )

    def graft(
        self, documents: list[dict[str, Any]] | tuple, **extra_attrs: Any
    ) -> list[Span]:
        """Adopt serialized spans from another tracer (a worker process).

        Span ids are remapped into this tracer's id space; roots of the
        grafted forest become children of the currently active span and
        carry ``extra_attrs`` plus ``worker_clock=True`` (their
        timestamps come from the worker's own monotonic clock, so only
        their *durations* are comparable to parent spans).
        """
        if not self.enabled or not documents:
            return []
        adopted: list[Span] = []
        parent_id = self._stack[-1].span_id if self._stack else None
        span_docs = [d for d in documents if d.get("type") == "span"]
        # Remap ids up front: documents arrive in completion order
        # (children before parents), so a child's parent id must resolve
        # before the parent's own document is seen.
        id_map: dict[int, int] = {}
        for doc in span_docs:
            id_map[doc["span_id"]] = self._next_id
            self._next_id += 1
        for doc in span_docs:
            new_id = id_map[doc["span_id"]]
            attrs = dict(doc.get("attrs", {}))
            attrs["worker_clock"] = True
            old_parent = doc.get("parent_id")
            if old_parent is None:
                attrs.update(extra_attrs)
            span = Span(
                span_id=new_id,
                parent_id=(
                    id_map.get(old_parent, parent_id)
                    if old_parent is not None
                    else parent_id
                ),
                name=doc["name"],
                kind=doc["kind"],
                attrs=attrs,
                start_s=doc["start_s"],
                end_s=doc["end_s"],
                status=doc.get("status", "ok"),
            )
            self._finished.append(span)
            self.emit(span.document())
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def emit(self, event: dict[str, Any]) -> None:
        """Send one event to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    @property
    def finished(self) -> tuple[Span, ...]:
        """Completed spans, in completion order."""
        return tuple(self._finished)

    def documents(self) -> list[dict[str, Any]]:
        """Serialized completed spans (picklable, JSON-able)."""
        return [s.document() for s in self._finished]

    def find(self, kind: str | None = None, name: str | None = None) -> list[Span]:
        """Completed spans filtered by kind and/or name (tests, summaries)."""
        return [
            s
            for s in self._finished
            if (kind is None or s.kind == kind)
            and (name is None or s.name == name)
        ]

    def children_of(self, span: Span) -> list[Span]:
        """Completed direct children of a span."""
        return [s for s in self._finished if s.parent_id == span.span_id]


#: Shared placeholder yielded by disabled tracers: writing to it is
#: harmless and nothing reads it back.
_INERT_SPAN = Span(span_id=0, parent_id=None, name="", kind="inert")
