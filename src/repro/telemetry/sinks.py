"""Event sinks: where tracer events and aggregated metrics land.

Two artifact shapes come out of a traced campaign:

* the **event log** — a JSONL stream (one JSON object per line) of
  ``span`` / ``event`` / ``metrics`` records in completion order,
  written incrementally by :class:`JsonlSink` and consumed by
  ``repro trace summarize``; and
* the **aggregated metrics document** — ``metrics.json``, written once
  at the end by :func:`write_metrics_json` with deterministic counters
  separated from wall-clock ``timings``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro._version import __version__

METRICS_FORMAT = "repro.metrics"


class Sink:
    """Event consumer interface."""

    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(Sink):
    """Collects events in a list (tests, in-process summaries)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Appends one JSON object per event to a file, opened lazily.

    The handle is line-buffered and additionally flushed per event, so
    a concurrent tailer (``repro top``, ``repro trace summarize
    --follow``) sees every completed line immediately and a killed
    campaign leaves a readable prefix of the log rather than a torn
    tail of partial objects.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle = None

    def emit(self, event: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(
                self.path, "w", encoding="utf-8", buffering=1
            )
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def metrics_document(snapshot: dict[str, Any]) -> dict[str, Any]:
    """The canonical ``metrics.json`` document for a metrics snapshot.

    ``counters`` are deterministic at any ``--jobs`` value; ``gauges``
    and ``timings`` may derive from wall clocks and are explicitly
    quarantined so artifact diffing can ignore them.
    """
    return {
        "format": METRICS_FORMAT,
        "version": __version__,
        "deterministic": ["counters"],
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "timings": snapshot.get("timings", {}),
    }


def write_metrics_json(
    path: str | pathlib.Path, snapshot: dict[str, Any]
) -> pathlib.Path:
    """Write the aggregated metrics artifact atomically."""
    # Local import: telemetry must stay importable before the execution
    # package (which itself imports telemetry) finishes initializing.
    from repro.execution.cache import atomic_write_text

    text = json.dumps(metrics_document(snapshot), indent=2, sort_keys=True)
    return atomic_write_text(path, text)
