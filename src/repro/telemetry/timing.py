"""The shared timing-stat schema: one shape for every wall-clock summary.

Two very different producers summarize wall-clock observations in this
codebase:

* the :class:`~repro.telemetry.metrics.Histogram` metrics stream small
  per-event observations without retaining samples (``metrics.json``'s
  quarantined ``timings`` section), and
* the benchmark harness (``repro.bench``) times full workload repeats
  and keeps every sample, so it can afford outlier-robust statistics.

Both emit documents under *one* field vocabulary, defined here, so a
consumer (``repro bench compare``, the trace summarizer, dashboards)
never has to translate between two ad-hoc spellings of "count / total /
min / max / mean".  The robust fields (median, MAD, IQR, standard
deviation) are a superset only the sample-retaining producer fills in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

#: Fields every timing summary carries (streaming producers included).
STREAMING_FIELDS = ("count", "total", "min", "max", "mean")

#: Additional outlier-robust fields sample-retaining producers carry.
ROBUST_FIELDS = ("median", "mad", "iqr", "stdev")


def streaming_document(
    count: int, total: float, min_value: float, max_value: float
) -> dict[str, Any]:
    """The canonical streaming timing document (``metrics.json`` shape).

    An empty summary (``count == 0``) zero-fills every field so the
    document keys are stable whatever the producer observed.
    """
    if count == 0:
        return {field: 0 if field == "count" else 0.0 for field in STREAMING_FIELDS}
    return {
        "count": int(count),
        "total": float(total),
        "min": float(min_value),
        "max": float(max_value),
        "mean": float(total) / int(count),
    }


def _median(ordered: Sequence[float]) -> float:
    """Median of an already-sorted sequence."""
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _quartiles(ordered: Sequence[float]) -> tuple[float, float]:
    """(Q1, Q3) by the median-of-halves (Tukey hinges) convention."""
    n = len(ordered)
    if n == 1:
        return ordered[0], ordered[0]
    mid = n // 2
    lower = ordered[:mid]
    upper = ordered[mid + 1 :] if n % 2 else ordered[mid:]
    return _median(lower), _median(upper)


@dataclass(frozen=True)
class TimingSummary:
    """Outlier-robust summary of a retained sample set.

    The benchmark harness reports medians and MAD/IQR spreads rather
    than means: a single OS scheduling hiccup shifts a mean arbitrarily
    but moves the median of 20 repeats by at most one rank.
    """

    count: int
    total: float
    min: float
    max: float
    mean: float
    median: float
    #: Median absolute deviation from the median (robust spread).
    mad: float
    #: Interquartile range, Q3 - Q1 (robust spread).
    iqr: float
    #: Plain standard deviation (population), for reference only.
    stdev: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TimingSummary":
        """Summarize a non-empty sequence of observations."""
        values = sorted(float(s) for s in samples)
        if not values:
            raise ValueError("cannot summarize an empty sample set")
        count = len(values)
        total = sum(values)
        mean = total / count
        median = _median(values)
        mad = _median(sorted(abs(v - median) for v in values))
        q1, q3 = _quartiles(values)
        stdev = math.sqrt(sum((v - mean) ** 2 for v in values) / count)
        return cls(
            count=count,
            total=total,
            min=values[0],
            max=values[-1],
            mean=mean,
            median=median,
            mad=mad,
            iqr=q3 - q1,
            stdev=stdev,
        )

    def document(self) -> dict[str, Any]:
        """JSON-able document: streaming fields plus the robust superset."""
        doc = streaming_document(self.count, self.total, self.min, self.max)
        doc["median"] = self.median
        doc["mad"] = self.mad
        doc["iqr"] = self.iqr
        doc["stdev"] = self.stdev
        return doc
