"""Structured campaign telemetry: spans, metrics and event logs.

Dependency-light observability for the measurement pipeline — the same
shape (trace spans + named counters + a structured event log) that
profiler-driven GPU modeling methodology relies on, applied to the
campaign itself:

* a :class:`Tracer` produces the span tree — campaign → phase (one
  GPU's sweep or dataset build) → work unit → attempt → instrument
  operation (meter windows, profiler passes, VBIOS reconfigurations);
* a :class:`Metrics` registry holds named counters (cache hits,
  retries, injected faults, exclusions — deterministic at any
  ``--jobs`` value), gauges and wall-time histograms;
* pluggable sinks write the JSONL event log and the aggregated
  ``metrics.json`` campaign artifact, with wall-clock values isolated
  in clearly-marked timing fields so the deterministic counter section
  composes with the byte-identical-manifest guarantees of the
  execution engine.

See docs/OBSERVABILITY.md for the span model, the metric-name
catalogue and the event schema.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
)
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    using_telemetry,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    METRICS_FORMAT,
    Sink,
    metrics_document,
    write_metrics_json,
)
from repro.telemetry.spans import Span, Tracer
from repro.telemetry.timing import (
    ROBUST_FIELDS,
    STREAMING_FIELDS,
    TimingSummary,
    streaming_document,
)
from repro.telemetry.summarize import (
    SpanAggregate,
    TraceSummary,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "METRICS_FORMAT",
    "MemorySink",
    "Metrics",
    "NULL_TELEMETRY",
    "NullMetrics",
    "ROBUST_FIELDS",
    "STREAMING_FIELDS",
    "Sink",
    "Span",
    "SpanAggregate",
    "Telemetry",
    "TimingSummary",
    "TraceSummary",
    "Tracer",
    "current_telemetry",
    "metrics_document",
    "read_events",
    "render_summary",
    "streaming_document",
    "summarize_events",
    "summarize_file",
    "using_telemetry",
    "write_metrics_json",
]
