"""Structured campaign telemetry: spans, metrics and event logs.

Dependency-light observability for the measurement pipeline — the same
shape (trace spans + named counters + a structured event log) that
profiler-driven GPU modeling methodology relies on, applied to the
campaign itself:

* a :class:`Tracer` produces the span tree — campaign → phase (one
  GPU's sweep or dataset build) → work unit → attempt → instrument
  operation (meter windows, profiler passes, VBIOS reconfigurations);
* a :class:`Metrics` registry holds named counters (cache hits,
  retries, injected faults, exclusions — deterministic at any
  ``--jobs`` value), gauges and wall-time histograms;
* pluggable sinks write the JSONL event log and the aggregated
  ``metrics.json`` campaign artifact, with wall-clock values isolated
  in clearly-marked timing fields so the deterministic counter section
  composes with the byte-identical-manifest guarantees of the
  execution engine.

Live observability rides on the same sink interface: an
:class:`EventBus` multiplexes spans, metrics, journal records, breaker
transitions and governor decisions into the versioned ``repro.events``
NDJSON protocol (tailable while the run executes), a
:class:`ProgressEngine` folds that stream into per-phase progress with
bench-seeded ETAs, a :class:`FlightRecorder` keeps a crash ring dumped
to ``flight.json`` on watchdog/breaker/pool/SIGTERM incidents, and
``repro trace export`` converts any event source into a
Perfetto-loadable Chrome trace.

See docs/OBSERVABILITY.md for the span model, the metric-name
catalogue, the event schema and the live-stream protocol.
"""

from repro.telemetry.bus import (
    EVENT_KINDS,
    EVENTS_FORMAT,
    EVENTS_VERSION,
    EventBus,
    FLIGHT_FORMAT,
    FlightRecorder,
    LiveEventWriter,
    Subscription,
)
from repro.telemetry.export import (
    export_trace,
    trace_events_document,
    validate_trace_document,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
)
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    using_telemetry,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    METRICS_FORMAT,
    Sink,
    metrics_document,
    write_metrics_json,
)
from repro.telemetry.progress import (
    EtaEstimator,
    PhaseProgress,
    ProgressEngine,
    TailReader,
    bench_unit_seconds,
    discover_bench_prior,
    follow_into,
    iter_events,
    render_progress,
)
from repro.telemetry.spans import Span, Tracer
from repro.telemetry.timing import (
    ROBUST_FIELDS,
    STREAMING_FIELDS,
    TimingSummary,
    streaming_document,
)
from repro.telemetry.summarize import (
    SpanAggregate,
    TraceSummary,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EVENTS_FORMAT",
    "EVENTS_VERSION",
    "EtaEstimator",
    "EventBus",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LiveEventWriter",
    "METRICS_FORMAT",
    "MemorySink",
    "Metrics",
    "NULL_TELEMETRY",
    "NullMetrics",
    "PhaseProgress",
    "ProgressEngine",
    "ROBUST_FIELDS",
    "STREAMING_FIELDS",
    "Sink",
    "Span",
    "SpanAggregate",
    "Subscription",
    "TailReader",
    "Telemetry",
    "TimingSummary",
    "TraceSummary",
    "Tracer",
    "bench_unit_seconds",
    "current_telemetry",
    "discover_bench_prior",
    "export_trace",
    "follow_into",
    "iter_events",
    "metrics_document",
    "read_events",
    "render_progress",
    "render_summary",
    "streaming_document",
    "summarize_events",
    "summarize_file",
    "trace_events_document",
    "using_telemetry",
    "validate_trace_document",
    "write_metrics_json",
]
