"""Render a per-phase / per-unit breakdown of a campaign event log.

Powers ``repro trace summarize <events.jsonl>``: reads the JSONL event
stream a traced run emitted, aggregates span durations by phase, by
work-unit kind and by instrument operation, and renders fixed-width
tables plus the deterministic counter section of the final metrics
snapshot (when the log carries one).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class SpanAggregate:
    """Streaming duration summary of one span group."""

    key: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = field(default=float("-inf"))
    errors: int = 0

    def add(self, duration_s: float, status: str) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)
        if status != "ok":
            self.errors += 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Aggregated view of one event log."""

    #: Span groups keyed by ``kind`` then group label.
    groups: dict[str, dict[str, SpanAggregate]]
    #: Last ``metrics`` event in the log, if any.
    metrics: dict[str, Any] | None
    #: Total events read.
    n_events: int

    def aggregate(self, kind: str) -> list[SpanAggregate]:
        """Aggregates of one span kind, largest total first."""
        rows = list(self.groups.get(kind, {}).values())
        rows.sort(key=lambda a: (-a.total_s, a.key))
        return rows

    @property
    def counters(self) -> dict[str, int]:
        """Deterministic counters of the final metrics event, if any."""
        if self.metrics is None:
            return {}
        counters = self.metrics.get("counters")
        if not isinstance(counters, dict):
            return {}
        normalized: dict[str, int] = {}
        for name, value in counters.items():
            try:
                normalized[str(name)] = int(value)
            except (TypeError, ValueError):
                continue
        return normalized

    def document(self) -> dict[str, Any]:
        """Machine-readable form: the same aggregates as the tables.

        Powers ``repro trace summarize --json``.  Span groups are keyed
        by kind then label, each carrying the count / total / min / max
        / mean / errors columns of the fixed-width tables; the
        deterministic counter section rides along when the log carried a
        final metrics event.
        """
        kinds: dict[str, list[dict[str, Any]]] = {}
        for kind in sorted(self.groups):
            kinds[kind] = [
                {
                    "group": row.key,
                    "count": row.count,
                    "total_s": row.total_s,
                    "mean_s": row.mean_s,
                    "min_s": row.min_s if row.count else 0.0,
                    "max_s": row.max_s if row.count else 0.0,
                    "errors": row.errors,
                }
                for row in self.aggregate(kind)
            ]
        return {
            "format": "repro.trace-summary",
            "n_events": self.n_events,
            "kinds": kinds,
            "counters": self.counters,
        }


def _group_label(event: dict[str, Any]) -> str:
    """The aggregation label of one span event.

    Phases and instruments group by name; units group by their work
    kind (``sweep`` / ``dataset`` / ``cache-hit``) so a 5000-unit
    campaign summarizes to a handful of rows.
    """
    kind = event.get("kind", "span")
    attrs = event.get("attrs", {})
    if kind == "unit":
        if attrs.get("cache_hit"):
            return "cache-hit"
        return str(attrs.get("unit_kind", "unit"))
    if kind == "attempt":
        return "attempt"
    return str(event.get("name", ""))


def _unwrap(event: dict[str, Any]) -> dict[str, Any] | None:
    """Reduce a ``repro.events`` envelope to a summarizable event.

    Envelope payloads that are tracer documents (``span`` / ``event`` /
    ``metrics``) pass through verbatim; engine-side kinds (``progress``,
    ``unit``, ``breaker``, ...) are tagged with their kind as ``type``
    so downstream consumers can still group them.  Raw (non-envelope)
    events pass through untouched.
    """
    if not ("v" in event and "kind" in event and "data" in event):
        return event
    data = event.get("data")
    if not isinstance(data, dict):
        return None
    if "type" in data:
        return data
    return {"type": event.get("kind"), **data}


def read_events(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse an event log, skipping torn or non-JSON lines.

    Accepts all three on-disk shapes: a raw trace log
    (``events.jsonl``), a live envelope stream (``events.ndjson`` —
    envelopes are unwrapped), and a flight-recorder dump
    (``flight.json`` — a single JSON document whose ``events`` list is
    unwrapped).
    """
    events: list[dict[str, Any]] = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        # Whole-file parse: a flight.json dump is one JSON document,
        # not NDJSON.  Anything else falls through to line mode.
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if (
            isinstance(document, dict)
            and document.get("format") == "repro.flight"
            and isinstance(document.get("events"), list)
        ):
            for wrapped in document["events"]:
                if isinstance(wrapped, dict):
                    event = _unwrap(wrapped)
                    if event is not None:
                        events.append(event)
            return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed run
        if isinstance(event, dict):
            event = _unwrap(event)
            if event is not None:
                events.append(event)
    return events


def summarize_events(events: Iterable[dict[str, Any]]) -> TraceSummary:
    """Aggregate span durations by kind and group label."""
    groups: dict[str, dict[str, SpanAggregate]] = {}
    metrics: dict[str, Any] | None = None
    n_events = 0
    for event in events:
        n_events += 1
        etype = event.get("type")
        if etype == "metrics":
            metrics = event
            continue
        if etype != "span":
            continue
        kind = event.get("kind", "span")
        label = _group_label(event)
        by_label = groups.setdefault(kind, {})
        aggregate = by_label.get(label)
        if aggregate is None:
            aggregate = by_label[label] = SpanAggregate(key=label)
        aggregate.add(
            float(event.get("duration_s", 0.0)),
            str(event.get("status", "ok")),
        )
    return TraceSummary(groups=groups, metrics=metrics, n_events=n_events)


def _render_table(title: str, rows: list[SpanAggregate]) -> list[str]:
    lines = [
        title,
        f"  {'group':32s} {'count':>7s} {'total[s]':>10s} "
        f"{'mean[s]':>9s} {'max[s]':>9s} {'errors':>7s}",
    ]
    for row in rows:
        lines.append(
            f"  {row.key:32s} {row.count:7d} {row.total_s:10.3f} "
            f"{row.mean_s:9.4f} {row.max_s:9.4f} {row.errors:7d}"
        )
    return lines


def render_summary(summary: TraceSummary) -> str:
    """Fixed-width report: phases, units, attempts, instruments, counters."""
    lines: list[str] = []
    sections = (
        ("campaign", "campaign"),
        ("phases", "phase"),
        ("work units", "unit"),
        ("attempts", "attempt"),
        ("instrument operations", "instrument"),
    )
    for title, kind in sections:
        rows = summary.aggregate(kind)
        if not rows:
            continue
        if lines:
            lines.append("")
        lines.extend(_render_table(title, rows))
    counters = summary.counters
    if counters:
        if lines:
            lines.append("")
        lines.append("counters (deterministic)")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:{width}s} {counters[name]:>9d}")
    if not lines:
        if summary.metrics is not None:
            # Metrics-only log (e.g. an untraced run's final snapshot):
            # nothing to tabulate, but the log is not malformed.
            return "no span events in log (metrics event only)"
        return "no span events in log"
    return "\n".join(lines)


def summarize_file(path: str | pathlib.Path) -> str:
    """Read, aggregate and render one event log."""
    return render_summary(summarize_events(read_events(path)))
