"""Named campaign metrics: counters, gauges and timing histograms.

The registry is split along the determinism boundary the campaign
artifacts rely on:

* **counters** are integers incremented by deterministic campaign
  events (cache hits, retries, injected faults, exclusions).  Because
  every count is a pure function of (unit list, seed, fault plan, cache
  state) and merges are commutative integer additions applied in *unit
  order*, the counter section of ``metrics.json`` is byte-identical at
  any ``--jobs`` value;
* **gauges** hold the last value set — derived quantities such as
  units/second throughput.  Gauges may be timing-derived and carry no
  determinism guarantee;
* **histograms** accumulate wall-clock observations (count / total /
  min / max / mean) and are by nature nondeterministic; they are
  exported under the clearly-marked ``timings`` section.

Metric names are dotted paths (``cache.hits``, ``faults.crash``,
``unit.seconds``); the full catalogue lives in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.timing import streaming_document


@dataclass
class Counter:
    """Monotonic integer counter."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """Last-value-wins float metric."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of float observations (timings)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def document(self) -> dict[str, float]:
        """Streaming timing document (``repro.telemetry.timing`` schema)."""
        return streaming_document(self.count, self.total, self.min, self.max)


class Metrics:
    """Create-on-first-use registry of named metrics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand: increment a counter."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Shorthand: record a histogram observation."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # export / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view: deterministic counters, then timing fields.

        Keys are sorted so two registries holding the same values
        serialize identically whatever their insertion order was.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "timings": {
                name: self._histograms[name].document()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add; gauges take the incoming value; histograms merge
        their summaries.  Counter merging is commutative, so any merge
        order yields the same counter section — the property the
        ``--jobs``-independence guarantee rests on (the engine still
        merges in unit order so the *timing* fields are as stable as
        wall clocks allow).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, doc in snapshot.get("timings", {}).items():
            hist = self.histogram(name)
            if not doc.get("count"):
                continue
            hist.count += int(doc["count"])
            hist.total += float(doc["total"])
            hist.min = min(hist.min, float(doc["min"]))
            hist.max = max(hist.max, float(doc["max"]))


class NullMetrics(Metrics):
    """Metrics API that records nothing (telemetry disabled).

    Handed out by the null telemetry context so instrumented code can
    increment unconditionally without accumulating unbounded state in
    long processes that never asked for telemetry.
    """

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)
