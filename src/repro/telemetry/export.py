"""Export a span tree to the Chrome trace-event format (Perfetto).

``repro trace export`` converts any event source ``read_events``
understands — a raw ``events.jsonl`` trace, a live ``events.ndjson``
envelope stream, or a ``flight.json`` crash dump — into a
``trace.json`` loadable in ``ui.perfetto.dev`` or ``chrome://tracing``.

Clock domains: spans recorded in the campaign process share one
monotonic clock, but spans grafted from pool workers (PR 3's
``Tracer.graft``, marked ``attrs.worker_clock``) carry *worker-process*
monotonic offsets that are not comparable to the parent's.  Rather than
pretending otherwise, the exporter splits the two domains into separate
Chrome "processes": pid 1 holds the campaign-clock tree on its own
timeline, pid 2 holds every worker-grafted subtree, one thread per
subtree, each rebased so its root starts at t=0 — durations and
intra-subtree structure stay exact, and nothing is fabricated across
the process boundary.

All events use the documented trace-event phases: ``X`` (complete
spans, microsecond ``ts``/``dur``), ``i`` (instants) and ``M``
(process/thread names).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.telemetry.summarize import read_events

EXPORT_FORMAT = "repro.trace-export"
EXPORT_VERSION = 1

#: Chrome trace-event pids for the two clock domains.
PARENT_PID = 1
WORKER_PID = 2

_REQUIRED_X_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def _micros(seconds: Any) -> float:
    try:
        return float(seconds) * 1e6
    except (TypeError, ValueError):
        return 0.0


def _args(span: dict[str, Any]) -> dict[str, Any]:
    args: dict[str, Any] = dict(span.get("attrs") or {})
    args["status"] = span.get("status", "ok")
    args["span_id"] = span.get("span_id")
    if span.get("parent_id") is not None:
        args["parent_id"] = span.get("parent_id")
    return args


def trace_events_document(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Build the Chrome trace-event JSON document for one event list.

    Every span event round-trips into exactly one ``ph: "X"`` complete
    event; point events become ``ph: "i"`` instants anchored at their
    parent span's start when it is known.
    """
    spans = [e for e in events if e.get("type") == "span"]
    points = [e for e in events if e.get("type") == "event"]

    worker = [s for s in spans if (s.get("attrs") or {}).get("worker_clock")]
    parent = [s for s in spans if not (s.get("attrs") or {}).get("worker_clock")]
    worker_ids = {s.get("span_id") for s in worker}
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id")}

    # Each worker-grafted subtree gets its own thread on the worker pid,
    # rebased so the subtree root starts at t=0: worker clocks are only
    # self-consistent within one grafted batch.
    subtree_of: dict[Any, Any] = {}

    def _root_of(span_id: Any) -> Any:
        """Memoized walk up the parent chain within the worker domain."""
        chain: list[Any] = []
        current = span_id
        while current not in subtree_of:
            chain.append(current)
            parent_id = by_id.get(current, {}).get("parent_id")
            if parent_id in worker_ids and parent_id in by_id:
                current = parent_id
            else:
                subtree_of[current] = current
                break
        root = subtree_of[current]
        for seen in chain:
            subtree_of[seen] = root
        return root

    roots: list[Any] = []
    tid_of_root: dict[Any, int] = {}
    base_of_root: dict[Any, float] = {}
    for span in worker:
        root = _root_of(span.get("span_id"))
        if root not in tid_of_root:
            tid_of_root[root] = len(tid_of_root) + 1
            roots.append(root)
            base_of_root[root] = _micros(span.get("start_s", 0.0))
        base_of_root[root] = min(
            base_of_root[root], _micros(span.get("start_s", 0.0))
        )

    parent_base = min(
        [_micros(s.get("start_s", 0.0)) for s in parent], default=0.0
    )

    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PARENT_PID,
            "tid": 0,
            "args": {"name": "campaign (parent clock)"},
        }
    ]
    if worker:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": WORKER_PID,
                "tid": 0,
                "args": {"name": "workers (rebased clocks)"},
            }
        )
        for root in roots:
            root_span = by_id.get(root, {})
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": WORKER_PID,
                    "tid": tid_of_root[root],
                    "args": {"name": str(root_span.get("name", "worker"))},
                }
            )

    span_anchor: dict[Any, tuple[int, int, float]] = {}
    for span in parent:
        ts = _micros(span.get("start_s", 0.0)) - parent_base
        trace_events.append(
            {
                "name": str(span.get("name", "span")),
                "cat": str(span.get("kind", "span")),
                "ph": "X",
                "ts": ts,
                "dur": _micros(span.get("duration_s", 0.0)),
                "pid": PARENT_PID,
                "tid": 1,
                "args": _args(span),
            }
        )
        span_anchor[span.get("span_id")] = (PARENT_PID, 1, ts)
    for span in worker:
        root = subtree_of[span.get("span_id")]
        tid = tid_of_root[root]
        ts = _micros(span.get("start_s", 0.0)) - base_of_root[root]
        trace_events.append(
            {
                "name": str(span.get("name", "span")),
                "cat": str(span.get("kind", "span")),
                "ph": "X",
                "ts": ts,
                "dur": _micros(span.get("duration_s", 0.0)),
                "pid": WORKER_PID,
                "tid": tid,
                "args": _args(span),
            }
        )
        span_anchor[span.get("span_id")] = (WORKER_PID, tid, ts)

    for point in points:
        pid, tid, ts = span_anchor.get(
            point.get("parent_id"), (PARENT_PID, 1, 0.0)
        )
        trace_events.append(
            {
                "name": str(point.get("name", "event")),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": dict(point.get("attrs") or {}),
            }
        )

    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "format": EXPORT_FORMAT,
            "version": EXPORT_VERSION,
            "spans": len(spans),
            "worker_spans": len(worker),
            "instants": len(points),
        },
        "traceEvents": trace_events,
    }


def validate_trace_document(document: dict[str, Any]) -> list[str]:
    """Check a document against the Chrome trace-event schema.

    Returns a list of problems (empty = valid): the JSON-object format
    requires a ``traceEvents`` list whose entries carry ``ph``/``pid``/
    ``tid``, with ``X`` events additionally carrying numeric ``ts`` and
    ``dur`` and a ``name``/``cat`` pair.
    """
    problems: list[str] = []
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents is not a list"]
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if ph == "M":
            continue
        for key in _REQUIRED_X_FIELDS:
            if key == "cat" and ph == "i":
                continue
            if key not in event:
                problems.append(f"{where}: missing {key}")
        for key in ("ts",) + (("dur",) if ph == "X" else ()):
            value = event.get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: non-numeric {key}")
            elif value < 0:
                problems.append(f"{where}: negative {key}")
    return problems


def export_trace(
    events_path: str | pathlib.Path,
    out_path: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Convert an event log to ``trace.json``; returns the output path.

    Raises ``ValueError`` when the generated document fails schema
    validation — that would be an exporter bug, not a user error, and
    must not produce a silently unloadable file.
    """
    events_path = pathlib.Path(events_path)
    if out_path is None:
        out_path = events_path.with_name("trace.json")
    out_path = pathlib.Path(out_path)
    document = trace_events_document(read_events(events_path))
    problems = validate_trace_document(document)
    if problems:
        raise ValueError(
            "generated trace failed validation: " + "; ".join(problems[:5])
        )
    # Local import: telemetry must stay importable before the execution
    # package finishes initializing.
    from repro.execution.cache import atomic_write_text

    atomic_write_text(out_path, json.dumps(document, indent=2, sort_keys=True))
    return out_path
