"""Extension: leave-one-benchmark-out validation of the unified models.

The paper evaluates in-sample; this experiment quantifies generalization
to unseen workloads (DESIGN.md §7).
"""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.core.crossval import leave_one_benchmark_out
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments import context
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_crossval"
TITLE = "Leave-one-benchmark-out cross-validation (extension)"


def run(seed: int | None = None) -> ExperimentResult:
    """Run LOBO validation for both model families on every GPU."""
    rows = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        for kind, model_cls in (
            ("power", UnifiedPowerModel),
            ("performance", UnifiedPerformanceModel),
        ):
            cv = leave_one_benchmark_out(model_cls, ds)
            worst = cv.worst_benchmarks(1)[0]
            rows.append(
                [
                    name,
                    kind,
                    round(cv.in_sample.mean_pct_error, 1),
                    round(cv.mean_pct_error, 1),
                    round(cv.generalization_gap_pct, 1),
                    f"{worst[0]} ({worst[1]:.0f}%)",
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Model",
            "In-sample err[%]",
            "Held-out err[%]",
            "Gap[%]",
            "Worst held-out benchmark",
        ],
        rows=rows,
        notes=(
            "Held-out error exceeds in-sample error — the unified models "
            "memorize part of each benchmark's idiosyncrasy through its "
            "counters, so a runtime system should expect the held-out "
            "numbers for workloads it never profiled."
        ),
        paper_values={
            "status": "extension — the paper reports in-sample errors only"
        },
    )
