"""One module per paper artifact (8 tables, 11 figures).

Use :func:`repro.experiments.registry.get_experiment` /
:func:`repro.experiments.registry.all_experiments` or the CLI
(``python -m repro run fig4``).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiments, get_experiment, run

__all__ = ["ExperimentResult", "all_experiments", "get_experiment", "run"]
