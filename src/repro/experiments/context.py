"""Shared, cached computations for the experiment suite.

Most experiments need the same expensive inputs — full frequency sweeps
(Section III) and fitted unified models over the 114-sample dataset
(Section IV) for each of the four GPUs.  This module memoizes them per
(GPU, seed) so running the whole experiment suite costs one sweep and one
model fit per card rather than one per artifact.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.specs import GPUSpec, get_gpu
from repro.characterize.sweep import FrequencySweep, SweepTable
from repro.core.dataset import ModelingDataset, build_dataset
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.session.context import RunContext


@lru_cache(maxsize=None)
def run_context(seed: int | None = None) -> RunContext:
    """The shared session context experiments run under, per seed.

    Experiments are seed-parameterized only (serial, uncached,
    fault-free, untraced), so one resolved context per seed serves the
    whole suite.
    """
    return RunContext.resolve(seed=seed)


@lru_cache(maxsize=None)
def sweep_table(gpu_name: str, seed: int | None = None) -> SweepTable:
    """Full Section III sweep (all benchmarks, all pairs) of one card."""
    gpu: GPUSpec = get_gpu(gpu_name)
    return FrequencySweep(gpu, run_context(seed)).run()


@lru_cache(maxsize=None)
def dataset(gpu_name: str, seed: int | None = None) -> ModelingDataset:
    """The 114-sample modeling dataset of one card."""
    return build_dataset(get_gpu(gpu_name), ctx=run_context(seed))


@lru_cache(maxsize=None)
def power_model(
    gpu_name: str, seed: int | None = None, max_features: int = 10
) -> UnifiedPowerModel:
    """Fitted unified power model (Eq. 1) of one card."""
    model = UnifiedPowerModel(max_features=max_features)
    return model.fit(dataset(gpu_name, seed))


@lru_cache(maxsize=None)
def performance_model(
    gpu_name: str, seed: int | None = None, max_features: int = 10
) -> UnifiedPerformanceModel:
    """Fitted unified performance model (Eq. 2) of one card."""
    model = UnifiedPerformanceModel(max_features=max_features)
    return model.fit(dataset(gpu_name, seed))


def clear_caches() -> None:
    """Drop all memoized sweeps/datasets/models (tests)."""
    run_context.cache_clear()
    sweep_table.cache_clear()
    dataset.cache_clear()
    power_model.cache_clear()
    performance_model.cache_clear()
