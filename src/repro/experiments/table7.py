"""Table VII: average prediction error of the power model."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.experiments.base import ExperimentResult
from repro.experiments.modeltables import model_reports

EXPERIMENT_ID = "table7"
TITLE = "Average prediction error of the power model (Table VII)"

PAPER_PCT = {"GTX 285": 15.0, "GTX 460": 14.0, "GTX 480": 18.2, "GTX 680": 23.5}
PAPER_W = {"GTX 285": 20.1, "GTX 460": 15.2, "GTX 480": 24.4, "GTX 680": 23.7}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table VII."""
    reports = model_reports("power", seed)
    rows = [
        ["Error[%] (ours)"]
        + [round(reports[n][1].mean_pct_error, 1) for n in GPU_NAMES],
        ["Error[%] (paper)"] + [PAPER_PCT[n] for n in GPU_NAMES],
        ["Error[W] (ours)"]
        + [round(reports[n][1].mean_abs_error, 1) for n in GPU_NAMES],
        ["Error[W] (paper)"] + [PAPER_W[n] for n in GPU_NAMES],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Metric"] + list(GPU_NAMES),
        rows=rows,
        notes=(
            "The paper's headline: despite low R̄², absolute errors stay "
            "small because system power varies within a narrow band."
        ),
        paper_values={"Error[%]": str(PAPER_PCT), "Error[W]": str(PAPER_W)},
    )
