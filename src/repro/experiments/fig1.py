"""Fig. 1: performance and power efficiency of Backprop."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.clockfigs import run_clock_figure

EXPERIMENT_ID = "fig1"
TITLE = "Performance and power efficiency of Backprop (Fig. 1)"

PAPER_VALUES = {
    "best pairs": "H-L / H-L / H-L / M-L (GTX 285/460/480/680)",
    "efficiency improvement over H-H": "13% / 39% / 40% / 75%",
    "performance loss at best": "2% / 2% / 0.1% / 30%",
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Backprop clock figure."""
    return run_clock_figure(EXPERIMENT_ID, "backprop", PAPER_VALUES, seed)
