"""Fig. 4: power-efficiency improvement with the best configuration."""

from __future__ import annotations

import numpy as np

from repro.arch.specs import all_gpus
from repro.characterize.efficiency import characterize_gpu
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.kernels.suites import all_benchmarks

EXPERIMENT_ID = "fig4"
TITLE = "Power-efficiency improvement with the best configuration (Fig. 4)"

#: Paper's reported average improvement per GPU (percent).
PAPER_AVERAGES = {
    "GTX 285": 0.8,
    "GTX 460": 12.3,
    "GTX 480": 12.1,
    "GTX 680": 24.4,
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 4 from the full sweeps."""
    per_gpu = {}
    for gpu in all_gpus():
        table = context.sweep_table(gpu.name, seed)
        chars = characterize_gpu(gpu, table=table)
        per_gpu[gpu.name] = {c.benchmark: c.improvement_pct for c in chars}

    rows = []
    for bench in all_benchmarks():
        rows.append(
            [bench.name]
            + [per_gpu[g.name][bench.name] for g in all_gpus()]
        )
    averages = {
        name: float(np.mean(list(values.values())))
        for name, values in per_gpu.items()
    }
    rows.append(
        ["AVERAGE"] + [averages[g.name] for g in all_gpus()]
    )
    notes = "Average improvement (ours vs paper): " + ", ".join(
        f"{name}: {averages[name]:.1f}% (paper {PAPER_AVERAGES[name]}%)"
        for name in averages
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Benchmark"] + [f"{g.name} [%]" for g in all_gpus()],
        rows=rows,
        notes=notes,
        paper_values={
            "averages": f"{PAPER_AVERAGES}",
            "trend": (
                "improvement grows with GPU generation; six GTX 680 "
                "benchmarks exceed 40%"
            ),
        },
    )
