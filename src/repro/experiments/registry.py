"""Registry and runner for all paper artifacts."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.session.context import RunContext

from repro.experiments import (
    ext_bootstrap,
    ext_crossval,
    ext_fleet,
    ext_governor,
    ext_governor_online,
    ext_methods,
    ext_pareto,
    ext_profiler,
    ext_radeon,
    ext_roofline,
    ext_seeds,
    ext_synthetic,
    ext_thermal,
    ext_transfer,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.base import ExperimentResult

#: Paper artifacts in paper order, then the extensions of DESIGN.md §7.
_MODULES = (
    table1,
    table2,
    table3,
    fig1,
    fig2,
    fig3,
    table4,
    fig4,
    table5,
    table6,
    table7,
    table8,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    ext_crossval,
    ext_transfer,
    ext_radeon,
    ext_governor,
    ext_governor_online,
    ext_bootstrap,
    ext_methods,
    ext_roofline,
    ext_synthetic,
    ext_thermal,
    ext_seeds,
    ext_profiler,
    ext_pareto,
    ext_fleet,
)

#: Experiment id -> (title, run callable), in paper order.
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {
    m.EXPERIMENT_ID: (m.TITLE, m.run) for m in _MODULES
}


def all_experiments() -> list[str]:
    """All experiment ids in paper order."""
    return list(EXPERIMENTS)


def get_experiment(
    experiment_id: str,
) -> tuple[str, Callable[..., ExperimentResult]]:
    """(title, run callable) of one experiment."""
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(EXPERIMENTS)}"
        ) from None


def run(
    experiment_id: str,
    seed: int | None = None,
    ctx: "RunContext | None" = None,
) -> ExperimentResult:
    """Run one experiment by id.

    Experiments are seed-parameterized; passing a
    :class:`~repro.session.RunContext` runs under its seed (the
    preferred spelling for callers that already hold a session).
    """
    _, runner = get_experiment(experiment_id)
    if ctx is not None:
        if seed is not None and seed != ctx.seed:
            raise ValueError("pass either seed or ctx, not conflicting both")
        seed = ctx.seed
    return runner(seed=seed)
