"""Table V: adjusted R² of the power model."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.modeltables import r2_table

EXPERIMENT_ID = "table5"
TITLE = "R̄² of the power model (Table V)"

PAPER_R2 = {"GTX 285": 0.30, "GTX 460": 0.59, "GTX 480": 0.70, "GTX 680": 0.18}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table V."""
    return r2_table(EXPERIMENT_ID, TITLE, "power", PAPER_R2, seed)
