"""Extension: modeling-method shoot-out.

Compares, per GPU, the paper's forward-selected 10-variable linear model
against three alternatives on the *power* target (the harder one):

* backward elimination (classical stepwise alternative),
* ridge over all counters (GCV-chosen penalty),
* a random forest over raw counters + frequencies (Zhang et al.'s
  method from the related work).

This bounds how much of the paper's error is due to the linear form and
the greedy selection, versus genuinely unmodelable structure.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import GPU_NAMES
from repro.baselines.forest import ForestModel
from repro.core.features import power_feature_matrix
from repro.core.models import UnifiedPowerModel
from repro.core.ridge import backward_eliminate, fit_ridge
from repro.experiments import context
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_methods"
TITLE = "Modeling-method comparison on the power target (extension)"


def _mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    return float(np.mean(100.0 * np.abs(predicted - actual) / np.abs(actual)))


def run(seed: int | None = None) -> ExperimentResult:
    """Fit all four methods per GPU and compare in-sample error."""
    rows = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        X, names = power_feature_matrix(ds)
        y = ds.avg_power_w()

        forward = UnifiedPowerModel().fit(ds)
        forward_err = _mape(y, forward.predict(ds))

        backward = backward_eliminate(X, y, names)
        backward_err = _mape(y, backward.predict(X))

        ridge = fit_ridge(X, y)
        ridge_err = _mape(y, ridge.predict(X))

        forest = ForestModel("power", n_trees=25).fit(ds)
        forest_err = forest.mean_pct_error(ds)

        rows.append(
            [
                name,
                round(forward_err, 1),
                round(backward_err, 1),
                len(backward.selected),
                round(ridge_err, 1),
                round(forest_err, 1),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Forward-10 err[%]",
            "Backward err[%]",
            "Backward #vars",
            "Ridge err[%]",
            "Forest err[%]",
        ],
        rows=rows,
        notes=(
            "The linear methods land close together — the greedy "
            "direction and the 10-variable cap cost little, supporting "
            "the paper's choice of the simplest variant.  The random "
            "forest fits tighter in-sample (it can memorize benchmark "
            "identity through counter combinations), which is exactly "
            "the behaviour Zhang et al. exploited — and why it does not "
            "extrapolate to unseen frequency pairs the way a model with "
            "frequency in its functional form does."
        ),
        paper_values={
            "context": (
                "the paper cites Zhang et al.'s random-forest Radeon "
                "study and leaves 'a more sophisticated model' to future "
                "work"
            )
        },
    )
