"""Extension: bootstrap confidence intervals for Tables V-VIII.

The paper reports point estimates of R-bar-squared and mean errors; with
33 benchmarks those statistics carry real sampling variability.  This
experiment attaches benchmark-level bootstrap intervals, which also puts
the paper-vs-ours comparisons of EXPERIMENTS.md into perspective.
"""

from __future__ import annotations

from repro.analysis.bootstrap import model_quality_ci
from repro.arch.specs import GPU_NAMES
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments import context
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_bootstrap"
TITLE = "Bootstrap confidence intervals for the model-quality tables (extension)"

#: Replicates per (GPU, model); each refits the model on a resample.
N_RESAMPLES = 30


def run(seed: int | None = None) -> ExperimentResult:
    """Compute benchmark-bootstrap CIs for both model families."""
    rows = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        for kind, model_cls in (
            ("power", UnifiedPowerModel),
            ("performance", UnifiedPerformanceModel),
        ):
            ci = model_quality_ci(
                model_cls, ds, n_resamples=N_RESAMPLES, seed=seed
            )
            rows.append(
                [
                    name,
                    kind,
                    f"{ci.adjusted_r2.point:.2f} "
                    f"[{ci.adjusted_r2.low:.2f}, {ci.adjusted_r2.high:.2f}]",
                    f"{ci.mean_pct_error.point:.1f} "
                    f"[{ci.mean_pct_error.low:.1f}, {ci.mean_pct_error.high:.1f}]",
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["GPU", "Model", "R̄² [90% CI]", "Error% [90% CI]"],
        rows=rows,
        notes=(
            f"Benchmark-level bootstrap, {N_RESAMPLES} replicates. The "
            "wide R̄² intervals for the power model show that single-"
            "campaign point estimates (like Table V's 0.18 vs 0.30) are "
            "within resampling noise of each other."
        ),
        paper_values={
            "status": "extension — the paper reports point estimates only"
        },
    )
