"""Extension: roofline map of the workload suite across generations.

Places every benchmark on each GPU's (H-H) roofline and counts how DVFS
moves the ridge point.  This is the geometric summary of Section III:
the same suite is mostly memory-bound on a cacheless Tesla and mostly
compute-bound on Kepler, which is why the energy-optimal frequency pairs
diversify."""

from __future__ import annotations

from repro.analysis.roofline import (
    bound_migration,
    machine_balance,
    roofline_sweep,
)
from repro.arch.specs import all_gpus
from repro.experiments.base import ExperimentResult
from repro.kernels.suites import all_benchmarks

EXPERIMENT_ID = "ext_roofline"
TITLE = "Roofline map of the benchmark suite (extension)"


def run(seed: int | None = None) -> ExperimentResult:
    """Compute roofline statistics per GPU."""
    benches = list(all_benchmarks())
    rows = []
    for gpu in all_gpus():
        hh = gpu.default_point()
        points = roofline_sweep(benches, gpu, hh)
        compute_bound = sum(1 for p in points if p.compute_bound)
        migrating = sum(
            1
            for b in benches
            if len(set(bound_migration(b, gpu).values())) == 2
        )
        rows.append(
            [
                gpu.name,
                round(machine_balance(gpu, hh), 1),
                f"{compute_bound}/37",
                f"{37 - compute_bound}/37",
                f"{migrating}/37",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Ridge [flop/byte]",
            "Compute-bound",
            "Memory-bound",
            "Migrates across pairs",
        ],
        rows=rows,
        notes=(
            "The ridge point nearly triples from Tesla to Kepler, but "
            "post-cache intensity grows almost in step — the cache "
            "hierarchy offsets the widening compute/bandwidth gap, so "
            "the suite's bound mix stays roughly constant while each "
            "workload's *margin* from the ridge changes, which is what "
            "DVFS exploits.  Workloads that migrate between bounds "
            "across pairs are the Fig. 3 cases where the optimal pair "
            "is non-obvious."
        ),
        paper_values={
            "status": (
                "extension — geometric summary of the Section III "
                "characterization"
            )
        },
    )
