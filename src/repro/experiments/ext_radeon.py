"""Extension: the paper's future work — an AMD Radeon through the pipeline.

Section IV-B: *"Our future work is to validate the proposed power
performance models by targeting multiple GPU microarchitectures as
NVIDIA's Kepler and AMD's Radeon."*  This experiment runs the complete
methodology — characterization sweep, 114-sample dataset, unified model
fitting — against a GCN-generation Radeon HD 7970 with its own counter
set (GPUPerfAPI-style names) and DVFS table.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import get_gpu
from repro.characterize.efficiency import characterize_gpu
from repro.characterize.sweep import FrequencySweep
from repro.core.dataset import build_dataset
from repro.experiments.context import run_context
from repro.core.evaluate import evaluate_model
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_radeon"
TITLE = "Radeon HD 7970 (GCN) through the full pipeline (extension)"


def run(seed: int | None = None) -> ExperimentResult:
    """Characterize and model the extension card end to end."""
    gpu = get_gpu("Radeon HD 7970")

    table = FrequencySweep(gpu, run_context(seed)).run()
    records = characterize_gpu(gpu, table=table)
    non_default = sum(1 for r in records if not r.is_default_best)
    mean_gain = float(np.mean([r.improvement_pct for r in records]))
    backprop = next(r for r in records if r.benchmark == "backprop")

    ds = build_dataset(gpu, ctx=run_context(seed))
    power = UnifiedPowerModel().fit(ds)
    perf = UnifiedPerformanceModel().fit(ds)
    power_report = evaluate_model(power, ds)
    perf_report = evaluate_model(perf, ds)

    rows = [
        ["counter set size", len(ds.counter_names)],
        ["modeling samples", ds.n_samples],
        ["configurable pairs", len(gpu.operating_points())],
        ["non-default best pairs", f"{non_default}/37"],
        ["mean best-pair gain [%]", round(mean_gain, 1)],
        [
            "backprop best pair / gain",
            f"({backprop.best_pair}) +{backprop.improvement_pct:.1f}%",
        ],
        ["power model R̄²", round(power.adjusted_r2, 2)],
        ["power model error [%] / [W]",
         f"{power_report.mean_pct_error:.1f} / {power_report.mean_abs_error:.1f}"],
        ["performance model R̄²", round(perf.adjusted_r2, 2)],
        ["performance model error [%]", round(perf_report.mean_pct_error, 1)],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Metric", "Radeon HD 7970"],
        rows=rows,
        notes=(
            "The methodology carries over unchanged: the GCN counter set "
            "plugs into the same Eq. 1/Eq. 2 feature construction, and "
            "the unified models reach NVIDIA-comparable quality — "
            "supporting the paper's conjecture that the statistical "
            "approach generalizes across vendors."
        ),
        paper_values={
            "status": (
                "extension — the paper names AMD Radeon as future work "
                "(Section IV-B)"
            )
        },
    )
