"""Fig. 7: impact of the number of explanatory variables (power)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.varsweep import variable_sweep_figure

EXPERIMENT_ID = "fig7"
TITLE = "Impact of explanatory variables on the power model (Fig. 7)"

PAPER_VALUES = {
    "observation": (
        "R̄² barely improves beyond 10 variables; 10 gives reasonable "
        "accuracy"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 7 sweep."""
    return variable_sweep_figure(
        EXPERIMENT_ID, TITLE, "power", PAPER_VALUES, seed
    )
