"""Fig. 6: errors in prediction of the performance model, per benchmark."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.errorfigs import error_distribution_figure

EXPERIMENT_ID = "fig6"
TITLE = "Performance-model prediction errors by benchmark (Fig. 6)"

PAPER_VALUES = {
    "observation": (
        "errors shrink with newer generations; execution-time targets "
        "spanning ms to tens of seconds make percentage errors large "
        "despite R̄² >= 0.90"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 6 distribution."""
    return error_distribution_figure(
        EXPERIMENT_ID, TITLE, "performance", PAPER_VALUES, seed
    )
