"""Extension: closed-loop online governor vs the exhaustive oracle.

Where ``ext_governor`` scores a governor driven by *batch* models fit
on the completed dataset, this experiment closes the loop the related
run-time power-modeling work demands: the recursive estimators of
:mod:`repro.core.online` ingest the campaign's measurements as a
stream, an :class:`~repro.optimize.governor.OnlineGovernor` re-plans
the (core, memory) pair at every workload phase from the live model,
and the exhaustive oracle scores the converged decisions for energy
regret — including under fault plans, where the estimator's
skip-update policy keeps the controller stable through meter dropout
and profiler failures.

The module also exports the pieces the CLI (``repro governor``), the
golden regret-table test and the stress tests share:
:func:`stream_campaign`, :func:`evaluate_online` and
:func:`regret_document`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.arch.specs import GPU_NAMES, get_gpu
from repro.core.dataset import ModelingDataset, Observation, build_dataset
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.kernels.suites import get_benchmark
from repro.optimize.governor import DEFAULT_PAIR, ModelGovernor, OnlineGovernor
from repro.optimize.oracle import exhaustive_oracle
from repro.session.context import RunContext
from repro.session.spec import GovernorSpec
from repro.telemetry.runtime import using_telemetry

EXPERIMENT_ID = "ext_governor_online"
TITLE = "Online RLS governor vs exhaustive oracle (extension)"

#: Same evaluation workloads and scale as the offline ``ext_governor``,
#: so the two experiments' regret columns are directly comparable.
WORKLOADS = ("kmeans", "hotspot", "lbm", "sgemm", "spmv", "stencil", "MAdd")
SCALE = 0.25

#: Schema of the regret-table artifact ``repro governor`` writes.
REGRET_FORMAT = "repro.governor-regret"
REGRET_VERSION = 1


def _phases(
    dataset: ModelingDataset,
) -> list[tuple[tuple[str, float], list[Observation]]]:
    """The dataset's observations grouped per (benchmark, scale) phase.

    Order is first appearance in the dataset — the deterministic unit
    order of the build, whatever ``--jobs`` executed it — so the
    governor sees an identical stream serial or parallel.
    """
    order: list[tuple[str, float]] = []
    groups: dict[tuple[str, float], list[Observation]] = {}
    for obs in dataset.observations:
        key = obs.sample_key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(obs)
    return [(key, groups[key]) for key in order]


def stream_campaign(
    dataset: ModelingDataset, spec: GovernorSpec | None = None
) -> OnlineGovernor:
    """Replay a dataset as the live stream of one campaign.

    For every workload phase the governor first re-plans from whatever
    it has learned so far (populating the decision log the stability
    tests inspect), then ingests the phase's measurements.
    """
    governor = OnlineGovernor(
        dataset.gpu,
        dataset.counter_names,
        dataset.counter_domains,
        spec=spec,
    )
    for (benchmark, scale), observations in _phases(dataset):
        governor.decide(benchmark, scale, observations[0].counters)
        for obs in observations:
            governor.observe(obs)
    return governor


def _profile_counters(
    dataset: ModelingDataset, benchmark: str, scale: float
) -> dict[str, float] | None:
    for obs in dataset.observations:
        if obs.benchmark == benchmark and obs.scale == scale:
            return obs.counters
    return None


@dataclass(frozen=True)
class OnlineCampaignReport:
    """Outcome of one GPU's closed-loop campaign."""

    gpu_name: str
    #: Per-workload scoring: pair, source, regret/oracle details.
    per_workload: dict[str, dict[str, Any]]
    #: Mean converged-decision energy regret vs the oracle (percent).
    mean_regret_pct: float
    #: Mean regret of the offline batch-model governor on the same
    #: dataset (the reference the online loop must approach).
    offline_mean_regret_pct: float
    #: Full decision log of the streaming phase (canonical documents).
    decisions: tuple[dict[str, Any], ...]
    updates: int
    skipped: int
    fallbacks: int
    switches: int

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (regret tables, golden snapshots)."""
        return {
            "mean_regret_pct": round(self.mean_regret_pct, 3),
            "offline_mean_regret_pct": round(self.offline_mean_regret_pct, 3),
            "per_workload": {
                name: dict(sorted(entry.items()))
                for name, entry in sorted(self.per_workload.items())
            },
            "updates": self.updates,
            "skipped": self.skipped,
            "fallbacks": self.fallbacks,
            "switches": self.switches,
            "decisions": len(self.decisions),
        }


def evaluate_online(
    dataset: ModelingDataset,
    spec: GovernorSpec | None = None,
    seed: int | None = None,
    workloads: Sequence[str] = WORKLOADS,
    scale: float = SCALE,
) -> OnlineCampaignReport:
    """Stream one campaign and score the converged decisions.

    The oracle measures ground truth on a healthy testbed (regret is
    always against reality, not against the faulted instruments), while
    both governors — online and the offline reference — see only the
    given, possibly fault-degraded, dataset.
    """
    governor = stream_campaign(dataset, spec=spec)

    offline_power = UnifiedPowerModel().fit(dataset)
    offline_perf = UnifiedPerformanceModel().fit(dataset)
    offline = ModelGovernor(offline_power, offline_perf)

    per_workload: dict[str, dict[str, Any]] = {}
    regrets: list[float] = []
    offline_regrets: list[float] = []
    for name in workloads:
        oracle = exhaustive_oracle(
            dataset.gpu, get_benchmark(name), scale=scale, seed=seed
        )
        counters = _profile_counters(dataset, name, scale)
        decision = governor.decide(name, scale, counters)
        regret_pct = oracle.regret(decision.op.key) * 100.0
        regrets.append(regret_pct)
        try:
            offline_pair = offline.decide(dataset, name, scale).op.key
        except KeyError:
            # The sample was excluded under the fault plan; the offline
            # governor can only hold the default clocks.
            offline_pair = DEFAULT_PAIR
        offline_regret_pct = oracle.regret(offline_pair) * 100.0
        offline_regrets.append(offline_regret_pct)
        per_workload[name] = {
            "pair": decision.op.key,
            "source": decision.source,
            "regret_pct": round(regret_pct, 3),
            "offline_pair": offline_pair,
            "offline_regret_pct": round(offline_regret_pct, 3),
            "oracle_pair": oracle.best_pair,
            "rank": oracle.rank(decision.op.key),
        }

    return OnlineCampaignReport(
        gpu_name=dataset.gpu.name,
        per_workload=per_workload,
        mean_regret_pct=float(np.mean(regrets)),
        offline_mean_regret_pct=float(np.mean(offline_regrets)),
        decisions=tuple(governor.decision_log),
        updates=governor.n_updates,
        skipped=governor.n_skipped,
        fallbacks=governor.n_fallbacks,
        switches=governor.n_switches,
    )


def campaign_dataset(
    gpu_name: str, ctx: RunContext | None = None
) -> ModelingDataset:
    """The dataset one governor campaign streams.

    Fault-free default contexts reuse the experiment suite's memoized
    dataset; anything else (fault plans, parallel execution) builds
    afresh under the given context.
    """
    if ctx is None or (
        ctx.faults is None
        and ctx.execution.jobs == 1
        and ctx.execution.cache_dir is None
    ):
        return context.dataset(gpu_name, ctx.seed if ctx else None)
    return build_dataset(get_gpu(gpu_name), ctx=ctx)


def regret_document(
    gpu_names: Sequence[str] | None = None,
    spec: GovernorSpec | None = None,
    ctx: RunContext | None = None,
) -> dict[str, Any]:
    """The canonical per-GPU regret table (CLI artifact, golden file)."""
    if gpu_names is None:
        gpu_names = GPU_NAMES
    if spec is None:
        spec = GovernorSpec(mode="online")
    seed = ctx.seed if ctx is not None else None
    gpus: dict[str, Any] = {}
    # Install the context's telemetry ambiently so the governor's
    # counters/spans land in a traced run's metrics (the streaming loop
    # itself only sees current_telemetry()).
    scope = (
        using_telemetry(ctx.telemetry)
        if ctx is not None and ctx.telemetry is not None
        else contextlib.nullcontext()
    )
    with scope:
        for name in gpu_names:
            dataset = campaign_dataset(name, ctx)
            report = evaluate_online(dataset, spec=spec, seed=seed)
            gpus[name] = report.document()
    return {
        "format": REGRET_FORMAT,
        "version": REGRET_VERSION,
        "spec": spec.document(),
        "seed": seed,
        "faults": (
            ctx.faults.name if ctx is not None and ctx.faults else None
        ),
        "gpus": gpus,
    }


def run(seed: int | None = None) -> ExperimentResult:
    """Score the closed loop on every GPU."""
    spec = GovernorSpec(mode="online")
    rows = []
    for name in GPU_NAMES:
        dataset = context.dataset(name, seed)
        report = evaluate_online(dataset, spec=spec, seed=seed)
        rows.append(
            [
                name,
                round(report.mean_regret_pct, 1),
                round(report.offline_mean_regret_pct, 1),
                report.updates,
                report.skipped,
                report.fallbacks,
                report.switches,
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Online regret [%]",
            "Offline regret [%]",
            "Updates",
            "Skipped",
            "Fallbacks",
            "Switches",
        ],
        rows=rows,
        notes=(
            "The recursive estimator converges to the batch fit while "
            "the campaign streams, so the closed-loop governor matches "
            "the offline governor's energy regret without ever holding "
            "the completed dataset — run-time DVFS management, as the "
            "paper's conclusion envisions."
        ),
        paper_values={
            "status": (
                "extension — online counterpart of ext_governor "
                "(Nunez-Yanez et al., Wang & Chu)"
            )
        },
    )
