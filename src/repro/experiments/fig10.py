"""Fig. 10: impact of GPU clocks on the performance model."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pairfigs import per_pair_figure

EXPERIMENT_ID = "fig10"
TITLE = "Per-frequency-pair vs unified performance models (Fig. 10)"

PAPER_VALUES = {
    "observation": (
        "accuracy improves with newer generations and comes from the "
        "overall trend of each GPU, not from any specific pair; some "
        "per-pair models show wide variation that the unified model "
        "absorbs"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 10 comparison."""
    return per_pair_figure(
        EXPERIMENT_ID, TITLE, "performance", PAPER_VALUES, seed
    )
