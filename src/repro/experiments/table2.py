"""Table II: list of benchmarks."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.kernels.suites import BENCHMARK_SUITES

EXPERIMENT_ID = "table2"
TITLE = "List of benchmarks (Table II)"


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table II from the benchmark registry."""
    rows = []
    for suite, benchmarks in BENCHMARK_SUITES.items():
        names = ", ".join(b.name for b in benchmarks)
        rows.append([suite, len(benchmarks), names])
    total = sum(len(b) for b in BENCHMARK_SUITES.values())
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Suite", "Count", "Applications"],
        rows=rows,
        notes=(
            f"{total} benchmarks in total; the CUDA profiler fails on "
            "mummergpu, backprop, pathfinder and bfs, leaving 33 for the "
            "modeling dataset (Section IV-A)."
        ),
        paper_values={"source": "Table II of the paper"},
    )
