"""Extension: ambient-temperature sensitivity of the energy optimum.

The paper measures in one lab environment; a deployed system lives in a
hot aisle.  The leakage/temperature feedback (``repro.engine.thermal``)
makes ambient temperature a real variable: the same card at the same
clocks burns more static power when hot, which grows the payoff of
down-clocking.  This experiment sweeps the ambient and tracks the
energy-optimal pair and its saving for the Fig. 1 showcase workload.
"""

from __future__ import annotations

from repro.arch.specs import all_gpus
from repro.experiments.base import ExperimentResult
from repro.instruments.testbed import Testbed
from repro.kernels.suites import get_benchmark

EXPERIMENT_ID = "ext_thermal"
TITLE = "Ambient-temperature sensitivity of the energy optimum (extension)"

AMBIENTS_C = (18.0, 25.0, 35.0, 45.0)


def run(seed: int | None = None) -> ExperimentResult:
    """Sweep ambient temperature for backprop on every GPU."""
    bench = get_benchmark("backprop")
    rows = []
    for gpu in all_gpus():
        for ambient in AMBIENTS_C:
            testbed = Testbed(gpu, seed=seed, ambient_c=ambient)
            energies = {}
            temps = {}
            for op in gpu.operating_points():
                testbed.set_clocks(op.core_level, op.mem_level)
                m = testbed.measure(bench)
                energies[op.key] = m.energy_j
                temps[op.key] = testbed.sim.run(bench).die_temp_c
            best = min(energies, key=energies.get)
            saving = (energies["H-H"] / energies[best] - 1.0) * 100.0
            rows.append(
                [
                    gpu.name,
                    f"{ambient:.0f}",
                    round(temps["H-H"], 1),
                    best,
                    round(saving, 1),
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Ambient [°C]",
            "Die @ H-H [°C]",
            "Best pair",
            "Saving vs H-H [%]",
        ],
        rows=rows,
        notes=(
            "The ambient effect depends on whether the optimum lowers "
            "the core *voltage*: cards whose best pair keeps Core-H "
            "(285/460/480, saving via the memory domain) see their "
            "saving slightly diluted as leakage grows at both settings, "
            "while Kepler's Core-M optimum also cuts the leakage that "
            "heat amplifies — its saving grows with ambient.  Energy-"
            "aware voltage selection matters most in the hot aisle."
        ),
        paper_values={
            "status": (
                "extension — the paper measures at a single lab ambient"
            )
        },
    )
