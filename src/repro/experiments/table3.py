"""Table III: configurable frequency combinations."""

from __future__ import annotations

from repro.arch.dvfs import ClockLevel
from repro.arch.specs import all_gpus
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "table3"
TITLE = "Configurable frequency combinations (Table III)"

_ORDER = [
    (ClockLevel.H, ClockLevel.H),
    (ClockLevel.H, ClockLevel.M),
    (ClockLevel.H, ClockLevel.L),
    (ClockLevel.M, ClockLevel.H),
    (ClockLevel.M, ClockLevel.M),
    (ClockLevel.M, ClockLevel.L),
    (ClockLevel.L, ClockLevel.H),
    (ClockLevel.L, ClockLevel.M),
    (ClockLevel.L, ClockLevel.L),
]


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table III from each card's allowed-pair set."""
    gpus = all_gpus()
    rows = []
    for core, mem in _ORDER:
        label = f"Core-{core.value}, Mem-{mem.value}"
        marks = [
            "yes" if g.is_configurable(core, mem) else "-" for g in gpus
        ]
        rows.append([label] + marks)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Combination"] + [g.name for g in gpus],
        rows=rows,
        paper_values={"source": "Table III of the paper"},
    )
