"""Extension: cross-GPU transfer of the unified statistical models.

The paper shows analytic models do not port between GPUs; this experiment
quantifies how the *statistical* models port (DESIGN.md §7): within the
Fermi generation (identical counters) and across generations (common
counter subset only).
"""

from __future__ import annotations

from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.core.transfer import transfer_model
from repro.experiments import context
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_transfer"
TITLE = "Cross-GPU transfer of the unified models (extension)"

#: (source, target) pairs: within-generation and cross-generation.
PAIRS = (
    ("GTX 460", "GTX 480"),
    ("GTX 480", "GTX 460"),
    ("GTX 480", "GTX 680"),
    ("GTX 680", "GTX 285"),
)


def run(seed: int | None = None) -> ExperimentResult:
    """Port each model family along the transfer pairs."""
    rows = []
    for source_name, target_name in PAIRS:
        source = context.dataset(source_name, seed)
        target = context.dataset(target_name, seed)
        for kind, model_cls in (
            ("power", UnifiedPowerModel),
            ("performance", UnifiedPerformanceModel),
        ):
            result = transfer_model(model_cls, source, target)
            rows.append(
                [
                    f"{source_name} -> {target_name}",
                    kind,
                    result.n_common_counters,
                    round(result.native.mean_pct_error, 1),
                    round(result.transferred.mean_pct_error, 1),
                    round(result.degradation_factor, 1),
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "Transfer",
            "Model",
            "Common counters",
            "Native err[%]",
            "Ported err[%]",
            "Degradation x",
        ],
        rows=rows,
        notes=(
            "Within the Fermi pair the full 74-counter set is shared, yet "
            "ported models still degrade (coefficients encode board power "
            "and core counts).  Across generations only a counter subset "
            "is even expressible.  This supports the paper's position "
            "that models must be (re)fit per GPU — cheap for the "
            "statistical approach, expensive for analytic ones."
        ),
        paper_values={
            "context": (
                "the paper reports that porting Hong & Kim's analytic GTX "
                "280 model even to the GTX 285 was 'very time-consuming'"
            )
        },
    )
