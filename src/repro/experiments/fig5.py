"""Fig. 5: errors in prediction of the power model, per benchmark."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.errorfigs import error_distribution_figure

EXPERIMENT_ID = "fig5"
TITLE = "Power-model prediction errors by benchmark (Fig. 5)"

PAPER_VALUES = {
    "observation": (
        "more than half of the workloads exhibit errors below 20% on all "
        "GPUs; averages are in Table VII"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 5 distribution."""
    return error_distribution_figure(
        EXPERIMENT_ID, TITLE, "power", PAPER_VALUES, seed
    )
