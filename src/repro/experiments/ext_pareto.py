"""Extension: the energy/performance Pareto frontier of the pair space.

The paper optimizes pure energy; its discussion constantly weighs energy
against performance loss (e.g. 30% slowdown for the 680's backprop
optimum).  The Pareto frontier makes the actual trade-off menu explicit:
which pairs are worth considering at all, and where the energy-delay
knee sits.
"""

from __future__ import annotations

from repro.arch.specs import all_gpus
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.optimize.pareto import frontier_pairs, knee_point

EXPERIMENT_ID = "ext_pareto"
TITLE = "Energy/performance Pareto frontiers of the pair space (extension)"

WORKLOADS = ("backprop", "streamcluster", "gaussian", "sgemm", "lbm")


def run(seed: int | None = None) -> ExperimentResult:
    """Compute frontiers for the showcase workloads on every GPU."""
    rows = []
    for gpu in all_gpus():
        table = context.sweep_table(gpu.name, seed)
        for name in WORKLOADS:
            measurements = table.measurements[name]
            frontier = frontier_pairs(measurements)
            knee = knee_point(measurements)
            rows.append(
                [
                    gpu.name,
                    name,
                    f"{len(frontier)}/{len(measurements)}",
                    " ".join(frontier),
                    knee.pair,
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Workload",
            "Frontier size",
            "Pareto-optimal pairs (fastest first)",
            "EDP knee",
        ],
        rows=rows,
        notes=(
            "Most of the 7-8 configurable pairs are dominated: a runtime "
            "manager only ever needs the frontier.  On the GTX 680 the "
            "EDP knee frequently sits at a Core-M pair — the geometric "
            "form of the paper's finding that Kepler's default clocks "
            "trade energy poorly for speed."
        ),
        paper_values={
            "status": (
                "extension — makes the energy-vs-performance trade-off "
                "the paper narrates explicit"
            )
        },
    )
