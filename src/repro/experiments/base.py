"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.format import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one table/figure reproduction.

    ``paper_values`` holds the corresponding numbers from the paper for
    side-by-side comparison in EXPERIMENTS.md; keys are free-form labels.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[object]]
    notes: str = ""
    paper_values: dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the result as a text report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        if self.paper_values:
            parts.append("")
            parts.append("Paper reference values:")
            for key, value in self.paper_values.items():
                parts.append(f"  {key}: {value}")
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)
