"""Table VI: adjusted R² of the performance model."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.modeltables import r2_table

EXPERIMENT_ID = "table6"
TITLE = "R̄² of the performance model (Table VI)"

PAPER_R2 = {"GTX 285": 0.91, "GTX 460": 0.90, "GTX 480": 0.94, "GTX 680": 0.91}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table VI."""
    return r2_table(EXPERIMENT_ID, TITLE, "performance", PAPER_R2, seed)
