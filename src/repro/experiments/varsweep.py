"""Shared machinery for the variable-count sweeps (Figs. 7, 8).

The paper evaluates its models with 5 to 20 explanatory variables and
shows that accuracy saturates around 10.  Forward selection is greedy and
incremental, so a single run capped at 20 yields every prefix model: the
first *k* selected variables are exactly what a cap-*k* run would select.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import GPU_NAMES
from repro.core.models import (
    UnifiedPerformanceModel,
    UnifiedPowerModel,
    _UnifiedModel,
)
from repro.core.regression import fit_ols
from repro.experiments import context
from repro.experiments.base import ExperimentResult

#: Variable counts the paper sweeps.
VARIABLE_COUNTS = (5, 10, 15, 20)


def prefix_metrics(
    model: _UnifiedModel, dataset, counts=VARIABLE_COUNTS
) -> dict[int, tuple[float, float]]:
    """(adjusted R², mean % error) for each selected-variable prefix."""
    X, _ = model._features(dataset)
    y = model._target(dataset)
    selected = list(model.selection.selected)
    out: dict[int, tuple[float, float]] = {}
    for k in counts:
        cols = selected[: min(k, len(selected))]
        fit = fit_ols(X[:, cols], y)
        predicted = fit.predict(X[:, cols])
        pct = float(np.mean(100.0 * np.abs(predicted - y) / np.abs(y)))
        out[k] = (fit.adjusted_r2, pct)
    return out


def variable_sweep_figure(
    experiment_id: str,
    title: str,
    kind: str,
    paper_values: dict[str, object],
    seed: int | None = None,
) -> ExperimentResult:
    """Build the Fig. 7/8-style sweep table."""
    model_cls = UnifiedPowerModel if kind == "power" else UnifiedPerformanceModel
    rows = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        model = model_cls(max_features=max(VARIABLE_COUNTS)).fit(ds)
        metrics = prefix_metrics(model, ds)
        for k in VARIABLE_COUNTS:
            r2, pct = metrics[k]
            rows.append([name, k, round(r2, 3), round(pct, 1)])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["GPU", "# variables", "R̄²", "Error[%]"],
        rows=rows,
        notes=(
            "Forward selection may stop before the cap when no variable "
            "improves R̄²; prefixes beyond that point repeat the final "
            "model, matching the paper's saturation beyond ~10 variables."
        ),
        paper_values=paper_values,
    )
