"""Fig. 2: performance and power efficiency of Streamcluster."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.clockfigs import run_clock_figure

EXPERIMENT_ID = "fig2"
TITLE = "Performance and power efficiency of Streamcluster (Fig. 2)"

PAPER_VALUES = {
    "GTX 680 best pair": "(M-H): efficiency +4.7%, performance -8.7%",
    "other GPUs": "best at the (H-H) default",
    "observation": (
        "Mem-H performance improves with core frequency; Mem-M/Mem-L are "
        "flat (memory-bound)"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Streamcluster clock figure."""
    return run_clock_figure(EXPERIMENT_ID, "streamcluster", PAPER_VALUES, seed)
