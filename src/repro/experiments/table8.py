"""Table VIII: average prediction error of the performance model."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.experiments.base import ExperimentResult
from repro.experiments.modeltables import model_reports

EXPERIMENT_ID = "table8"
TITLE = "Average prediction error of the performance model (Table VIII)"

PAPER_PCT = {"GTX 285": 67.9, "GTX 460": 47.6, "GTX 480": 39.3, "GTX 680": 33.5}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table VIII."""
    reports = model_reports("performance", seed)
    rows = [
        ["Error[%] (ours)"]
        + [round(reports[n][1].mean_pct_error, 1) for n in GPU_NAMES],
        ["Error[%] (paper)"] + [PAPER_PCT[n] for n in GPU_NAMES],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Metric"] + list(GPU_NAMES),
        rows=rows,
        notes=(
            "Errors shrink with newer generations — the paper attributes "
            "this to richer counter sets and less erratic "
            "microarchitecture."
        ),
        paper_values={"Error[%]": str(PAPER_PCT)},
    )
