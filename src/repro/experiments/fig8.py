"""Fig. 8: impact of the number of explanatory variables (performance)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.varsweep import variable_sweep_figure

EXPERIMENT_ID = "fig8"
TITLE = "Impact of explanatory variables on the performance model (Fig. 8)"

PAPER_VALUES = {
    "observation": (
        "10 variables give reasonable accuracy; increasing to 15-20 does "
        "not materially improve R̄²"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 8 sweep."""
    return variable_sweep_figure(
        EXPERIMENT_ID, TITLE, "performance", PAPER_VALUES, seed
    )
