"""Extension: model-driven job placement across a power-capped fleet.

The paper trains power/performance models for four individual cards;
its motivation is datacenter-scale energy.  This experiment closes that
loop at scale: a synthesized 1000-device heterogeneous fleet (the four
architectures with per-device parameter spread), a 10^5-job stream, and
a facility power cap.  Jobs are placed three ways — naive round-robin
at default clocks, model-driven (each device's derived Eq. 1 / Eq. 2
handle picks pairs, ranks devices and sizes the active set), and an
oracle with true tables — and every placement is scored against ground
truth.  The headline is the fleet energy the models save over the
naive baseline, and the regret their prediction bias still pays
relative to perfect information.
"""

from __future__ import annotations

import tempfile

from repro.experiments.base import ExperimentResult
from repro.fleet import run_fleet_campaign
from repro.session import FleetSpec, RunContext

EXPERIMENT_ID = "ext_fleet"
TITLE = "Model-driven placement on a power-capped 1000-GPU fleet (extension)"


def run(seed: int | None = None) -> ExperimentResult:
    """Run the default fleet campaign and tabulate the three policies."""
    spec = FleetSpec()
    ctx = RunContext.resolve(seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        document = run_fleet_campaign(spec, ctx, tmp)
    rows = []
    for policy in ("naive", "model", "oracle"):
        outcome = document["policies"][policy]
        rows.append(
            [
                policy,
                f"{outcome['active_devices']}/{document['fleet']['devices']}",
                f"{outcome['fleet_energy_j'] / 1e6:.2f}",
                f"{outcome['makespan_s']:.0f}",
                f"{outcome['reconfigurations']}",
            ]
        )
    saved = document["energy_saved_pct"]
    regret = document["regret_pct"]
    jobs = document["jobs"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "Policy",
            "Active devices",
            "Fleet energy [MJ]",
            "Makespan [s]",
            "Reconfigurations",
        ],
        rows=rows,
        notes=(
            f"{jobs['total']} jobs across {len(jobs['classes'])} workload "
            f"classes on {document['fleet']['devices']} synthesized devices "
            f"under a {document['fleet']['power_cap_w'] / 1e3:.1f} kW cap "
            f"(fingerprint {document['fleet']['inventory']}).  Model-driven "
            f"placement saves {saved:.1f}% of the naive fleet energy while "
            f"meeting the baseline's believed throughput; its remaining "
            f"{regret:.1f}% oracle-relative regret is the price of "
            f"prediction bias — the per-device noise effects the derived "
            f"model handles cannot see."
        ),
        paper_values={
            "status": (
                "extension — scales the paper's per-card models to the "
                "datacenter-energy scenario that motivates them"
            )
        },
    )
