"""Shared machinery for the unified-vs-per-pair figures (Figs. 9, 10)."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.analysis.format import format_box
from repro.baselines.per_pair import PerPairModelSuite
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments import context
from repro.experiments.base import ExperimentResult


def per_pair_figure(
    experiment_id: str,
    title: str,
    kind: str,
    paper_values: dict[str, object],
    seed: int | None = None,
) -> ExperimentResult:
    """Box-and-whisker error summaries: one model per pair vs unified."""
    model_cls = UnifiedPowerModel if kind == "power" else UnifiedPerformanceModel
    rows = []
    strips = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        suite = PerPairModelSuite(model_cls).fit(ds)
        reports = suite.evaluate(ds)
        for key, report in reports.items():
            stats = report.box_stats()
            rows.append(
                [
                    name,
                    key,
                    round(stats["q1"], 1),
                    round(stats["median"], 1),
                    round(stats["q3"], 1),
                    round(stats["max"], 1),
                    round(stats["mean"], 1),
                ]
            )
            if key == "unified":
                strips.append(f"{name} unified: {format_box(stats)}")
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["GPU", "Model", "Q1[%]", "Median[%]", "Q3[%]", "Max[%]", "Mean[%]"],
        rows=rows,
        notes="\n".join(strips),
        paper_values=paper_values,
    )
