"""Table IV: the best frequency pairs for power efficiency."""

from __future__ import annotations

from repro.arch.specs import all_gpus
from repro.characterize.efficiency import characterize_gpu
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.experiments.paper_table4 import PAPER_TABLE4, agreement_stats
from repro.kernels.suites import all_benchmarks

EXPERIMENT_ID = "table4"
TITLE = "Best frequency pairs for power efficiency (Table IV)"

#: Paper's Table IV count of non-default best pairs per GPU.
PAPER_NON_DEFAULT = {
    "GTX 285": 9,
    "GTX 460": 17,
    "GTX 480": 20,
    "GTX 680": 33,
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table IV from the full sweeps."""
    per_gpu = {}
    for gpu in all_gpus():
        table = context.sweep_table(gpu.name, seed)
        chars = characterize_gpu(gpu, table=table)
        per_gpu[gpu.name] = {c.benchmark: c for c in chars}

    rows = []
    for bench in all_benchmarks():
        row = [f"{bench.suite}/{bench.name}"]
        for gpu in all_gpus():
            c = per_gpu[gpu.name][bench.name]
            mark = "" if c.is_default_best else " *"
            row.append(f"({c.best_pair}){mark}")
        rows.append(row)

    non_default = {
        name: sum(1 for c in chars.values() if not c.is_default_best)
        for name, chars in per_gpu.items()
    }
    ours = {
        name: {b: c.best_pair for b, c in chars.items()}
        for name, chars in per_gpu.items()
    }
    agreement = agreement_stats(ours)
    agreement_lines = [
        f"{name}: exact {s['exact'] * 100:.0f}%, within one level "
        f"{s['within_one'] * 100:.0f}% (mean distance "
        f"{s['mean_distance']:.2f}, {s['cells']:.0f} cells)"
        for name, s in agreement.items()
    ]
    notes = (
        "Non-default best pairs per GPU (ours vs paper): "
        + ", ".join(
            f"{name}: {non_default[name]} (paper {PAPER_NON_DEFAULT[name]})"
            for name in non_default
        )
        + "\n'*' marks benchmarks whose optimum deviates from the (H-H) "
        "default; the paper's central observation is that this set grows "
        "with every GPU generation."
        + "\nCell-level agreement with the paper's Table IV "
        f"({len(PAPER_TABLE4)} transcribed rows):\n  "
        + "\n  ".join(agreement_lines)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Benchmark"] + [g.name for g in all_gpus()],
        rows=rows,
        notes=notes,
        paper_values={
            "trend": (
                "best pairs diversify with newer generations; on GTX 680 "
                "nearly every benchmark prefers a non-default pair"
            ),
            "non-default count": str(PAPER_NON_DEFAULT),
        },
    )
