"""Fig. 11: selected explanatory variables and their influence."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.core.evaluate import influence_breakdown
from repro.experiments import context
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "fig11"
TITLE = "Selected explanatory variables and their influence (Fig. 11)"

PAPER_VALUES = {
    "observation": (
        "at most 10-15 variables really influence power and performance; "
        "selecting that many at runtime is realistic for dynamic "
        "prediction"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 11 influence breakdown."""
    rows = []
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        for kind, model in (
            ("power", context.power_model(name, seed)),
            ("performance", context.performance_model(name, seed)),
        ):
            shares = influence_breakdown(model, ds)
            for rank, (var, share) in enumerate(
                sorted(shares.items(), key=lambda kv: -kv[1]), start=1
            ):
                rows.append([name, kind, rank, var, round(100 * share, 1)])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["GPU", "Model", "Rank", "Variable", "Influence [%]"],
        rows=rows,
        paper_values=PAPER_VALUES,
    )
