"""The paper's Table IV, transcribed verbatim.

Best (core-memory) frequency pair per benchmark per GPU, as printed in
the paper.  Used by the ``table4`` experiment to compute cell-level
agreement between the paper's measurements and this reproduction.

Notes on mapping to our registry:

* the paper lists one ``SRAD`` row — we compare both ``srad_v1`` and
  ``srad_v2`` against it;
* ``Particlefilter`` is Table II's ``particlefilter_float``
  (our ``particlefilter``);
* the paper's table omits the three Matrix benchmarks, so they carry no
  reference cells.
"""

from __future__ import annotations

from repro.arch.dvfs import parse_pair_key

#: benchmark (our name) -> (GTX 285, GTX 460, GTX 480, GTX 680) pairs.
PAPER_TABLE4: dict[str, tuple[str, str, str, str]] = {
    # Rodinia ----------------------------------------------------------
    "backprop": ("H-L", "H-L", "H-L", "M-L"),
    "bfs": ("M-H", "H-H", "H-H", "M-H"),
    "cfd": ("H-H", "H-H", "H-H", "M-M"),
    "gaussian": ("H-H", "H-H", "H-M", "M-H"),
    "heartwall": ("H-H", "H-M", "H-M", "L-H"),
    "hotspot": ("H-H", "H-L", "H-L", "M-L"),
    "kmeans": ("H-H", "H-H", "M-M", "M-M"),
    "lavaMD": ("H-H", "H-L", "H-M", "H-L"),
    "leukocyte": ("H-H", "H-L", "H-L", "H-M"),
    "lud": ("H-H", "H-M", "H-M", "L-H"),
    "mummergpu": ("H-H", "H-H", "H-H", "M-H"),
    "nn": ("H-H", "H-M", "H-L", "H-L"),
    "nw": ("H-H", "H-M", "H-M", "L-H"),
    "particlefilter": ("H-M", "H-L", "H-L", "H-L"),
    "pathfinder": ("H-M", "H-M", "H-M", "H-M"),
    "srad_v1": ("H-H", "H-H", "H-H", "L-H"),
    "srad_v2": ("H-H", "H-H", "H-H", "L-H"),
    "streamcluster": ("H-H", "H-H", "H-H", "M-H"),
    # Parboil ----------------------------------------------------------
    "cutcp": ("H-H", "H-M", "H-L", "H-H"),
    "histo": ("H-H", "H-H", "M-M", "H-H"),
    "lbm": ("H-H", "H-H", "M-H", "M-H"),
    "mri-gridding": ("M-M", "H-L", "M-M", "M-M"),
    "mri-q": ("H-H", "H-L", "H-L", "M-H"),
    "sad": ("H-H", "H-H", "H-H", "M-M"),
    "sgemm": ("H-H", "H-M", "M-M", "H-M"),
    "spmv": ("H-H", "H-L", "H-L", "M-H"),
    "stencil": ("H-H", "H-H", "H-H", "H-H"),
    "tpacf": ("H-L", "H-M", "H-M", "H-M"),
    # CUDA SDK ---------------------------------------------------------
    "binomialOptions": ("H-L", "H-L", "H-H", "M-M"),
    "BlackScholes": ("H-H", "H-H", "H-H", "M-H"),
    "concurrentKernels": ("L-M", "L-L", "L-L", "M-M"),
    "histogram256": ("H-H", "M-M", "H-M", "M-M"),
    "histogram64": ("H-H", "H-M", "M-M", "H-M"),
    "MersenneTwister": ("L-M", "H-H", "H-H", "M-H"),
}

#: GPU order of the tuples above.
PAPER_TABLE4_GPUS: tuple[str, ...] = (
    "GTX 285",
    "GTX 460",
    "GTX 480",
    "GTX 680",
)


def pair_distance(a: str, b: str) -> int:
    """Level distance between two pair keys.

    The sum of the core-level and memory-level rank differences;
    0 = identical, 1 = adjacent in one domain.
    """
    core_a, mem_a = parse_pair_key(a)
    core_b, mem_b = parse_pair_key(b)
    return abs(core_a.rank - core_b.rank) + abs(mem_a.rank - mem_b.rank)


def agreement_stats(
    ours: dict[str, dict[str, str]]
) -> dict[str, dict[str, float]]:
    """Cell-level agreement of our best pairs vs. the paper's Table IV.

    Parameters
    ----------
    ours:
        ``ours[gpu_name][benchmark] -> pair key`` from the sweep.

    Returns
    -------
    Per-GPU: number of compared cells, exact-match fraction, fraction
    within level distance 1, and mean distance.
    """
    stats: dict[str, dict[str, float]] = {}
    for i, gpu_name in enumerate(PAPER_TABLE4_GPUS):
        distances = []
        for bench, paper_pairs in PAPER_TABLE4.items():
            measured = ours.get(gpu_name, {}).get(bench)
            if measured is None:
                continue
            distances.append(pair_distance(measured, paper_pairs[i]))
        n = len(distances)
        stats[gpu_name] = {
            "cells": float(n),
            "exact": sum(1 for d in distances if d == 0) / n,
            "within_one": sum(1 for d in distances if d <= 1) / n,
            "mean_distance": sum(distances) / n,
        }
    return stats
