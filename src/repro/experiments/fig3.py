"""Fig. 3: performance and power efficiency of Gaussian."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.clockfigs import run_clock_figure

EXPERIMENT_ID = "fig3"
TITLE = "Performance and power efficiency of Gaussian (Fig. 3)"

PAPER_VALUES = {
    "observation": (
        "Mixed compute/memory behaviour; the best configuration differs "
        "even between the two Fermi cards (GTX 460 vs GTX 480), which "
        "motivates statistical modeling"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Gaussian clock figure."""
    return run_clock_figure(EXPERIMENT_ID, "gaussian", PAPER_VALUES, seed)
