"""Shared machinery for the per-benchmark clock figures (Figs. 1-3).

Each of these figures plots, for all four GPUs, normalized performance
and power efficiency against the processing-core frequency, one line per
memory frequency.  We emit the series as rows: one row per
(GPU, memory level, core level) with normalized performance and
efficiency relative to the card's (H-H) default.
"""

from __future__ import annotations

from repro.analysis.plot import line_chart
from repro.arch.specs import all_gpus
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.kernels.suites import get_benchmark


def run_clock_figure(
    experiment_id: str,
    benchmark_name: str,
    paper_values: dict[str, object],
    seed: int | None = None,
) -> ExperimentResult:
    """Build the Fig. 1/2/3-style table for one benchmark."""
    bench = get_benchmark(benchmark_name)
    rows = []
    best_summary: dict[str, str] = {}
    charts: list[str] = []
    for gpu in all_gpus():
        table = context.sweep_table(gpu.name, seed)
        pairs = table.measurements[bench.name]
        default = pairs["H-H"]
        best_key = min(pairs, key=lambda k: pairs[k].energy_j)
        best = pairs[best_key]
        improvement = (default.energy_j / best.energy_j - 1.0) * 100.0
        loss = (best.exec_seconds / default.exec_seconds - 1.0) * 100.0
        best_summary[gpu.name] = (
            f"best ({best_key}): efficiency +{improvement:.1f}%, "
            f"performance {-loss:+.1f}%"
        )
        efficiency_series: dict[str, list[tuple[float, float]]] = {}
        for op in gpu.operating_points():
            m = pairs[op.key]
            rows.append(
                [
                    gpu.name,
                    f"Mem-{op.mem_level.value}",
                    f"{op.core_mhz:.0f}",
                    default.exec_seconds / m.exec_seconds,
                    default.energy_j / m.energy_j,
                ]
            )
            efficiency_series.setdefault(
                f"Mem-{op.mem_level.value}", []
            ).append((op.core_mhz, default.energy_j / m.energy_j))
        charts.append(
            line_chart(
                efficiency_series,
                title=f"{gpu.name}: power efficiency vs core clock",
                x_label="core MHz",
                y_label="efficiency normalized to H-H",
            )
        )
    notes = "\n".join(f"{k}: {v}" for k, v in best_summary.items())
    notes += "\n\n" + "\n\n".join(charts)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=(
            f"Performance and power efficiency of {bench.name} "
            "(normalized to the H-H default)"
        ),
        headers=[
            "GPU",
            "Mem level",
            "Core MHz",
            "Perf (norm)",
            "Efficiency (norm)",
        ],
        rows=rows,
        notes=notes,
        paper_values=paper_values,
    )
