"""Shared machinery for the model-quality tables (Tables V-VIII)."""

from __future__ import annotations


from repro.arch.specs import GPU_NAMES
from repro.core.evaluate import ErrorReport, evaluate_model
from repro.experiments import context
from repro.experiments.base import ExperimentResult


def model_reports(
    kind: str, seed: int | None = None
) -> dict[str, tuple[float, ErrorReport]]:
    """Fitted-model adjusted R² and error report per GPU.

    ``kind`` is ``"power"`` or ``"performance"``.
    """
    if kind not in ("power", "performance"):
        raise ValueError(f"kind must be 'power' or 'performance', got {kind!r}")
    result = {}
    for name in GPU_NAMES:
        ds = context.dataset(name, seed)
        model = (
            context.power_model(name, seed)
            if kind == "power"
            else context.performance_model(name, seed)
        )
        result[name] = (model.adjusted_r2, evaluate_model(model, ds))
    return result


def r2_table(
    experiment_id: str,
    title: str,
    kind: str,
    paper_r2: dict[str, float],
    seed: int | None = None,
) -> ExperimentResult:
    """Build a Table V/VI-style R-bar-squared row."""
    reports = model_reports(kind, seed)
    rows = [
        ["R̄² (ours)"] + [round(reports[n][0], 2) for n in GPU_NAMES],
        ["R̄² (paper)"] + [paper_r2[n] for n in GPU_NAMES],
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["Metric"] + list(GPU_NAMES),
        rows=rows,
        paper_values={"R̄²": str(paper_r2)},
    )
