"""Extension: generalization to workloads outside the benchmark suites.

Leave-one-benchmark-out (``ext_crossval``) still tests within Table II's
population.  Here the unified models are trained on the paper's suite
and evaluated on *synthetic* workloads drawn from the whole parameter
space — the situation a deployed predictor actually faces.
"""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES, get_gpu
from repro.core.dataset import build_dataset
from repro.experiments.context import run_context
from repro.core.evaluate import evaluate_model
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.kernels.synthetic import generate_suite

EXPERIMENT_ID = "ext_synthetic"
TITLE = "Generalization to synthetic out-of-suite workloads (extension)"

#: Synthetic workloads per GPU (each contributes 3 sizes x all pairs).
N_SYNTHETIC = 12


def run(seed: int | None = None) -> ExperimentResult:
    """Train on Table II, test on generated workloads."""
    synthetic = generate_suite(N_SYNTHETIC, seed=seed)
    rows = []
    for name in GPU_NAMES:
        train = context.dataset(name, seed)
        test = build_dataset(
            get_gpu(name), benchmarks=synthetic, ctx=run_context(seed)
        )
        for kind, model_fn in (
            ("power", context.power_model),
            ("performance", context.performance_model),
        ):
            model = model_fn(name, seed)
            in_sample = evaluate_model(model, train).mean_pct_error
            out_sample = evaluate_model(model, test).mean_pct_error
            rows.append(
                [
                    name,
                    kind,
                    round(in_sample, 1),
                    round(out_sample, 1),
                    round(out_sample / in_sample, 1),
                ]
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Model",
            "Suite err[%]",
            "Synthetic err[%]",
            "Ratio",
        ],
        rows=rows,
        notes=(
            f"{N_SYNTHETIC} synthetic workloads per GPU, drawn from the "
            "parameter space the suite spans.  Errors grow but stay the "
            "same order of magnitude — counter-based features carry over "
            "to unseen workloads better than benchmark identity would."
        ),
        paper_values={
            "status": (
                "extension — probes the deployment scenario the paper's "
                "runtime-management vision implies"
            )
        },
    )
