"""Table I: specifications of the NVIDIA GPUs."""

from __future__ import annotations

from repro.arch.dvfs import ClockLevel
from repro.arch.specs import all_gpus
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "table1"
TITLE = "Specifications of the NVIDIA GPUs (Table I)"


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Table I from the architecture registry."""
    gpus = all_gpus()
    levels = (ClockLevel.L, ClockLevel.M, ClockLevel.H)
    rows = [
        ["Architecture"] + [str(g.architecture) for g in gpus],
        ["# of processing cores"] + [g.num_cores for g in gpus],
        ["Peak performance (GFLOPS)"] + [g.peak_gflops for g in gpus],
        ["Memory bandwidth (GB/sec)"] + [g.mem_bandwidth_gbs for g in gpus],
        ["TDP (Watt)"] + [g.tdp_w for g in gpus],
        ["Core frequency (MHz)"]
        + [", ".join(f"{g.core_mhz[l]:.0f}" for l in levels) for g in gpus],
        ["Memory frequency (MHz)"]
        + [", ".join(f"{g.mem_mhz[l]:.0f}" for l in levels) for g in gpus],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["GPU"] + [g.name for g in gpus],
        rows=rows,
        paper_values={
            "source": "Table I of the paper (values reproduced verbatim)"
        },
    )
