"""Extension: model-driven DVFS governor scored against the oracle.

The paper's conclusion motivates "dynamic runtime management of power and
performance"; this experiment measures how well the unified models
support that use-case: for each workload, the governor picks a frequency
pair from one (H-H) profile, and the exhaustive oracle scores the choice.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import GPU_NAMES, get_gpu
from repro.experiments import context
from repro.experiments.base import ExperimentResult
from repro.kernels.suites import get_benchmark
from repro.optimize.governor import ModelGovernor
from repro.optimize.oracle import exhaustive_oracle, score_governor

EXPERIMENT_ID = "ext_governor"
TITLE = "Model-driven DVFS governor vs exhaustive oracle (extension)"

#: Workloads spanning the compute/memory spectrum; the governor scale
#: must be one of each benchmark's modeling sizes.
WORKLOADS = ("kmeans", "hotspot", "lbm", "sgemm", "spmv", "stencil", "MAdd")
SCALE = 0.25


def run(seed: int | None = None) -> ExperimentResult:
    """Score the governor on every GPU."""
    rows = []
    for name in GPU_NAMES:
        gpu = get_gpu(name)
        ds = context.dataset(name, seed)
        governor = ModelGovernor(
            context.power_model(name, seed),
            context.performance_model(name, seed),
        )
        regrets, ranks, top3 = [], [], 0
        for bench_name in WORKLOADS:
            decision = governor.decide(ds, bench_name, SCALE)
            oracle = exhaustive_oracle(
                gpu, get_benchmark(bench_name), scale=SCALE, seed=seed
            )
            score = score_governor(decision, oracle)
            regrets.append(score.energy_regret)
            ranks.append(score.rank)
            top3 += score.rank <= 3
        rows.append(
            [
                name,
                round(float(np.mean(regrets)) * 100, 1),
                round(float(np.mean(ranks)), 1),
                f"{top3}/{len(WORKLOADS)}",
                len(gpu.operating_points()),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Mean energy regret [%]",
            "Mean rank",
            "Top-3 hits",
            "Pairs",
        ],
        rows=rows,
        notes=(
            "From a single (H-H) profile per workload, the governor's "
            "choice ranks in the top of the true energy ordering without "
            "any per-pair measurement — the practical payoff of a model "
            "that contains frequency as a parameter."
        ),
        paper_values={
            "status": (
                "extension — operationalizes the paper's concluding "
                "motivation"
            )
        },
    )
