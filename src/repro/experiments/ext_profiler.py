"""Extension: how much does profiler fidelity limit the models?

Section IV-B attributes the shrinking performance-model errors to "an
increased number of available performance counters in recent
architectures".  Counter *count* is one axis; counter *quality* is the
other.  This experiment holds the GPU fixed (GTX 480) and sweeps the
profiler's observation-noise scale from "ideal tool" to "Tesla-era
sampling", measuring what each model family loses.
"""

from __future__ import annotations

from repro.arch.specs import get_gpu
from repro.core.dataset import build_dataset
from repro.session.context import RunContext
from repro.core.evaluate import evaluate_model
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments.base import ExperimentResult
from repro.instruments.profiler import CudaProfiler

EXPERIMENT_ID = "ext_profiler"
TITLE = "Model quality vs profiler fidelity (extension)"

#: (observation-noise scale, per-benchmark bias cv) sweep points, from an
#: ideal tool to worse-than-Tesla sampling.
FIDELITIES = (
    ("ideal", 0.0, 0.0),
    ("kepler-era", 1.0, 0.05),
    ("fermi-era", 2.5, 0.12),
    ("tesla-era", 6.0, 0.25),
    ("degraded", 12.0, 0.50),
)


def run(seed: int | None = None) -> ExperimentResult:
    """Sweep profiler quality on a fixed card."""
    gpu = get_gpu("GTX 480")
    rows = []
    for label, noise_scale, bias_cv in FIDELITIES:
        profiler = CudaProfiler(
            seed=seed, noise_scale=noise_scale, bias_cv=bias_cv
        )
        ds = build_dataset(
            gpu, ctx=RunContext.resolve(seed=seed, profiler=profiler)
        )
        power = UnifiedPowerModel().fit(ds)
        perf = UnifiedPerformanceModel().fit(ds)
        rows.append(
            [
                label,
                noise_scale,
                bias_cv,
                round(power.adjusted_r2, 2),
                round(evaluate_model(power, ds).mean_pct_error, 1),
                round(perf.adjusted_r2, 2),
                round(evaluate_model(perf, ds).mean_pct_error, 1),
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "Profiler",
            "Noise scale",
            "Bias cv",
            "Power R̄²",
            "Power err[%]",
            "Perf R̄²",
            "Perf err[%]",
        ],
        rows=rows,
        notes=(
            "Same GPU, same physics, same 74 counters — only the tool "
            "changes.  The models turn out remarkably robust to counter "
            "noise: even Tesla-grade sampling costs only a few points.  "
            "This *refines* the paper's conjecture — the generation gap "
            "in Table VIII is driven mostly by the hardware's own "
            "unpredictability (serialization hazards, overhead "
            "variability), not by profiler quality; a regression over "
            "many counters averages observation noise away."
        ),
        paper_values={
            "context": (
                "Section IV-B attributes shrinking errors to richer "
                "counter sets on newer GPUs"
            )
        },
    )
