"""Extension: seed sensitivity of the headline model statistics.

Every number in this reproduction comes from one deterministic noise
seed — as every number in the paper comes from one physical campaign.
This experiment re-rolls the noise (new measurement campaign, same
physics) a few times and reports the spread of the Table V/VI/VIII
statistics, separating what is *mechanism* from what is *draw*.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import GPU_NAMES, get_gpu
from repro.core.dataset import build_dataset
from repro.experiments.context import run_context
from repro.core.evaluate import evaluate_model
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments.base import ExperimentResult

EXPERIMENT_ID = "ext_seeds"
TITLE = "Seed sensitivity of the model-quality statistics (extension)"

SEEDS = (None, 7, 1234)  # None = the default campaign seed


def run(seed: int | None = None) -> ExperimentResult:
    """Re-run the modeling pipeline under several noise seeds."""
    rows = []
    for name in GPU_NAMES:
        power_r2, perf_r2, perf_err = [], [], []
        for s in SEEDS:
            ds = build_dataset(get_gpu(name), ctx=run_context(s))
            pm = UnifiedPowerModel().fit(ds)
            fm = UnifiedPerformanceModel().fit(ds)
            power_r2.append(pm.adjusted_r2)
            perf_r2.append(fm.adjusted_r2)
            perf_err.append(evaluate_model(fm, ds).mean_pct_error)
        rows.append(
            [
                name,
                f"{np.mean(power_r2):.2f} ± {np.std(power_r2):.2f}",
                f"{np.mean(perf_r2):.2f} ± {np.std(perf_r2):.2f}",
                f"{np.mean(perf_err):.1f} ± {np.std(perf_err):.1f}",
            ]
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "GPU",
            "Power R̄² (mean ± sd)",
            "Perf R̄² (mean ± sd)",
            "Perf err% (mean ± sd)",
        ],
        rows=rows,
        notes=(
            f"{len(SEEDS)} independent noise campaigns.  The performance "
            "R̄² is stable (mechanism); the power R̄² moves by ~0.1 "
            "between campaigns (draw) — so single-campaign differences "
            "of that size, like the paper's 0.18-vs-0.30 spread between "
            "its weakest cards, should not be over-interpreted."
        ),
        paper_values={
            "status": "extension — the paper reports a single campaign"
        },
    )
