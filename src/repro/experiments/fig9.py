"""Fig. 9: impact of GPU clocks on the power model (per-pair vs unified)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.pairfigs import per_pair_figure

EXPERIMENT_ID = "fig9"
TITLE = "Per-frequency-pair vs unified power models (Fig. 9)"

PAPER_VALUES = {
    "observation": (
        "per-pair models are slightly more accurate, but the unified "
        "model matches them closely while needing a single instance — "
        "its key practical advantage"
    ),
}


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate the Fig. 9 comparison."""
    return per_pair_figure(EXPERIMENT_ID, TITLE, "power", PAPER_VALUES, seed)
