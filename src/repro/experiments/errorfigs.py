"""Shared machinery for the error-distribution figures (Figs. 5, 6)."""

from __future__ import annotations

from repro.arch.specs import GPU_NAMES
from repro.experiments.base import ExperimentResult
from repro.experiments.modeltables import model_reports


def error_distribution_figure(
    experiment_id: str,
    title: str,
    kind: str,
    paper_values: dict[str, object],
    seed: int | None = None,
) -> ExperimentResult:
    """Per-benchmark mean error, sorted descending per GPU.

    Mirrors the paper's presentation: the x-axis (rank) sorts benchmarks
    independently for each GPU.
    """
    reports = model_reports(kind, seed)
    sorted_errors = {
        name: sorted(
            reports[name][1].per_benchmark_pct_error().items(),
            key=lambda kv: -kv[1],
        )
        for name in GPU_NAMES
    }
    n = max(len(v) for v in sorted_errors.values())
    rows = []
    for i in range(n):
        row: list[object] = [i + 1]
        for name in GPU_NAMES:
            entries = sorted_errors[name]
            if i < len(entries):
                bench, err = entries[i]
                row.extend([bench, round(err, 1)])
            else:
                row.extend(["-", "-"])
        rows.append(row)
    headers = ["Rank"]
    for name in GPU_NAMES:
        headers.extend([f"{name}", "err[%]"])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        paper_values=paper_values,
    )
