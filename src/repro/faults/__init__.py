"""Deterministic fault injection for measurement campaigns.

The paper's campaign is defined as much by its failures as its numbers:
the CUDA profiler fails on 4 of 41 benchmarks and those runs are
*excluded* from the 114-sample modeling dataset, and the 50 ms meter
needs a >= 500 ms busy window to collect >= 10 valid samples.  This
package turns those obstacles — plus the flaky clock reconfiguration
and noisy/dropped meter samples that DVFS measurement studies routinely
report — into a seeded, reproducible fault model:

* a :class:`FaultPlan` declares *what* can go wrong and how often,
* a :class:`FaultInjector` decides *deterministically* (via
  ``repro.rng`` streams keyed by experimental coordinates and attempt
  number) whether a given operation fails, so injected faults replay
  identically across ``--jobs 1`` and ``--jobs N`` and compose with the
  content-addressed result cache, and
* :class:`CampaignHealth` aggregates what a degraded campaign actually
  did (attempted / retried / failed / degraded / excluded) into a
  machine-readable report.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    PLAN_FORMAT,
    FaultPlan,
    aggressive_plan,
    default_plan,
    resolve_plan,
)
from repro.faults.health import CampaignHealth, GPUHealth
from repro.faults.runtime import current_attempt, executing_attempt

__all__ = [
    "CampaignHealth",
    "FaultInjector",
    "FaultPlan",
    "GPUHealth",
    "PLAN_FORMAT",
    "aggressive_plan",
    "current_attempt",
    "default_plan",
    "executing_attempt",
    "resolve_plan",
]
