"""Machine-readable campaign health: what a degraded run actually did.

A campaign under fault injection is allowed to lose work — excluded
samples, degraded measurements, failed units — as long as it *accounts*
for every loss.  :class:`CampaignHealth` is that account: per-GPU
counters (attempted / measured / cache hits / retried / failed /
degraded) plus the full exclusion list with reasons, serialized as a
deterministic JSON document (``health.json`` next to the campaign
manifest).

Determinism note: with a cold cache, two runs of the same seed, fault
plan and unit list produce byte-identical health reports at any
``--jobs`` value, because retry counts and failures are deterministic
functions of coordinates and attempt numbers.  Against a warm cache the
*health* legitimately differs (cached units are not re-attempted) while
datasets and manifests stay identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro._version import __version__

HEALTH_FORMAT = "repro.campaign-health"

#: Structural version of the health document.  Bumped when keys are
#: added or change meaning, so downstream tooling can gate on shape
#: independently of the package release in ``version``.
HEALTH_SCHEMA = 1


@dataclass
class GPUHealth:
    """Execution account of one GPU's dataset build."""

    gpu: str
    #: Work units submitted (measured + cache hits + failed).
    attempted: int = 0
    #: Units actually executed by an executor.
    measured: int = 0
    #: Units served from the result cache.
    cache_hits: int = 0
    #: Failed attempts that a retry later recovered.
    retried: int = 0
    #: Units that produced no payload (permanent fault or exhausted retry).
    failed: int = 0
    #: Units never attempted because their fault class's circuit breaker
    #: was open (each is also excluded with a quarantine reason).
    quarantined: int = 0
    #: Worker-pool rebuilds forced by crashed or stalled workers while
    #: building this GPU's dataset (scheduling-dependent, recovery
    #: observability — always 0 in serial runs).
    pool_rebuilds: int = 0
    #: Observations flagged degraded (meter quorum not met).
    degraded: int = 0
    #: Per-sample exclusions: ``{"benchmark", "suite", "scale", "reason"}``.
    excluded: list[dict[str, Any]] = field(default_factory=list)
    #: Circuit-breaker transitions, in canonical unit order:
    #: ``{"class", "event", "failures"}``.
    breakers: list[dict[str, Any]] = field(default_factory=list)

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form."""
        return {
            "gpu": self.gpu,
            "attempted": self.attempted,
            "measured": self.measured,
            "cache_hits": self.cache_hits,
            "retried": self.retried,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "excluded": list(self.excluded),
            "breakers": list(self.breakers),
        }


@dataclass
class CampaignHealth:
    """Aggregated execution account of a whole campaign."""

    seed: int | None = None
    #: Canonical document of the active fault plan (``None`` = no faults).
    fault_plan: dict[str, Any] | None = None
    gpus: list[GPUHealth] = field(default_factory=list)
    #: Where the run's event stream lives (the live ``events.ndjson``
    #: when streaming, else the trace ``events.jsonl``), relative to the
    #: campaign directory when inside it.  ``None`` = no event log.
    events_path: str | None = None
    #: Where the flight recorder dumps its crash ring, same convention.
    flight_recorder_path: str | None = None

    def gpu(self, name: str) -> GPUHealth:
        """The (created-on-demand) account for one GPU."""
        for entry in self.gpus:
            if entry.gpu == name:
                return entry
        entry = GPUHealth(gpu=name)
        self.gpus.append(entry)
        return entry

    @property
    def total_excluded(self) -> int:
        """Excluded samples across all GPUs."""
        return sum(len(g.excluded) for g in self.gpus)

    @property
    def total_failed(self) -> int:
        """Failed units across all GPUs."""
        return sum(g.failed for g in self.gpus)

    @property
    def total_degraded(self) -> int:
        """Degraded observations across all GPUs."""
        return sum(g.degraded for g in self.gpus)

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form of the whole report."""
        return {
            "format": HEALTH_FORMAT,
            "schema": HEALTH_SCHEMA,
            "version": __version__,
            "seed": self.seed,
            "fault_plan": self.fault_plan,
            "events_path": self.events_path,
            "flight_recorder_path": self.flight_recorder_path,
            "gpus": [g.document() for g in self.gpus],
            "totals": {
                "attempted": sum(g.attempted for g in self.gpus),
                "measured": sum(g.measured for g in self.gpus),
                "cache_hits": sum(g.cache_hits for g in self.gpus),
                "retried": sum(g.retried for g in self.gpus),
                "failed": self.total_failed,
                "quarantined": sum(g.quarantined for g in self.gpus),
                "pool_rebuilds": sum(g.pool_rebuilds for g in self.gpus),
                "degraded": self.total_degraded,
                "excluded": self.total_excluded,
            },
        }

    def to_json(self) -> str:
        """Serialize deterministically (stable key order, no timestamps)."""
        return json.dumps(self.document(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """One line per GPU plus a totals line, for CLI output."""
        lines = []
        for g in self.gpus:
            quarantined = (
                f"{g.quarantined} quarantined, " if g.quarantined else ""
            )
            lines.append(
                f"{g.gpu:16s} {g.attempted:4d} attempted, "
                f"{g.measured} measured, {g.cache_hits} cache hits, "
                f"{g.retried} retried, {g.failed} failed, "
                f"{quarantined}"
                f"{g.degraded} degraded, {len(g.excluded)} excluded"
            )
        doc = self.document()["totals"]
        quarantined = (
            f"{doc['quarantined']} quarantined, " if doc["quarantined"] else ""
        )
        lines.append(
            f"{'total':16s} {doc['attempted']:4d} attempted, "
            f"{doc['measured']} measured, {doc['cache_hits']} cache hits, "
            f"{doc['retried']} retried, {doc['failed']} failed, "
            f"{quarantined}"
            f"{doc['degraded']} degraded, {doc['excluded']} excluded"
        )
        return "\n".join(lines)
