"""Fault-plan configuration: what can go wrong, and how often.

A :class:`FaultPlan` is a frozen, JSON-round-trippable value object.
Because its canonical :meth:`~FaultPlan.document` participates in work
units' cache keys, two campaigns under different plans never share
cached results, while the *null* plan (all rates zero) is normalized
away so fault-free runs keep their pre-existing cache keys.

Concrete fault models (rates are probabilities unless noted):

======================  ================================================
``profiler_failure_rate``  per (GPU, benchmark): the profiler cannot
                           analyze the workload — permanent, the sample
                           is excluded (generalizes the paper's
                           mummergpu/backprop/pathfinder/bfs failures)
``meter_dropout_rate``     per sample: the meter drops the reading
                           (invalid sample)
``meter_glitch_rate``      per sample: a transient spike multiplies the
                           reading by ``meter_glitch_scale`` (invalid
                           sample)
``meter_saturation_w``     range ceiling: valid readings clip here
``reconfig_failure_rate``  per ``set_clocks`` call and attempt: the
                           VBIOS flash did not take — transient
``crash_rate``             per unit execution attempt: the run crashes
                           for no attributable reason — transient
======================  ================================================

``quorum`` / ``quorum_retries`` govern graceful degradation of the
meter protocol: a trace needs at least ``quorum`` valid samples
(paper: 10), the testbed re-measures up to ``quorum_retries`` times,
and a still-short measurement is either rejected
(:class:`~repro.errors.MeasurementError`) or flagged degraded.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

PLAN_FORMAT = "repro.fault-plan"

#: Paper-faithful quorum: 500 ms window / 50 ms interval = 10 samples.
DEFAULT_QUORUM = 10


class FaultPlanError(ReproError, ValueError):
    """A fault-plan document or file is malformed."""


_RATE_FIELDS = (
    "profiler_failure_rate",
    "meter_dropout_rate",
    "meter_glitch_rate",
    "reconfig_failure_rate",
    "crash_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of a campaign's fault model."""

    #: Human-readable label, recorded in manifests and health reports.
    name: str = "default"
    #: Extra seed mixed into every fault stream: re-rolls *which*
    #: operations fail without touching the measurement noise.
    seed: int = 0
    profiler_failure_rate: float = 0.0
    meter_dropout_rate: float = 0.0
    meter_glitch_rate: float = 0.0
    #: Multiplier applied to glitched samples.
    meter_glitch_scale: float = 4.0
    #: Meter range ceiling in watts; ``None`` disables saturation.
    meter_saturation_w: float | None = None
    reconfig_failure_rate: float = 0.0
    #: Extra flash attempts the testbed makes before a reconfiguration
    #: failure escapes (each an independent deterministic draw).  A
    #: unit reconfigures once per frequency pair, so without re-flash
    #: the per-pair failures compound and starve coarse work units.
    reconfig_retries: int = 2
    crash_rate: float = 0.0
    #: Minimum valid samples per measurement window.
    quorum: int = DEFAULT_QUORUM
    #: Extra measurement attempts granted to meet the quorum.
    quorum_retries: int = 2

    def __post_init__(self) -> None:
        for field in _RATE_FIELDS:
            value = getattr(self, field)
            if not 0.0 <= value < 1.0:
                raise FaultPlanError(f"{field}={value} outside [0, 1)")
        if self.meter_glitch_scale <= 0:
            raise FaultPlanError(
                f"meter_glitch_scale must be positive, got {self.meter_glitch_scale}"
            )
        if self.meter_saturation_w is not None and self.meter_saturation_w <= 0:
            raise FaultPlanError(
                f"meter_saturation_w must be positive, got {self.meter_saturation_w}"
            )
        if self.quorum < 1:
            raise FaultPlanError(f"quorum must be >= 1, got {self.quorum}")
        if self.quorum_retries < 0:
            raise FaultPlanError(
                f"quorum_retries must be >= 0, got {self.quorum_retries}"
            )
        if self.reconfig_retries < 0:
            raise FaultPlanError(
                f"reconfig_retries must be >= 0, got {self.reconfig_retries}"
            )

    @property
    def is_null(self) -> bool:
        """Whether the plan injects nothing beyond the paper's reality.

        A null plan leaves every instrument untouched: all rates are
        zero, no saturation, and the quorum is the protocol-guaranteed
        10 samples.  Null plans are normalized to ``None`` before they
        reach work units, so they cannot split the result cache.
        """
        return (
            all(getattr(self, f) == 0.0 for f in _RATE_FIELDS)
            and self.meter_saturation_w is None
            and self.quorum <= DEFAULT_QUORUM
        )

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (cache keys, manifests, reports)."""
        doc: dict[str, Any] = {"format": PLAN_FORMAT}
        doc.update(dataclasses.asdict(self))
        return doc

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.document(), sort_keys=True, indent=2)

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "FaultPlan":
        """Build a plan from a (parsed) JSON document, validating it."""
        if not isinstance(doc, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(doc)}")
        body = {k: v for k, v in doc.items() if k != "format"}
        if "format" in doc and doc["format"] != PLAN_FORMAT:
            raise FaultPlanError(f"not a fault plan: format={doc['format']!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields: {', '.join(unknown)}")
        return cls(**body)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_document(doc)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_json(pathlib.Path(path).read_text(encoding="utf-8"))


def default_plan() -> FaultPlan:
    """The paper's reality and nothing more.

    No injected faults: the only exclusions are the four benchmarks the
    real CUDA profiler failed on (``profiler_ok=False`` in Table II)
    and the only protocol constraint is the 10-sample meter quorum.
    """
    return FaultPlan(name="default")


def aggressive_plan() -> FaultPlan:
    """A chaos-testing plan that exercises every fault path.

    Rates are high enough that a small campaign sees profiler
    exclusions, meter dropouts/glitches, reconfiguration retries and
    unit crashes, yet low enough that bounded retry converges.
    """
    return FaultPlan(
        name="aggressive",
        profiler_failure_rate=0.15,
        meter_dropout_rate=0.20,
        meter_glitch_rate=0.05,
        meter_glitch_scale=6.0,
        meter_saturation_w=450.0,
        reconfig_failure_rate=0.20,
        crash_rate=0.15,
    )


_PRESETS = {
    "default": default_plan,
    "aggressive": aggressive_plan,
}


def resolve_plan(spec: str | FaultPlan | None) -> FaultPlan | None:
    """Resolve a CLI/user fault specification into a plan.

    ``None`` or ``"off"`` disable injection entirely; a preset name
    (``"default"``, ``"aggressive"``) selects a built-in plan; anything
    else is treated as a path to a JSON plan file.  Null plans resolve
    to ``None`` so they cannot perturb cache keys.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return None if spec.is_null else spec
    text = spec.strip()
    if text.lower() in ("off", "none", ""):
        return None
    preset = _PRESETS.get(text.lower())
    if preset is not None:
        plan = preset()
    else:
        path = pathlib.Path(text)
        if not path.exists():
            raise FaultPlanError(
                f"fault plan {spec!r} is neither a preset "
                f"({', '.join(sorted(_PRESETS))}, off) nor an existing file"
            )
        plan = FaultPlan.from_file(path)
    return None if plan.is_null else plan
