"""Deterministic fault decisions, keyed by experimental coordinates.

Every decision is a pure function of (campaign noise seed, plan seed,
coordinates, attempt number) drawn through ``repro.rng.stream`` — the
same mechanism that keys the simulation's measurement noise.  Three
properties follow, mirroring the guarantees of the execution engine:

* the same (plan, seed) replays the same faults run after run,
* serial and parallel executions see identical faults, because nothing
  depends on scheduling or completion order, and
* transient faults can clear on retry, because the attempt number is a
  coordinate: attempt 1 of a unit always fails the same way, attempt 2
  is an independent (but equally deterministic) draw.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfilerError, ReconfigurationError, UnitCrashError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import current_attempt
from repro.rng import stable_hash, stream
from repro.telemetry.runtime import current_telemetry


class FaultInjector:
    """Applies a :class:`FaultPlan` to instrument operations.

    Parameters
    ----------
    plan:
        The fault model to realize.
    seed:
        The campaign's noise-seed override (``None`` for the global
        seed), mixed into every fault stream so fault scenarios compose
        with the rest of the reproduction's determinism.
    """

    def __init__(self, plan: FaultPlan, seed: int | None = None) -> None:
        self.plan = plan
        self.seed = seed

    def fingerprint(self) -> int:
        """Stable identity of (plan, seed) — memo keys, diagnostics."""
        return stable_hash(
            "fault-injector", sorted(self.plan.document().items()), self.seed
        )

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def _fires(self, rate: float, *coords) -> bool:
        if rate <= 0.0:
            return False
        rng = stream("fault", self.plan.seed, *coords, seed=self.seed)
        return bool(rng.random() < rate)

    def profiler_fails(self, gpu: str, benchmark: str) -> bool:
        """Whether the profiler (permanently) fails on this workload.

        Keyed by (GPU, benchmark) only — like the paper's four
        failures, the verdict is a property of the workload/tool pair,
        not of any particular run, so no attempt coordinate: retrying
        cannot help, and the sample is excluded.
        """
        return self._fires(
            self.plan.profiler_failure_rate, "profiler", gpu, benchmark
        )

    def check_profiler(self, gpu: str, benchmark: str) -> None:
        """Raise :class:`ProfilerError` if analysis fails on this workload."""
        if self.profiler_fails(gpu, benchmark):
            current_telemetry().metrics.inc("faults.profiler")
            raise ProfilerError(
                f"injected CUDA profiler analysis failure for {benchmark!r} "
                f"on {gpu} (fault plan {self.plan.name!r})"
            )

    def check_reconfiguration(self, gpu: str, pair: str) -> None:
        """Raise :class:`ReconfigurationError` if this VBIOS flash fails.

        The testbed re-flashes up to ``plan.reconfig_retries`` times
        before the failure escapes; each flash is an independent
        deterministic draw keyed by (execution attempt, flash attempt),
        so the engine's retry of the whole unit re-draws again — flaky
        DVFS reconfiguration clears the way it does on real testbeds.
        """
        attempt = current_attempt()
        flashes = self.plan.reconfig_retries + 1
        for flash in range(flashes):
            if not self._fires(
                self.plan.reconfig_failure_rate,
                "reconfig", gpu, pair, attempt, flash,
            ):
                if flash > 0:
                    current_telemetry().metrics.inc("faults.reconfig", flash)
                return
        current_telemetry().metrics.inc("faults.reconfig", flashes)
        raise ReconfigurationError(
            f"injected VBIOS reconfiguration failure flashing {pair} "
            f"on {gpu} (attempt {attempt}, {flashes} flashes)"
        )

    def check_crash(self, kind: str, gpu: str, benchmark: str, detail) -> None:
        """Raise :class:`UnitCrashError` if this unit attempt crashes."""
        attempt = current_attempt()
        if self._fires(
            self.plan.crash_rate, "crash", kind, gpu, benchmark, detail, attempt
        ):
            current_telemetry().metrics.inc("faults.crash")
            raise UnitCrashError(
                f"injected transient crash of {kind}({gpu}, {benchmark}, "
                f"{detail}) on attempt {attempt}"
            )

    # ------------------------------------------------------------------
    # meter-sample corruption
    # ------------------------------------------------------------------

    def corrupt_samples(
        self,
        watts: np.ndarray,
        gpu: str,
        benchmark: str,
        scale: float,
        pair: str,
        measure_attempt: int = 0,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Apply dropout/glitch/saturation to a meter trace.

        Returns the corrupted samples and a validity mask (``None``
        when every sample is valid, preserving fault-free byte
        layouts).  Dropped samples read NaN; glitched samples carry the
        spike value; saturated samples clip at the range ceiling but
        stay valid.  ``measure_attempt`` keys quorum re-measurements so
        each re-try is an independent deterministic draw.
        """
        plan = self.plan
        n = watts.size
        if n == 0:
            return watts, None
        needs_rng = plan.meter_dropout_rate > 0 or plan.meter_glitch_rate > 0
        if not needs_rng and plan.meter_saturation_w is None:
            return watts, None
        out = watts.copy()
        valid = np.ones(n, dtype=bool)
        if needs_rng:
            rng = stream(
                "fault", plan.seed, "meter", gpu, benchmark, scale, pair,
                measure_attempt, seed=self.seed,
            )
            draws = rng.random(n)
            glitch_mag = rng.random(n)
            dropped = draws < plan.meter_dropout_rate
            glitched = (~dropped) & (
                draws < plan.meter_dropout_rate + plan.meter_glitch_rate
            )
            out[glitched] *= plan.meter_glitch_scale * (0.5 + glitch_mag[glitched])
            out[dropped] = np.nan
            valid &= ~(dropped | glitched)
        if plan.meter_saturation_w is not None:
            np.minimum(
                out, plan.meter_saturation_w, out=out, where=~np.isnan(out)
            )
        if valid.all():
            return out, None
        current_telemetry().metrics.inc(
            "faults.meter_samples", int(np.count_nonzero(~valid))
        )
        return out, valid
