"""Process-local execution-attempt context.

Transient faults must be able to *clear* on retry while staying
deterministic: the injector keys its decisions on the attempt number,
so attempt 1 of a unit always sees the same faults, attempt 2 always
sees the same (different) draw, and so on — identically under serial
and parallel execution, because the attempt counter is scoped to one
unit execution in one process.

The retry loop (``repro.execution.engine._execute_with_retry``) wraps
each attempt in :func:`executing_attempt`; instruments read the current
attempt through the injector.  Code running outside the engine (direct
``Testbed`` use, tests) sees attempt 1.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ATTEMPT: int = 1


def current_attempt() -> int:
    """The attempt number of the work-unit execution in progress (1-based)."""
    return _ATTEMPT


@contextmanager
def executing_attempt(attempt: int) -> Iterator[None]:
    """Mark the code inside as attempt ``attempt`` of a unit execution."""
    global _ATTEMPT
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    previous = _ATTEMPT
    _ATTEMPT = attempt
    try:
        yield
    finally:
        _ATTEMPT = previous
