"""Random-forest regression baseline (Zhang et al., related work).

Zhang et al. analyzed the power and performance of a Radeon HD 5870
"using a random forest method with the profile counter information".
This module implements that comparator from scratch — CART regression
trees with variance-reduction splits, bagging, and per-split feature
subsampling — so the paper's linear unified models can be compared
against the strongest non-linear alternative of their era.

Unlike the unified models, the forest does not need the Eq. 1/Eq. 2
frequency folding: it receives raw counter rates/totals plus the two
frequencies as ordinary features and learns interactions itself.  The
price is interpretability and extrapolation — exactly the trade the
paper's discussion implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.errors import ModelNotFittedError
from repro.rng import stream


@dataclass
class _Node:
    """One node of a regression tree."""

    #: Predicted value at this node (mean of its training targets).
    value: float
    #: Split definition; None for leaves.
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """CART regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Depth cap; shallow trees underfit, deep trees memorize.
    min_samples_leaf:
        Minimum training samples per leaf.
    max_features:
        Features considered per split (``None`` = all); the forest sets
        this for decorrelation.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        max_features: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._root: _Node | None = None

    # ------------------------------------------------------------------

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float, np.ndarray] | None:
        n, p = X.shape
        k = self.max_features or p
        features = rng.permutation(p)[: min(k, p)]
        best: tuple[float, int, float, np.ndarray] | None = None
        base_sse = float(np.sum((y - y.mean()) ** 2))
        for j in features:
            order = np.argsort(X[:, j], kind="stable")
            xs, ys = X[order, j], y[order]
            # Prefix sums allow O(n) evaluation of every split point.
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csq[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total_sum - csum[i - 1]
                right_sse = (total_sq - csq[i - 1]) - right_sum**2 / right_n
                sse = float(left_sse + right_sse)
                if best is None or sse < best[0]:
                    threshold = (
                        (xs[i - 1] + xs[i]) / 2.0 if i < n else xs[i - 1]
                    )
                    mask = X[:, j] <= threshold
                    best = (sse, int(j), float(threshold), mask)
        if best is None or best[0] >= base_sse - 1e-12:
            return None
        _, j, threshold, mask = best
        if mask.all() or not mask.any():
            return None
        return j, threshold, mask

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node = _Node(value=float(np.mean(y)))
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_samples_leaf
            or np.ptp(y) == 0.0
        ):
            return node
        split = self._best_split(X, y, rng)
        if split is None:
            return node
        j, threshold, mask = split
        node.feature = j
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator | None = None
    ) -> "RegressionTree":
        """Fit the tree; ``rng`` drives feature subsampling."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.size:
            raise ValueError("X must be (n, p) and y (n,)")
        if rng is None:
            rng = stream("regression-tree")
        self._root = self._grow(X, y, 0, rng)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        if self._root is None:
            raise ModelNotFittedError("tree has not been fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = (
                    node.left if row[node.feature] <= node.threshold else node.right
                )
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise ModelNotFittedError("tree has not been fitted")
        return walk(self._root)


class RandomForest:
    """Bagged regression trees with feature subsampling."""

    def __init__(
        self,
        n_trees: int = 40,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        feature_fraction: float = 0.4,
        seed_label: str = "random-forest",
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if not 0.0 < feature_fraction <= 1.0:
            raise ValueError(
                f"feature_fraction must be in (0, 1], got {feature_fraction}"
            )
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_fraction = feature_fraction
        self.seed_label = seed_label
        self._trees: list[RegressionTree] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return bool(self._trees)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        """Fit the ensemble on (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        n, p = X.shape
        k = max(1, int(round(self.feature_fraction * p)))
        self._trees = []
        for t in range(self.n_trees):
            rng = stream(self.seed_label, "tree", t)
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=k,
            )
            tree.fit(X[idx], y[idx], rng)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction."""
        if not self.is_fitted:
            raise ModelNotFittedError("forest has not been fitted")
        return np.mean([t.predict(X) for t in self._trees], axis=0)


# ----------------------------------------------------------------------
# dataset-facing wrapper
# ----------------------------------------------------------------------

def forest_features(
    dataset: ModelingDataset, per_second: bool
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Raw counter features plus the two frequencies.

    ``per_second=True`` mirrors the power model's rate features;
    ``False`` uses totals (performance).  Counters are log-scaled —
    their magnitudes span many decades, and CART thresholds behave far
    better on log scale.
    """
    totals = dataset.counter_matrix()
    if per_second:
        totals = totals / dataset.exec_seconds()[:, None]
    logged = np.log1p(np.maximum(totals, 0.0))
    core = np.array([o.op.core_mhz for o in dataset.observations])
    mem = np.array([o.op.mem_mhz for o in dataset.observations])
    X = np.column_stack([logged, core, mem])
    names = tuple(dataset.counter_names) + ("corefreq", "memfreq")
    return X, names


@dataclass
class ForestModel:
    """Random-forest counterpart of one unified model family.

    Parameters
    ----------
    target:
        ``"power"`` or ``"performance"``.
    """

    target: str
    n_trees: int = 40
    forest: RandomForest = field(init=False)

    def __post_init__(self) -> None:
        if self.target not in ("power", "performance"):
            raise ValueError(
                f"target must be 'power' or 'performance', got {self.target!r}"
            )
        self.forest = RandomForest(
            n_trees=self.n_trees, seed_label=f"forest-{self.target}"
        )

    def _features(self, dataset: ModelingDataset) -> np.ndarray:
        X, _ = forest_features(dataset, per_second=self.target == "power")
        return X

    def _target(self, dataset: ModelingDataset) -> np.ndarray:
        if self.target == "power":
            return dataset.avg_power_w()
        return dataset.exec_seconds()

    def fit(self, dataset: ModelingDataset) -> "ForestModel":
        """Fit the forest on a modeling dataset."""
        self.forest.fit(self._features(dataset), self._target(dataset))
        return self

    def predict(self, dataset: ModelingDataset) -> np.ndarray:
        """Predict the target for every observation."""
        return self.forest.predict(self._features(dataset))

    def mean_pct_error(self, dataset: ModelingDataset) -> float:
        """Mean absolute percentage error on a dataset."""
        actual = self._target(dataset)
        predicted = self.predict(dataset)
        return float(
            np.mean(100.0 * np.abs(predicted - actual) / np.abs(actual))
        )
