"""Related-work comparators.

* :mod:`repro.baselines.per_pair` — one regression per frequency pair,
  the state of the art the paper's *unified* model is compared against
  (Figs. 9 and 10; Nagasaka et al. for power).
* :mod:`repro.baselines.hong_kim` — a simplified analytic MWP/CWP-style
  model in the spirit of Hong & Kim, which requires per-GPU tuning and
  is what the paper argues does not transfer across generations.
"""

from repro.baselines.per_pair import PerPairModelSuite
from repro.baselines.hong_kim import HongKimModel

__all__ = ["PerPairModelSuite", "HongKimModel"]
