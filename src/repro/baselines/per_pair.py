"""Per-frequency-pair regression models (the pre-unified state of the art).

Prior statistical models (e.g. Nagasaka et al. for power) were built for
one fixed frequency pair; a system designer would need one model instance
per pair.  Figs. 9 and 10 of the paper compare those per-pair models with
the unified model.  This module trains one
:class:`~repro.core.models._UnifiedModel` subclass per pair — the
frequency terms in the features become constants, reducing each instance
to a plain counter regression, exactly like the prior work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from repro.core.dataset import ModelingDataset
from repro.core.evaluate import ErrorReport, evaluate_model
from repro.core.models import (
    UnifiedPerformanceModel,
    UnifiedPowerModel,
    _UnifiedModel,
)


@dataclass
class PerPairModelSuite:
    """One regression per frequency pair, plus the unified comparator.

    Parameters
    ----------
    model_cls:
        :class:`UnifiedPowerModel` or :class:`UnifiedPerformanceModel`.
    max_features:
        Forward-selection cap (the paper's 10).
    """

    model_cls: Type[_UnifiedModel]
    max_features: int = 10

    def __post_init__(self) -> None:
        self.per_pair: dict[str, _UnifiedModel] = {}
        self.unified: _UnifiedModel | None = None

    def fit(self, dataset: ModelingDataset) -> "PerPairModelSuite":
        """Fit one model per pair present in the dataset, plus unified."""
        self.per_pair = {}
        for pair_key in dataset.pair_keys:
            subset = dataset.for_pair(pair_key)
            model = self.model_cls(max_features=self.max_features)
            model.fit(subset)
            self.per_pair[pair_key] = model
        self.unified = self.model_cls(max_features=self.max_features)
        self.unified.fit(dataset)
        return self

    def evaluate(self, dataset: ModelingDataset) -> dict[str, ErrorReport]:
        """Error reports keyed by pair, plus ``"unified"``.

        Each per-pair model is evaluated on its own pair's observations
        (as in Figs. 9/10); the unified model on the whole dataset.
        """
        if self.unified is None:
            raise RuntimeError("suite has not been fitted")
        reports: dict[str, ErrorReport] = {}
        for pair_key, model in self.per_pair.items():
            reports[pair_key] = evaluate_model(model, dataset.for_pair(pair_key))
        reports["unified"] = evaluate_model(self.unified, dataset)
        return reports


def power_suite(max_features: int = 10) -> PerPairModelSuite:
    """Convenience constructor for the Fig. 9 comparison."""
    return PerPairModelSuite(UnifiedPowerModel, max_features)


def performance_suite(max_features: int = 10) -> PerPairModelSuite:
    """Convenience constructor for the Fig. 10 comparison."""
    return PerPairModelSuite(UnifiedPerformanceModel, max_features)
