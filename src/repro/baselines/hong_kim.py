"""Simplified analytic timing/power model in the spirit of Hong & Kim.

The related work the paper positions against ([7, 8]) predicts GPU
execution time from program analysis plus a *hand-tuned architectural
model* (MWP/CWP).  Its weakness — the reason the paper builds statistical
models instead — is that the tuned constants are specific to one GPU:
the authors report that porting the GTX 280 model even to the same-
generation GTX 285 was "very time-consuming".

This baseline reproduces that trade-off:

* :meth:`HongKimModel.tune` calibrates two architectural constants
  (effective IPC, effective bandwidth) against measurements of *one* GPU;
* :meth:`HongKimModel.predict_seconds` then predicts analytically, with
  no counters needed;
* applying a model tuned on GPU A to GPU B (``transfer``) shows the
  cross-generation breakdown the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.dvfs import ClockLevel, OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.timing import compute_work_ops
from repro.errors import ModelNotFittedError
from repro.instruments.testbed import Measurement, Testbed
from repro.kernels.profile import KernelSpec


@dataclass
class HongKimModel:
    """Two-constant analytic model: compute-side IPC and memory bandwidth.

    ``time = ops / (ipc_eff * peak_flops(op)) + dram_bytes /
    (bw_eff * peak_bw(op)) + overhead`` — a no-overlap roofline with
    tuned efficiency constants, as an honest miniature of the analytic
    school of modeling.
    """

    gpu: GPUSpec

    def __post_init__(self) -> None:
        self.ipc_eff: float | None = None
        self.bw_eff: float | None = None
        self.overhead_s: float = 0.0

    @property
    def is_tuned(self) -> bool:
        """Whether :meth:`tune` has run."""
        return self.ipc_eff is not None

    # ------------------------------------------------------------------

    def _components(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> tuple[float, float]:
        work = kernel.work(scale)
        ops = compute_work_ops(work)
        # The analytic school estimates DRAM traffic from source analysis;
        # it sees requested bytes, not post-cache traffic.
        t_comp = ops / self.gpu.peak_flops(op)
        t_mem = work.global_bytes / self.gpu.peak_bandwidth(op)
        return t_comp, t_mem

    def tune(
        self,
        measurements: list[tuple[KernelSpec, float, Measurement]],
    ) -> "HongKimModel":
        """Calibrate the efficiency constants against one GPU's data.

        Parameters
        ----------
        measurements:
            ``(kernel, scale, measurement)`` triples from the target GPU.
        """
        if len(measurements) < 3:
            raise ValueError("need at least three measurements to tune")
        rows = []
        times = []
        for kernel, scale, m in measurements:
            t_comp, t_mem = self._components(kernel, scale, m.op)
            rows.append([t_comp, t_mem, 1.0])
            times.append(m.exec_seconds)
        A = np.asarray(rows)
        y = np.asarray(times)
        coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        inv_ipc, inv_bw, overhead = coef
        # Efficiencies are reciprocals of the fitted slowdowns, clamped to
        # physically meaningful ranges.
        self.ipc_eff = float(np.clip(1.0 / max(inv_ipc, 1e-9), 0.05, 1.5))
        self.bw_eff = float(np.clip(1.0 / max(inv_bw, 1e-9), 0.05, 1.5))
        self.overhead_s = float(max(overhead, 0.0))
        return self

    def transfer(self, other_gpu: GPUSpec) -> "HongKimModel":
        """Port the tuned constants to a different GPU, untuned.

        This is exactly what the paper reports failing: the constants
        encode microarchitectural behaviour of the GPU they were tuned
        on.
        """
        if not self.is_tuned:
            raise ModelNotFittedError("tune the model before transferring")
        ported = HongKimModel(other_gpu)
        ported.ipc_eff = self.ipc_eff
        ported.bw_eff = self.bw_eff
        ported.overhead_s = self.overhead_s
        return ported

    def predict_seconds(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> float:
        """Analytic execution-time prediction."""
        if not self.is_tuned:
            raise ModelNotFittedError("tune the model before predicting")
        t_comp, t_mem = self._components(kernel, scale, op)
        assert self.ipc_eff is not None and self.bw_eff is not None
        return t_comp / self.ipc_eff + t_mem / self.bw_eff + self.overhead_s


def tune_on_gpu(
    gpu: GPUSpec,
    benchmarks: list[KernelSpec],
    scale: float = 0.25,
    seed: int | None = None,
) -> tuple[HongKimModel, list[tuple[KernelSpec, float, Measurement]]]:
    """Measure a benchmark set at (H-H) and tune an analytic model on it."""
    testbed = Testbed(gpu, seed=seed)
    testbed.set_clocks(ClockLevel.H, ClockLevel.H)
    data = [(b, scale, testbed.measure(b, scale)) for b in benchmarks]
    model = HongKimModel(gpu).tune(data)
    return model, data
