"""CUDA SDK code samples (6 kernels of Table II)."""

from __future__ import annotations

from repro.kernels.profile import KernelSpec

SUITE = "CUDA SDK"

_S4 = (0.00375, 0.02, 0.075, 0.25)
_S3 = (0.0075, 0.05, 0.25)

BENCHMARKS: tuple[KernelSpec, ...] = (
    KernelSpec(
        name="binomialOptions",
        suite=SUITE,
        description="Binomial option pricing; iterative in-register/shared compute",
        gflops_total=2600.0,
        gbytes_total=32.0,
        locality=0.70,
        occupancy=0.90,
        shared_fraction=0.18,
        modeling_sizes=_S3,
    ),
    KernelSpec(
        name="BlackScholes",
        suite=SUITE,
        description="Black-Scholes pricing; transcendental streaming over large arrays",
        gflops_total=1400.0,
        gbytes_total=400.0,
        locality=0.20,
        coalescing=1.0,
        occupancy=0.95,
        sfu_fraction=0.10,
        modeling_sizes=_S4,
    ),
    KernelSpec(
        name="concurrentKernels",
        suite=SUITE,
        description="Many tiny concurrent kernels; launch-latency dominated",
        gflops_total=20.0,
        gbytes_total=12.0,
        locality=0.50,
        occupancy=0.20,
        launches=30000.0,
        threads_total=2e6,
        host_seconds=0.20,
        modeling_sizes=_S3,
    ),
    KernelSpec(
        name="histogram64",
        suite=SUITE,
        description="64-bin histogram; shared-memory accumulation",
        gflops_total=160.0,
        gbytes_total=440.0,
        locality=0.40,
        coalescing=0.85,
        occupancy=0.70,
        shared_fraction=0.25,
        int_fraction=0.70,
        atom_fraction=0.02,
        modeling_sizes=_S3,
    ),
    KernelSpec(
        name="histogram256",
        suite=SUITE,
        description="256-bin histogram; shared atomics with bank conflicts",
        gflops_total=200.0,
        gbytes_total=480.0,
        locality=0.40,
        coalescing=0.85,
        occupancy=0.65,
        shared_fraction=0.30,
        int_fraction=0.70,
        atom_fraction=0.03,
        modeling_sizes=_S3,
    ),
    KernelSpec(
        name="MersenneTwister",
        suite=SUITE,
        description="Mersenne-Twister RNG; integer-heavy streaming generation",
        gflops_total=1120.0,
        gbytes_total=240.0,
        locality=0.15,
        coalescing=1.0,
        occupancy=0.90,
        int_fraction=0.90,
        modeling_sizes=_S3,
    ),
)
