"""Basic matrix-operation programs with large inputs (Table II, bottom)."""

from __future__ import annotations

from repro.kernels.profile import KernelSpec

SUITE = "Matrix"

_S4 = (0.00375, 0.02, 0.075, 0.25)
_S3 = (0.0075, 0.05, 0.25)

BENCHMARKS: tuple[KernelSpec, ...] = (
    KernelSpec(
        name="MAdd",
        suite=SUITE,
        description="Element-wise matrix addition; pure streaming bandwidth",
        gflops_total=48.0,
        gbytes_total=480.0,
        locality=0.05,
        coalescing=1.0,
        occupancy=0.95,
        int_fraction=0.10,
        branch_fraction=0.02,
        modeling_sizes=_S4,
    ),
    KernelSpec(
        name="MMul",
        suite=SUITE,
        description="Dense matrix multiply; tiled with strong cache/shared reuse",
        gflops_total=4000.0,
        gbytes_total=360.0,
        locality=0.80,
        coalescing=0.95,
        occupancy=0.85,
        shared_fraction=0.20,
        work_exponent=1.5,
        modeling_sizes=_S4,
    ),
    KernelSpec(
        name="MTranspose",
        suite=SUITE,
        description="Matrix transpose; bandwidth-bound with partially-coalesced stores",
        gflops_total=20.0,
        gbytes_total=400.0,
        locality=0.30,
        coalescing=0.60,
        occupancy=0.90,
        int_fraction=0.20,
        branch_fraction=0.02,
        read_fraction=0.5,
        modeling_sizes=_S3,
    ),
)
