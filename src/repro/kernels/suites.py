"""Benchmark registry across the four suites of Table II."""

from __future__ import annotations

from repro.errors import UnknownBenchmarkError
from repro.kernels import cuda_sdk, matrix, parboil, rodinia
from repro.kernels.profile import KernelSpec

#: Suites in the paper's Table II order.
BENCHMARK_SUITES: dict[str, tuple[KernelSpec, ...]] = {
    rodinia.SUITE: rodinia.BENCHMARKS,
    parboil.SUITE: parboil.BENCHMARKS,
    cuda_sdk.SUITE: cuda_sdk.BENCHMARKS,
    matrix.SUITE: matrix.BENCHMARKS,
}

_BY_NAME: dict[str, KernelSpec] = {}
for _suite_benchmarks in BENCHMARK_SUITES.values():
    for _bench in _suite_benchmarks:
        key = _bench.name.lower()
        if key in _BY_NAME:
            raise RuntimeError(f"duplicate benchmark name {_bench.name!r}")
        _BY_NAME[key] = _bench


def all_benchmarks() -> list[KernelSpec]:
    """All 37 benchmarks in Table II order."""
    return [b for suite in BENCHMARK_SUITES.values() for b in suite]


def benchmarks_of_suite(suite: str) -> list[KernelSpec]:
    """Benchmarks of one suite (case-insensitive suite name)."""
    for name, benchmarks in BENCHMARK_SUITES.items():
        if name.lower() == suite.strip().lower():
            return list(benchmarks)
    raise UnknownBenchmarkError(
        f"unknown suite {suite!r}; available: {', '.join(BENCHMARK_SUITES)}"
    )


def get_benchmark(name: str) -> KernelSpec:
    """Look up one benchmark by (case-insensitive) name."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError:
        raise UnknownBenchmarkError(
            f"unknown benchmark {name!r}; see repro.kernels.all_benchmarks()"
        ) from None


def modeling_benchmarks() -> list[KernelSpec]:
    """The benchmarks usable for model construction.

    Excludes the four the paper's profiler failed on; the remaining 33
    benchmarks with their per-benchmark input scales yield the paper's
    114 modeling samples.
    """
    return [b for b in all_benchmarks() if b.profiler_ok]
