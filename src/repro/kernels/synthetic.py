"""Synthetic workload generator.

Draws random but physically-coherent :class:`KernelSpec` instances from
the parameter distributions spanned by the Table II suite.  Two uses:

* stress-testing — property-based tests can exercise the engine on
  arbitrary corners of the workload space;
* validation — the ``ext_synthetic`` experiment trains the unified
  models on the paper's benchmarks and evaluates them on workloads drawn
  from the *space*, a stronger generalization probe than leave-one-out.
"""

from __future__ import annotations


import numpy as np

from repro.kernels.profile import KernelSpec
from repro.rng import stream

SUITE = "Synthetic"


def generate_kernel(index: int, seed: int | None = None) -> KernelSpec:
    """Draw one synthetic kernel, deterministic in ``index``.

    Work totals are log-uniform across the suite's range; behavioural
    parameters are correlated the way real kernels are (irregular access
    patterns come with divergence; heavy shared-memory use comes with
    blocked compute).
    """
    rng = stream("synthetic-kernel", index, seed=seed)
    gflops = float(np.exp(rng.uniform(np.log(20.0), np.log(4000.0))))
    # Arithmetic intensity spans the suite's range (0.05 .. 80 flop/byte).
    intensity = float(np.exp(rng.uniform(np.log(0.05), np.log(80.0))))
    gbytes = gflops / intensity
    coalescing = float(rng.uniform(0.3, 1.0))
    # Scattered access tends to come with control divergence.
    divergence = float(
        np.clip(rng.uniform(0.0, 0.3) + 0.4 * (1.0 - coalescing), 0.0, 0.7)
    )
    locality = float(rng.uniform(0.05, 0.9))
    blocked = intensity > 5.0 and rng.uniform() < 0.6
    shared_fraction = float(rng.uniform(0.1, 0.25)) if blocked else float(
        rng.uniform(0.0, 0.08)
    )
    return KernelSpec(
        name=f"synth{index:03d}",
        suite=SUITE,
        description=f"synthetic workload #{index} (AI {intensity:.2g})",
        gflops_total=gflops,
        gbytes_total=gbytes,
        locality=locality,
        coalescing=coalescing,
        divergence=divergence,
        occupancy=float(rng.uniform(0.35, 0.95)),
        shared_fraction=shared_fraction,
        sfu_fraction=float(rng.uniform(0.0, 0.08)),
        int_fraction=float(rng.uniform(0.1, 0.8)),
        branch_fraction=float(rng.uniform(0.02, 0.18)),
        launches=float(np.exp(rng.uniform(np.log(10.0), np.log(5000.0)))),
        host_seconds=float(rng.uniform(0.02, 0.3)),
        work_exponent=float(rng.uniform(1.0, 1.4)),
        modeling_sizes=(0.0075, 0.05, 0.25),
        profiler_ok=True,
    )


def generate_suite(
    count: int, seed: int | None = None
) -> list[KernelSpec]:
    """Draw a suite of distinct synthetic kernels."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [generate_kernel(i, seed=seed) for i in range(count)]
