"""Workload substrate: the 37 benchmarks of Table II.

Each benchmark is described by a :class:`~repro.kernels.profile.KernelSpec`
capturing its instruction mix, memory intensity, locality, divergence and
input-size scaling.  The simulator and the profiler only ever observe a
kernel through the :class:`~repro.kernels.profile.WorkProfile` it produces
for a given input scale, which is exactly the visibility the paper's
statistical models have through performance counters.
"""

from repro.kernels.profile import KernelSpec, WorkProfile
from repro.kernels.suites import (
    BENCHMARK_SUITES,
    all_benchmarks,
    benchmarks_of_suite,
    get_benchmark,
    modeling_benchmarks,
)

__all__ = [
    "KernelSpec",
    "WorkProfile",
    "BENCHMARK_SUITES",
    "all_benchmarks",
    "benchmarks_of_suite",
    "get_benchmark",
    "modeling_benchmarks",
]
