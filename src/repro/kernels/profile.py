"""Kernel specifications and the work profiles they generate.

A :class:`KernelSpec` is the synthetic stand-in for a CUDA benchmark: a
set of per-run totals (floating-point work, memory traffic, launches) plus
behavioural characteristics (locality, coalescing, divergence, occupancy)
and an input-size scaling law.  Calling :meth:`KernelSpec.work` yields a
:class:`WorkProfile` — the ground-truth activity record from which the
engine derives timing, power and every performance counter.

The numbers are calibrated per benchmark so that the *relative* behaviour
matches what the paper reports: Backprop is the compute-intensive
showcase of Fig. 1, Streamcluster the most memory-intensive workload of
Fig. 2, Gaussian the frequency-sensitive mixed case of Fig. 3, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkProfile:
    """Ground-truth activity totals of one benchmark run.

    All counts are totals over the whole run (the paper's performance
    model uses totals; its power model divides by runtime to get
    per-second rates).
    """

    #: Single-precision floating point operations.
    flops: float
    #: Double-precision operations (tiny on these consumer cards).
    dp_flops: float
    #: Integer ALU operations.
    int_ops: float
    #: Special-function-unit operations (transcendentals).
    sfu_ops: float
    #: Total dynamic instructions issued (all classes).
    inst_total: float
    #: Branch instructions.
    branches: float
    #: Branches that actually diverged within a warp.
    divergent_branches: float
    #: Shared-memory load instructions.
    shared_loads: float
    #: Shared-memory store instructions.
    shared_stores: float
    #: Global-memory bytes requested by loads.
    gld_bytes: float
    #: Global-memory bytes requested by stores.
    gst_bytes: float
    #: Atomic operations.
    atom_ops: float
    #: Total launched threads.
    threads: float
    #: Total launched warps.
    warps: float
    #: Total launched thread blocks (CTAs).
    blocks: float
    #: Number of kernel launches in the run.
    launches: float
    #: Host-device PCIe transfer bytes (both directions).
    pcie_bytes: float
    #: Fraction of global traffic that an ideal cache could filter (0-1).
    locality: float
    #: DRAM access efficiency of the access pattern (0-1).
    coalescing: float
    #: Achieved occupancy (0-1).
    occupancy: float
    #: Fraction of branch instructions that diverge (0-1).
    divergence: float
    #: Host-side (CPU) time of the run, seconds.
    host_seconds: float

    @property
    def global_bytes(self) -> float:
        """Total requested global-memory traffic in bytes."""
        return self.gld_bytes + self.gst_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per requested global byte."""
        if self.global_bytes == 0:
            return float("inf")
        return (self.flops + self.dp_flops) / self.global_bytes


@dataclass(frozen=True)
class KernelSpec:
    """Synthetic specification of one Table II benchmark.

    Scale-1.0 totals correspond to the paper's "maximum feasible input
    data size"; :meth:`work` applies the scaling law for smaller inputs
    used when building the 114-sample modeling dataset.
    """

    name: str
    suite: str
    description: str
    #: GFLOP of single-precision work at scale 1.0.
    gflops_total: float
    #: GB of requested global-memory traffic at scale 1.0.
    gbytes_total: float
    #: Cache-filterable fraction of the traffic (0-1).
    locality: float
    #: DRAM access-pattern efficiency (0-1).
    coalescing: float = 0.85
    #: Fraction of branches that diverge (0-1).
    divergence: float = 0.10
    #: Achieved occupancy (0-1).
    occupancy: float = 0.75
    #: Shared-memory instructions per FLOP.
    shared_fraction: float = 0.05
    #: SFU operations per FLOP (transcendental-heavy kernels).
    sfu_fraction: float = 0.01
    #: Double-precision share of floating-point work.
    dp_fraction: float = 0.0
    #: Integer operations per FLOP.
    int_fraction: float = 0.30
    #: Branch instructions as a fraction of total instructions.
    branch_fraction: float = 0.08
    #: Atomic operations per instruction.
    atom_fraction: float = 0.0
    #: Fraction of global traffic that is loads (rest is stores).
    read_fraction: float = 0.70
    #: Kernel launches at scale 1.0.
    launches: float = 50.0
    #: Launched threads at scale 1.0.
    threads_total: float = 50e6
    #: Threads per block.
    block_size: float = 256.0
    #: Host-side seconds at scale 1.0.
    host_seconds: float = 0.05
    #: Host-device transfer volume at scale 1.0 (GB, both directions).
    #: Defaults to a fraction of the device traffic (input + output
    #: arrays cross the bus once; intermediate traffic does not).
    pcie_gbytes: float | None = None
    #: Exponent of the work scaling law (totals scale as ``s**exp``).
    work_exponent: float = 1.0
    #: Relative input scales used to build the modeling dataset.
    modeling_sizes: tuple[float, ...] = (0.25, 0.5, 1.0)
    #: Whether the (simulated) CUDA profiler can analyze this benchmark.
    #: False for the four benchmarks the paper reports as failing.
    profiler_ok: bool = True

    def __post_init__(self) -> None:
        if self.gflops_total <= 0 or self.gbytes_total <= 0:
            raise ValueError(f"{self.name}: work totals must be positive")
        for attr in ("locality", "coalescing", "divergence", "occupancy"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr}={value} outside [0, 1]")
        if not self.modeling_sizes or any(s <= 0 for s in self.modeling_sizes):
            raise ValueError(f"{self.name}: modeling sizes must be positive")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte at scale 1.0 — the roofline coordinate."""
        return self.gflops_total / self.gbytes_total

    @property
    def effective_pcie_gbytes(self) -> float:
        """Bus traffic at scale 1.0, defaulted from the device traffic."""
        if self.pcie_gbytes is not None:
            return self.pcie_gbytes
        return min(4.0, 0.15 * self.gbytes_total + 0.05)

    def work(self, scale: float = 1.0) -> WorkProfile:
        """Ground-truth activity totals for a run at the given input scale.

        Parameters
        ----------
        scale:
            Relative input size; 1.0 is the paper's "maximum feasible"
            input.  Totals scale as ``scale ** work_exponent``; launch
            count and host time scale sublinearly (driver overheads are
            per-launch, not per-element).
        """
        if scale <= 0:
            raise ValueError(f"input scale must be positive, got {scale}")
        s = scale**self.work_exponent
        flops_all = self.gflops_total * 1e9 * s
        dp_flops = flops_all * self.dp_fraction
        flops = flops_all - dp_flops
        gbytes = self.gbytes_total * 1e9 * s
        gld = gbytes * self.read_fraction
        gst = gbytes - gld
        int_ops = flops_all * self.int_fraction
        sfu_ops = flops_all * self.sfu_fraction
        shared_ops = flops_all * self.shared_fraction
        shared_loads = shared_ops * 0.6
        shared_stores = shared_ops * 0.4
        # Instruction accounting: FMA retires 2 FLOPs per instruction; a
        # memory instruction moves ~8 bytes per thread on average.
        ls_inst = gbytes / 8.0
        base_inst = flops_all / 1.6 + int_ops + sfu_ops + shared_ops + ls_inst
        inst_total = base_inst / (1.0 - self.branch_fraction)
        branches = inst_total * self.branch_fraction
        divergent = branches * self.divergence
        atom_ops = inst_total * self.atom_fraction
        threads = self.threads_total * s
        launches = max(1.0, self.launches * scale**0.5)
        return WorkProfile(
            flops=flops,
            dp_flops=dp_flops,
            int_ops=int_ops,
            sfu_ops=sfu_ops,
            inst_total=inst_total,
            branches=branches,
            divergent_branches=divergent,
            shared_loads=shared_loads,
            shared_stores=shared_stores,
            gld_bytes=gld,
            gst_bytes=gst,
            atom_ops=atom_ops,
            threads=threads,
            warps=threads / 32.0,
            blocks=threads / self.block_size,
            launches=launches,
            pcie_bytes=self.effective_pcie_gbytes * 1e9 * s,
            locality=self.locality,
            coalescing=self.coalescing,
            occupancy=self.occupancy,
            divergence=self.divergence,
            host_seconds=self.host_seconds * scale**0.5,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.suite}/{self.name}"
