"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig4
    python -m repro run all
    python -m repro sweep "GTX 680" backprop
    python -m repro campaign out/ --faults aggressive
    python -m repro campaign out/ --trace --jobs 4
    python -m repro campaign out/ --live --flight-recorder
    python -m repro top out/
    python -m repro trace summarize out/events.jsonl
    python -m repro trace export out/events.jsonl --format perfetto
    python -m repro chaos out/
    python -m repro governor --online --out regret.json
    python -m repro governor --faults aggressive --gpu "GTX 480"
    python -m repro bench run --quick
    python -m repro bench compare BENCH_pipeline.json new/BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__

#: Exit code of a gracefully interrupted campaign (EX_TEMPFAIL: retry —
#: here, re-run with ``--resume`` — is expected to work).
EXIT_INTERRUPTED = 75


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS

    for experiment_id, (title, _run) in EXPERIMENTS.items():
        print(f"  {experiment_id:8s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import all_experiments, run

    ids = all_experiments() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run(experiment_id, seed=args.seed)
        print(result.to_text())
        print()
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default=None,
        metavar="SPEC",
        help="declarative campaign spec, TOML or JSON (see "
        "docs/ARCHITECTURE.md); explicit flags override spec values",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the measurement work (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed work-unit result cache location",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the work-unit result cache",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan: a preset "
        "('aggressive', 'off') or a JSON plan file (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="stream a JSONL span/event log (see docs/OBSERVABILITY.md); "
        "default path: events.jsonl under the output directory",
    )
    parser.add_argument(
        "--live",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="stream versioned repro.events envelopes to a tailable "
        "NDJSON log for 'repro top' (see docs/OBSERVABILITY.md); "
        "default path: events.ndjson under the output directory",
    )
    parser.add_argument(
        "--flight-recorder",
        nargs="?",
        const="auto",
        default=None,
        dest="flight_recorder",
        metavar="PATH",
        help="keep a bounded in-memory ring of recent events, dumped to "
        "flight.json on watchdog timeouts, breaker quarantines, pool "
        "rebuilds and shutdown signals; default path: flight.json under "
        "the output directory",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        dest="metrics_out",
        metavar="PATH",
        help="write the aggregated metrics.json artifact (campaigns "
        "default to <directory>/metrics.json whenever telemetry is on)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        dest="unit_timeout",
        metavar="SECONDS",
        help="per-unit wall-clock watchdog budget; hung units are timed "
        "out and retried as transient faults (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        dest="breaker_threshold",
        metavar="K",
        help="open a circuit breaker after K permanent failures of one "
        "(GPU, benchmark) fault class and quarantine its remaining units",
    )


def _campaign_spec(args: argparse.Namespace, default_gpus=None):
    """Resolve --config plus explicit flags into one CampaignSpec.

    The spec file (when given) provides the baseline; every flag the
    user set explicitly overrides its field.  Flag-only invocations
    synthesize the equivalent spec, so both paths archive the same
    resolved document in the campaign manifest.
    """
    from repro.session import CampaignSpec, load_spec

    config = getattr(args, "config", None)
    spec = load_spec(config) if config is not None else CampaignSpec()
    overrides: dict[str, object] = {}
    if getattr(args, "gpus", None) is not None:
        overrides["gpus"] = tuple(args.gpus)
    elif spec.gpus is None and default_gpus is not None:
        overrides["gpus"] = tuple(default_gpus)
    if getattr(args, "benchmarks", None) is not None:
        overrides["benchmarks"] = tuple(args.benchmarks)
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.no_cache:
        overrides["cache"] = False
    elif args.cache_dir is not None:
        overrides["cache"] = args.cache_dir
    if getattr(args, "faults", None) is not None:
        overrides["faults"] = args.faults
    if args.trace is not None:
        overrides["trace"] = True if args.trace == "auto" else args.trace
    if getattr(args, "live", None) is not None:
        overrides["live"] = True if args.live == "auto" else args.live
    if getattr(args, "flight_recorder", None) is not None:
        overrides["flight_recorder"] = (
            True if args.flight_recorder == "auto" else args.flight_recorder
        )
    if getattr(args, "unit_timeout", None) is not None:
        overrides["unit_timeout_s"] = args.unit_timeout
    if getattr(args, "breaker_threshold", None) is not None:
        overrides["breaker_threshold"] = args.breaker_threshold
    return spec.override(**overrides) if overrides else spec


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.arch.specs import get_gpu
    from repro.characterize.sweep import FrequencySweep
    from repro.kernels.suites import get_benchmark
    from repro.session import RunContext

    spec = _campaign_spec(args)
    gpu_name = args.gpu or (spec.gpus[0] if spec.gpus else None)
    bench_name = args.benchmark or (spec.benchmarks[0] if spec.benchmarks else None)
    if gpu_name is None or bench_name is None:
        print(
            "sweep needs a GPU and a benchmark (arguments or --config)",
            file=sys.stderr,
        )
        return 2
    gpu = get_gpu(gpu_name)
    bench = get_benchmark(bench_name)
    ctx = RunContext.from_spec(spec, metrics_path=args.metrics_out)
    sweep = FrequencySweep(gpu, ctx)
    try:
        results = sweep.run_benchmark(bench)
    finally:
        if ctx.telemetry is not None:
            from repro.telemetry import metrics_document, write_metrics_json

            snapshot = ctx.telemetry.metrics.snapshot()
            ctx.telemetry.tracer.emit(
                {"type": "metrics", **metrics_document(snapshot)}
            )
            if ctx.metrics_path is not None:
                write_metrics_json(ctx.metrics_path, snapshot)
            ctx.close()
    events_path = ctx.trace_path
    default = results.get("H-H")
    print(f"{bench} on {gpu}:")
    print(f"{'pair':6s} {'time[s]':>9s} {'power[W]':>9s} {'energy[J]':>10s} {'eff vs H-H':>11s}")
    for key, m in results.items():
        if default is not None:
            gain = (default.energy_j / m.energy_j - 1.0) * 100.0
            gain_text = f"{gain:+10.1f}%"
        else:
            gain_text = f"{'n/a':>11s}"
        print(
            f"{key:6s} {m.exec_seconds:9.3f} {m.avg_power_w:9.1f} "
            f"{m.energy_j:10.1f} {gain_text}"
        )
    for failure in sweep.last_failures:
        print(f"  lost {failure.unit.pair}: {failure.describe()}")
    if events_path is not None:
        print(f"trace: {events_path}")
    return 0


def _interrupted(campaign, exc) -> int:
    print(f"\ninterrupted: {exc}", file=sys.stderr)
    print(
        f"journal flushed; re-run with --resume to continue "
        f"({campaign.journal_path})",
        file=sys.stderr,
    )
    return EXIT_INTERRUPTED


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign
    from repro.errors import CampaignInterrupted
    from repro.execution.resilience import GracefulShutdown
    from repro.session import RunContext

    spec = _campaign_spec(args)
    ctx = RunContext.from_spec(
        spec, base_dir=args.directory, metrics_path=args.metrics_out
    )
    campaign = Campaign(
        args.directory,
        gpus=spec.gpus,
        benchmarks=spec.benchmarks,
        pairs=spec.pairs,
        ctx=ctx,
    )
    try:
        with GracefulShutdown():
            summaries = campaign.run(refresh=args.refresh, resume=args.resume)
    except CampaignInterrupted as exc:
        return _interrupted(campaign, exc)
    finally:
        ctx.close()
    events_path = ctx.trace_path
    print(
        f"{'GPU':16s} {'power R̄²':>9s} {'err[%]':>7s} {'err[W]':>7s} "
        f"{'perf R̄²':>9s} {'err[%]':>7s}"
    )
    for s in summaries:
        print(
            f"{s.gpu:16s} {s.power_r2:9.2f} {s.power_err_pct:7.1f} "
            f"{s.power_err_w:7.1f} {s.perf_r2:9.2f} {s.perf_err_pct:7.1f}"
        )
    if campaign.last_stats is not None and campaign.last_stats.total_units:
        print(f"\nexecution: {campaign.last_stats.summary()}")
    if campaign.faults is not None and campaign.last_health is not None:
        print(f"\nhealth ({campaign.faults.name} fault plan):")
        print(campaign.last_health.summary())
    if events_path is not None:
        print(f"\ntrace: {events_path}")
        print(f"metrics: {campaign.metrics_path}")
    elif campaign.telemetry is not None:
        print(f"\nmetrics: {campaign.metrics_path}")
    print(f"\narchived under {campaign.directory}/")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos smoke: a small campaign under the aggressive fault plan.

    Exercises every fault path (profiler exclusions, meter dropout and
    glitches, reconfiguration retries, unit crashes) and proves the
    campaign completes and accounts for its losses.
    """
    from repro.campaign import Campaign
    from repro.errors import CampaignInterrupted
    from repro.execution.resilience import GracefulShutdown
    from repro.session import RunContext

    spec = _campaign_spec(args, default_gpus=["GTX 460"])
    if spec.faults is None:
        if args.faults is not None:
            print(
                "fault plan is null; chaos needs injected faults",
                file=sys.stderr,
            )
            return 2
        spec = spec.override(faults="aggressive")
    ctx = RunContext.from_spec(
        spec, base_dir=args.directory, metrics_path=args.metrics_out
    )
    campaign = Campaign(
        args.directory,
        gpus=spec.gpus,
        benchmarks=spec.benchmarks,
        pairs=spec.pairs,
        ctx=ctx,
    )
    try:
        with GracefulShutdown():
            campaign.run(refresh=args.refresh, resume=args.resume)
    except CampaignInterrupted as exc:
        return _interrupted(campaign, exc)
    finally:
        ctx.close()
    health = campaign.last_health
    print(f"chaos campaign survived the '{spec.faults.name}' fault plan:")
    print(health.summary())
    print(f"\nhealth report: {campaign.health_path}")
    if ctx.trace_path is not None:
        print(f"trace: {ctx.trace_path}")
    return 0


def _cmd_governor(args: argparse.Namespace) -> int:
    """Score the closed-loop online governor against the oracle.

    Streams one campaign per GPU through the recursive estimators,
    re-plans frequency pairs from the live model, and prints (and
    optionally archives) the per-GPU energy-regret table.
    """
    import dataclasses
    import json
    import pathlib

    from repro.arch.specs import GPU_NAMES
    from repro.experiments.ext_governor_online import regret_document
    from repro.session import GovernorSpec, RunContext

    spec = _campaign_spec(args)
    governor = spec.governor or GovernorSpec(mode="online")
    if args.online:
        governor = dataclasses.replace(governor, mode="online")
    if args.forgetting is not None:
        governor = dataclasses.replace(governor, forgetting=args.forgetting)
    if governor.mode != "online":
        print(
            "repro governor evaluates the online closed loop; pass "
            "--online or set governor mode 'online' in --config",
            file=sys.stderr,
        )
        return 2
    gpu_names = spec.gpus if spec.gpus else GPU_NAMES
    ctx = RunContext.from_spec(
        spec.override(governor=governor), metrics_path=args.metrics_out
    )
    try:
        document = regret_document(gpu_names, spec=governor, ctx=ctx)
    finally:
        if ctx.telemetry is not None:
            from repro.telemetry import metrics_document, write_metrics_json

            snapshot = ctx.telemetry.metrics.snapshot()
            ctx.telemetry.tracer.emit(
                {"type": "metrics", **metrics_document(snapshot)}
            )
            if ctx.metrics_path is not None:
                write_metrics_json(ctx.metrics_path, snapshot)
        ctx.close()
    print(
        f"{'GPU':16s} {'online[%]':>10s} {'offline[%]':>11s} "
        f"{'updates':>8s} {'skipped':>8s} {'fallbacks':>10s} {'switches':>9s}"
    )
    for name, entry in document["gpus"].items():
        print(
            f"{name:16s} {entry['mean_regret_pct']:10.2f} "
            f"{entry['offline_mean_regret_pct']:11.2f} "
            f"{entry['updates']:8d} {entry['skipped']:8d} "
            f"{entry['fallbacks']:10d} {entry['switches']:9d}"
        )
    if document["faults"] is not None:
        print(f"\nfault plan: {document['faults']} (oracle stays fault-free)")
    if args.out is not None:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nregret table: {path}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Place a power-capped job stream across a synthesized GPU fleet.

    Synthesizes the device inventory, measures per-device power/perf
    tables through the batch engine (journaled; SIGTERM-safe), places
    the stream with the naive, model-driven and oracle policies and
    archives the ``fleet.json`` report.
    """
    import dataclasses
    import pathlib

    from repro.errors import CampaignInterrupted
    from repro.execution.resilience import GracefulShutdown
    from repro.fleet import run_fleet_campaign
    from repro.fleet.campaign import FLEET_REPORT_NAME, JOURNAL_NAME
    from repro.session import FleetSpec, RunContext

    spec = _campaign_spec(args)
    fleet = spec.fleet or FleetSpec()
    overrides: dict[str, object] = {}
    if args.devices is not None:
        overrides["devices"] = args.devices
    if args.jobs_total is not None:
        overrides["jobs_total"] = args.jobs_total
    if args.power_cap_w is not None:
        overrides["power_cap_w"] = args.power_cap_w
    if args.cap_fraction is not None:
        overrides["cap_fraction"] = args.cap_fraction
    if args.templates is not None:
        overrides["templates"] = tuple(args.templates)
    if args.shard_devices is not None:
        overrides["shard_devices"] = args.shard_devices
    if args.jitter_pct is not None:
        overrides["jitter_pct"] = args.jitter_pct
    if overrides:
        fleet = dataclasses.replace(fleet, **overrides)
    spec = spec.override(fleet=fleet)
    ctx = RunContext.from_spec(
        spec, base_dir=args.directory, metrics_path=args.metrics_out
    )
    try:
        with GracefulShutdown():
            document = run_fleet_campaign(
                fleet, ctx, args.directory, resume=args.resume
            )
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {exc}", file=sys.stderr)
        print(
            f"journal flushed; re-run with --resume to continue "
            f"({pathlib.Path(args.directory) / JOURNAL_NAME})",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    finally:
        if ctx.telemetry is not None:
            from repro.telemetry import metrics_document, write_metrics_json

            snapshot = ctx.telemetry.metrics.snapshot()
            ctx.telemetry.tracer.emit(
                {"type": "metrics", **metrics_document(snapshot)}
            )
            if ctx.metrics_path is not None:
                write_metrics_json(ctx.metrics_path, snapshot)
        ctx.close()
    header = document["fleet"]
    print(
        f"fleet: {header['devices']} devices "
        f"({', '.join(header['templates'])}), "
        f"cap {header['power_cap_w']:.0f} W"
    )
    print(
        f"jobs: {document['jobs']['total']} across "
        f"{len(document['jobs']['classes'])} classes"
    )
    print(
        f"{'policy':8s} {'energy[J]':>14s} {'active':>7s} "
        f"{'makespan[s]':>12s} {'switches':>9s}"
    )
    for name in ("naive", "model", "oracle"):
        policy = document["policies"][name]
        print(
            f"{name:8s} {policy['fleet_energy_j']:14.1f} "
            f"{policy['active_devices']:7d} {policy['makespan_s']:12.1f} "
            f"{policy['reconfigurations']:9d}"
        )
    print(
        f"\nenergy saved vs naive: {document['energy_saved_pct']:.1f}%  "
        f"regret vs oracle: {document['regret_pct']:.1f}%"
    )
    print(f"report: {pathlib.Path(args.directory) / FLEET_REPORT_NAME}")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.telemetry import read_events, render_summary, summarize_events

    path = pathlib.Path(args.events)
    if not path.exists():
        print(f"no event log at {path}", file=sys.stderr)
        return 2
    if getattr(args, "follow", False):
        code = _follow_events(
            path, interval=args.interval, max_seconds=args.max_seconds
        )
        if code != 0:
            return code
        # Fall through to the final summary once the stream ends.
    summary = summarize_events(read_events(path))
    if args.json:
        print(json.dumps(summary.document(), indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _follow_events(
    path,
    interval: float = 0.5,
    max_seconds: float | None = None,
    once: bool = False,
    clear: bool = False,
) -> int:
    """Tail an event log, rendering folded progress until it finishes.

    Shared by ``repro top`` (``clear=True`` redraws in place) and
    ``repro trace summarize --follow`` (scrolling frames, then the
    final summary).  Returns 0 when the stream finished, 3 on a
    ``--max-seconds`` deadline with the stream still open.
    """
    import pathlib
    import time

    from repro.telemetry import (
        EtaEstimator,
        ProgressEngine,
        TailReader,
        discover_bench_prior,
        follow_into,
        render_progress,
    )

    prior = discover_bench_prior(path.parent, pathlib.Path.cwd())
    engine = ProgressEngine(eta=EtaEstimator(prior_unit_s=prior))
    reader = TailReader(path)
    started = time.monotonic()
    while True:
        now = time.monotonic()
        follow_into(engine, reader, at=now - started)
        frame = render_progress(engine)
        if clear:
            print("\x1b[H\x1b[2J" + frame, end="", flush=True)
        else:
            print(frame, flush=True)
        if engine.finished or once:
            return 0
        if max_seconds is not None and now - started >= max_seconds:
            print("(stream still open; deadline reached)", file=sys.stderr)
            return 3
        time.sleep(interval)


def _cmd_top(args: argparse.Namespace) -> int:
    import pathlib

    target = pathlib.Path(args.run_dir)
    if target.is_dir():
        candidates = [target / "events.ndjson", target / "events.jsonl"]
        path = next((c for c in candidates if c.exists()), None)
        if path is None:
            print(
                f"no events.ndjson or events.jsonl under {target} "
                "(run the campaign with --live or --trace)",
                file=sys.stderr,
            )
            return 2
    else:
        path = target
        if not path.exists():
            print(f"no event log at {path}", file=sys.stderr)
            return 2
    return _follow_events(
        path,
        interval=args.interval,
        max_seconds=args.max_seconds,
        once=args.once,
        clear=not args.once,
    )


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.telemetry import export_trace

    path = pathlib.Path(args.events)
    if not path.exists():
        print(f"no event log at {path}", file=sys.stderr)
        return 2
    try:
        out = export_trace(path, out_path=args.out)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"wrote {out} (load it in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    import pathlib

    from repro.bench import (
        RunnerConfig,
        bench_document,
        bench_filename,
        groups,
        run_suite,
        timer_resolution,
        write_bench_json,
    )

    config = RunnerConfig(
        seed=args.seed, quick=args.quick, repeats=args.repeats
    )
    only = tuple(args.only) if args.only else None

    def progress(record):
        timing = record.timing
        print(
            f"  {record.name:32s} median={timing.median * 1e3:10.3f}ms "
            f"mad={timing.mad * 1e3:8.3f}ms  "
            f"(x{record.iterations} per sample, {record.repeats} repeats)"
        )

    try:
        records = run_suite(config, only=only, progress=progress)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    resolution_s = timer_resolution(config.timer)
    out_dir = pathlib.Path(args.out_dir)
    written = []
    for group in groups():
        group_records = [r for r in records if r.group == group]
        if not group_records:
            continue
        document = bench_document(
            group, group_records, config, resolution_s=resolution_s
        )
        written.append(
            write_bench_json(out_dir / bench_filename(group), document)
        )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_documents, load_bench_json, render_report

    try:
        old = load_bench_json(args.old)
        new = load_bench_json(args.new)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = compare_documents(old, new, threshold_pct=args.threshold)
    print(render_report(report))
    if args.report_only:
        return 0
    return report.exit_code(
        fail_on_missing=args.fail_on_missing,
        fail_on_drift=args.fail_on_drift,
    )


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import workloads

    for workload in workloads():
        print(f"  {workload.name:32s} [{workload.group}] {workload.title}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting import render_experiments

    entries = render_experiments(
        args.directory,
        seed=args.seed,
        include_extensions=not args.no_extensions,
    )
    for entry in entries:
        print(f"  wrote {entry.path}")
    print(f"\n{len(entries)} experiments rendered to {args.directory}/")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Power and Performance Characterization and "
            "Modeling of GPU-Accelerated Systems' (Abe et al., 2014)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list all experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment id, e.g. fig4, or 'all'")
    p_run.add_argument("--seed", type=int, default=None, help="noise seed override")
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="sweep one benchmark on one GPU over all pairs"
    )
    p_sweep.add_argument(
        "gpu", nargs="?", default=None,
        help="GPU name, e.g. 'GTX 680' (or first gpus entry of --config)",
    )
    p_sweep.add_argument(
        "benchmark", nargs="?", default=None,
        help="benchmark name, e.g. backprop (or first benchmarks entry "
        "of --config)",
    )
    p_sweep.add_argument("--seed", type=int, default=None)
    _add_execution_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_campaign = sub.add_parser(
        "campaign",
        help="run the full measurement+modeling campaign with JSON archival",
    )
    p_campaign.add_argument(
        "directory", help="directory for datasets, models and the manifest"
    )
    p_campaign.add_argument(
        "--gpu",
        action="append",
        dest="gpus",
        default=None,
        help="restrict to specific GPUs (repeatable)",
    )
    p_campaign.add_argument(
        "--benchmark",
        action="append",
        dest="benchmarks",
        default=None,
        help="restrict the modeling datasets to specific benchmarks "
        "(repeatable)",
    )
    p_campaign.add_argument(
        "--refresh", action="store_true", help="re-measure even if archived"
    )
    p_campaign.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal of an interrupted campaign instead "
        "of re-executing settled units (see docs/ROBUSTNESS.md)",
    )
    p_campaign.add_argument("--seed", type=int, default=None)
    _add_execution_flags(p_campaign)
    p_campaign.set_defaults(func=_cmd_campaign)

    p_chaos = sub.add_parser(
        "chaos",
        help="smoke-test graceful degradation under an aggressive fault plan",
    )
    p_chaos.add_argument(
        "directory", help="directory for datasets, models and health report"
    )
    p_chaos.add_argument(
        "--gpu",
        action="append",
        dest="gpus",
        default=None,
        help="restrict to specific GPUs (default: GTX 460; repeatable)",
    )
    p_chaos.add_argument(
        "--benchmark",
        action="append",
        dest="benchmarks",
        default=None,
        help="restrict the dataset to specific benchmarks (repeatable)",
    )
    p_chaos.add_argument(
        "--refresh", action="store_true", help="re-measure even if archived"
    )
    p_chaos.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal of an interrupted campaign instead "
        "of re-executing settled units",
    )
    p_chaos.add_argument("--seed", type=int, default=None)
    _add_execution_flags(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_governor = sub.add_parser(
        "governor",
        help="score the closed-loop online DVFS governor vs the oracle",
    )
    p_governor.add_argument(
        "--gpu",
        action="append",
        dest="gpus",
        default=None,
        help="restrict to specific GPUs (default: all four; repeatable)",
    )
    p_governor.add_argument(
        "--online",
        action="store_true",
        help="force online mode (the default when --config has no "
        "governor table)",
    )
    p_governor.add_argument(
        "--forgetting",
        type=float,
        default=None,
        metavar="LAMBDA",
        help="exponential forgetting factor in (0, 1]; 1.0 (default) "
        "converges to the batch fit",
    )
    p_governor.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the regret table as a repro.governor-regret JSON "
        "document",
    )
    p_governor.add_argument("--seed", type=int, default=None)
    _add_execution_flags(p_governor)
    p_governor.set_defaults(func=_cmd_governor)

    p_fleet = sub.add_parser(
        "fleet",
        help="place a power-capped job stream across a synthesized GPU fleet",
    )
    p_fleet.add_argument(
        "directory",
        help="fleet campaign directory (run journal, fleet.json report)",
    )
    p_fleet.add_argument(
        "--devices",
        type=int,
        default=None,
        metavar="N",
        help="inventory size (default: 1000)",
    )
    p_fleet.add_argument(
        "--jobs-total",
        type=int,
        default=None,
        dest="jobs_total",
        metavar="N",
        help="job-stream size (default: 100000)",
    )
    p_fleet.add_argument(
        "--power-cap-w",
        type=float,
        default=None,
        dest="power_cap_w",
        metavar="W",
        help="explicit facility power cap (default: --cap-fraction of "
        "the fleet's summed TDP)",
    )
    p_fleet.add_argument(
        "--cap-fraction",
        type=float,
        default=None,
        dest="cap_fraction",
        metavar="F",
        help="power cap as a fraction of summed TDP (default: 0.6)",
    )
    p_fleet.add_argument(
        "--template",
        action="append",
        dest="templates",
        default=None,
        help="architecture template card the inventory cycles through "
        "(repeatable; default: the paper's four)",
    )
    p_fleet.add_argument(
        "--shard-devices",
        type=int,
        default=None,
        dest="shard_devices",
        metavar="K",
        help="devices per work-unit shard (default: 64)",
    )
    p_fleet.add_argument(
        "--jitter-pct",
        type=float,
        default=None,
        dest="jitter_pct",
        metavar="P",
        help="synthesis parameter spread in [0, 0.5) (default: 0.05)",
    )
    p_fleet.add_argument(
        "--resume",
        action="store_true",
        help="replay the run journal of an interrupted fleet campaign",
    )
    p_fleet.add_argument("--seed", type=int, default=None)
    _add_execution_flags(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_trace = sub.add_parser(
        "trace", help="inspect telemetry artifacts of traced runs"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize",
        help="per-phase/per-unit breakdown of a JSONL event log",
    )
    p_summarize.add_argument(
        "events",
        help="path to an events.jsonl / events.ndjson / flight.json log",
    )
    p_summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the same aggregates as a machine-readable JSON document",
    )
    p_summarize.add_argument(
        "--follow",
        action="store_true",
        help="tail a live event stream, rendering progress frames until "
        "it finishes, then print the summary",
    )
    p_summarize.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="refresh period while following (default: 0.5)",
    )
    p_summarize.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        dest="max_seconds",
        metavar="SECONDS",
        help="give up following after this long (default: wait forever)",
    )
    p_summarize.set_defaults(func=_cmd_trace_summarize)

    p_export = trace_sub.add_parser(
        "export",
        help="convert an event log into a Perfetto/Chrome trace.json",
    )
    p_export.add_argument(
        "events",
        help="path to an events.jsonl / events.ndjson / flight.json log",
    )
    p_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: trace.json next to the event log)",
    )
    p_export.add_argument(
        "--format",
        choices=("perfetto", "chrome"),
        default="perfetto",
        help="output flavour; both emit the Chrome trace-event JSON "
        "object format that ui.perfetto.dev and chrome://tracing load",
    )
    p_export.set_defaults(func=_cmd_trace_export)

    p_top = sub.add_parser(
        "top",
        help="live progress/ETA view of a running (or finished) campaign",
    )
    p_top.add_argument(
        "run_dir",
        help="campaign directory (reads events.ndjson, falling back to "
        "events.jsonl) or a direct path to an event log",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit instead of following",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="refresh period (default: 0.5)",
    )
    p_top.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        dest="max_seconds",
        metavar="SECONDS",
        help="give up after this long with the stream still open",
    )
    p_top.set_defaults(func=_cmd_top)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the library's own hot paths (see docs/BENCHMARKS.md)",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_run = bench_sub.add_parser(
        "run",
        help="run the registered workloads and write BENCH_*.json",
    )
    p_bench_run.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="directory the BENCH_*.json artifacts land in (default: .)",
    )
    p_bench_run.add_argument(
        "--quick",
        action="store_true",
        help="reduced repeats/warmup for CI smoke runs",
    )
    p_bench_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="noise seed the workload fingerprints are deterministic under",
    )
    p_bench_run.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="override every workload's repeat count",
    )
    p_bench_run.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named workload (repeatable)",
    )
    p_bench_run.set_defaults(func=_cmd_bench_run)
    p_bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json files; non-zero exit on regression",
    )
    p_bench_compare.add_argument("old", help="baseline BENCH_*.json")
    p_bench_compare.add_argument("new", help="fresh BENCH_*.json")
    p_bench_compare.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="median-regression threshold in percent (default: 25)",
    )
    p_bench_compare.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="also fail when a baseline workload is missing from NEW",
    )
    p_bench_compare.add_argument(
        "--fail-on-drift",
        action="store_true",
        help=(
            "also fail on fingerprint drift (the work signature is "
            "host-independent, so drift is a real behavior change)"
        ),
    )
    p_bench_compare.add_argument(
        "--report-only",
        action="store_true",
        help="print the delta table but always exit 0 (CI smoke mode)",
    )
    p_bench_compare.set_defaults(func=_cmd_bench_compare)
    p_bench_list = bench_sub.add_parser(
        "list", help="list the registered workloads"
    )
    p_bench_list.set_defaults(func=_cmd_bench_list)

    p_report = sub.add_parser(
        "report", help="render all experiments into a directory"
    )
    p_report.add_argument("directory", help="output directory")
    p_report.add_argument(
        "--no-extensions",
        action="store_true",
        help="render only the 19 paper artifacts",
    )
    p_report.add_argument("--seed", type=int, default=None)
    p_report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
