"""repro — reproduction of *Power and Performance Characterization and
Modeling of GPU-Accelerated Systems* (Abe, Sasaki, Kato, Inoue, Edahiro,
Peres; 2014).

The package is organised in layers, bottom to top:

``repro.arch``
    GPU architecture substrate: the four GeForce cards of the paper
    (GTX 285 / 460 / 480 / 680), their DVFS operating points (Table I and
    Table III), per-generation voltage/frequency curves, and a synthetic
    VBIOS image format through which clocks are actually programmed —
    mirroring the Gdev-style BIOS-patching method the paper uses.

``repro.kernels``
    Workload substrate: synthetic specifications of all 37 benchmarks of
    Table II (Rodinia, Parboil, CUDA SDK, matrix kernels) with
    per-benchmark instruction mixes, memory intensity, locality,
    divergence and input-size scaling.

``repro.engine``
    The simulated hardware: an analytical timing model, a physical power
    model (static + core-dynamic + memory-dynamic domains), per-
    architecture performance-counter sets (32 / 74 / 108 counters) and a
    ``GPUSimulator`` that boots from a VBIOS image.

``repro.instruments``
    Measurement equipment: a WT1600-like sampling wattmeter, a CUDA-
    profiler-like counter collector (including its per-benchmark
    failures), a host-system model and the ``Testbed`` measurement
    protocol (repeat-to-500 ms rule, energy integration).

``repro.core``
    The paper's contribution: unified statistical power (Eq. 1) and
    performance (Eq. 2) models built by multiple linear regression with
    forward selection on adjusted R², over a 114-sample dataset.

``repro.characterize`` / ``repro.optimize`` / ``repro.baselines``
    Section III characterization sweeps, a model-driven DVFS governor
    (the paper's motivating application), and related-work comparators.

``repro.execution``
    Parallel campaign execution engine: (GPU, benchmark, pair/size)
    work units, serial and process-pool executors with bounded retry,
    and a content-addressed on-disk result cache for work-unit-level
    resumption.

``repro.faults``
    Seeded, deterministic fault injection (profiler failures, meter
    sample corruption, reconfiguration failures, crashes) and the
    graceful-degradation accounting campaigns run under.

``repro.experiments``
    One module per paper table/figure; see ``python -m repro list``.
"""

from repro._version import __version__
from repro.arch import (
    Architecture,
    GPUSpec,
    OperatingPoint,
    all_gpus,
    get_gpu,
)
from repro.kernels import KernelSpec, all_benchmarks, get_benchmark
from repro.instruments import Testbed
from repro.core import (
    ModelingDataset,
    PowerPerformancePredictor,
    UnifiedPerformanceModel,
    UnifiedPowerModel,
    build_dataset,
)
from repro.characterize import FrequencySweep, best_operating_point
from repro.execution import ExecutionConfig, ExecutionStats, run_units
from repro.faults import FaultPlan, aggressive_plan, default_plan

__all__ = [
    "__version__",
    "Architecture",
    "GPUSpec",
    "OperatingPoint",
    "all_gpus",
    "get_gpu",
    "KernelSpec",
    "all_benchmarks",
    "get_benchmark",
    "Testbed",
    "ModelingDataset",
    "build_dataset",
    "UnifiedPowerModel",
    "UnifiedPerformanceModel",
    "PowerPerformancePredictor",
    "FrequencySweep",
    "best_operating_point",
    "ExecutionConfig",
    "ExecutionStats",
    "run_units",
    "FaultPlan",
    "aggressive_plan",
    "default_plan",
]
