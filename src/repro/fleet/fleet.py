"""Fleet inventory: synthesized devices plus a fleet-level power cap.

A :class:`Fleet` is pure data — which devices exist and how much power
the facility may draw — synthesized deterministically from
``(templates, count, seed, jitter_pct)`` via the device registry.  The
same tuple always produces the same inventory (same device ids, same
jittered parameters), at any ``--jobs`` level and across processes,
which is what makes fleet campaign artifacts byte-comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.arch import registry
from repro.arch.specs import GPU_NAMES, GPUSpec

#: Default fraction of the fleet's summed TDP allowed as the power cap.
DEFAULT_CAP_FRACTION = 0.6


@dataclass(frozen=True)
class FleetDevice:
    """One synthesized device of the inventory."""

    index: int
    device_id: str
    template: str
    spec: GPUSpec


@dataclass(frozen=True)
class Fleet:
    """A device inventory under one facility power cap."""

    devices: tuple[FleetDevice, ...]
    power_cap_w: float
    seed: int | None
    jitter_pct: float

    @classmethod
    def build(
        cls,
        templates: Sequence[str] = GPU_NAMES,
        count: int = 1000,
        power_cap_w: float | None = None,
        cap_fraction: float = DEFAULT_CAP_FRACTION,
        seed: int | None = None,
        jitter_pct: float = registry.DEFAULT_JITTER_PCT,
    ) -> "Fleet":
        """Synthesize an inventory and derive its power cap.

        The default cap is ``cap_fraction`` of the fleet's summed TDP —
        the spec-sheet quantity a facility planner would actually use —
        so under-provisioning forces the placement policies to choose
        which devices to power on.
        """
        specs = registry.synthesize_inventory(
            templates, count, seed=seed, jitter_pct=jitter_pct
        )
        devices = tuple(
            FleetDevice(
                index=i,
                device_id=registry.device_id(spec),
                template=registry.template(
                    templates[i % len(templates)]
                ).name,
                spec=spec,
            )
            for i, spec in enumerate(specs)
        )
        if power_cap_w is None:
            if not 0.0 < cap_fraction <= 1.0:
                raise ValueError(
                    f"cap_fraction must be in (0, 1], got {cap_fraction}"
                )
            power_cap_w = cap_fraction * sum(d.spec.tdp_w for d in devices)
        if power_cap_w <= 0.0:
            raise ValueError(f"power_cap_w must be > 0, got {power_cap_w}")
        return cls(
            devices=devices,
            power_cap_w=float(power_cap_w),
            seed=seed,
            jitter_pct=jitter_pct,
        )

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def templates(self) -> tuple[str, ...]:
        """Distinct template names, in first-appearance order."""
        seen: list[str] = []
        for d in self.devices:
            if d.template not in seen:
                seen.append(d.template)
        return tuple(seen)

    def inventory_fingerprint(self) -> str:
        """Content hash over the ordered device ids.

        Two runs that synthesized the same fleet agree on this string;
        the determinism tests and the smoke script compare it.
        """
        text = "\n".join(d.device_id for d in self.devices)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able summary (report header, manifests)."""
        return {
            "devices": len(self.devices),
            "templates": list(self.templates),
            "power_cap_w": round(self.power_cap_w, 3),
            "seed": self.seed,
            "jitter_pct": self.jitter_pct,
            "inventory": self.inventory_fingerprint(),
        }
