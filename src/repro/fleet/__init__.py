"""Fleet substrate: heterogeneous device inventories under a power cap.

Scales the scenario axis from the paper's four cards to a simulated
datacenter: :class:`Fleet` holds a deterministic synthesized device
inventory (see :mod:`repro.arch.registry`) and a fleet-level power cap,
:mod:`repro.fleet.units` evaluates per-device power/perf tables through
the columnar batch engine, and :mod:`repro.fleet.placement` assigns a
job stream across devices under the cap using each device's Eq. 1 /
Eq. 2 model handle — scored against naive round-robin and an oracle,
in the style of lumos heterogeneous power budgeting.
"""

from repro.fleet.fleet import Fleet, FleetDevice
from repro.fleet.units import FleetShardUnit, fleet_shard_units
from repro.fleet.placement import PolicyOutcome, largest_remainder
from repro.fleet.campaign import (
    FLEET_REPORT_FORMAT,
    FLEET_REPORT_VERSION,
    fleet_report,
    run_fleet_campaign,
)

__all__ = [
    "FLEET_REPORT_FORMAT",
    "FLEET_REPORT_VERSION",
    "Fleet",
    "FleetDevice",
    "FleetShardUnit",
    "PolicyOutcome",
    "fleet_report",
    "fleet_shard_units",
    "largest_remainder",
    "run_fleet_campaign",
]
