"""Per-device model handles: template predictions scaled by nominal physics.

Training an Eq. 1 / Eq. 2 model pair per device would cost a full
114-sample campaign per device — 10^3 devices would dwarf the placement
study.  Fleets instead get *derived* model handles:

* the four template models are trained once (memoized per process via
  :mod:`repro.experiments.context`) on the canonical cards, and
* each device's prediction is the template's prediction scaled by the
  ratio of *nominal* quantities — the deterministic physics of the
  device's spec sheet (clocks, voltages, power coefficients) with every
  noise stream removed.

A device's nominal tables are legitimately knowable without measuring
it; the device-specific noise fixed-effects are not, remain invisible
to the model handle, and are exactly what separates model-driven
placement from the oracle.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import simulate_cache
from repro.engine.power import idle_gpu_power, simulate_power
from repro.engine.thermal import solve_thermal
from repro.engine.timing import simulate_timing
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import get_benchmark

#: Expected value of the scalar path's driver-overhead draw
#: (``U(0.25, 2.75)`` times the trait constant) — the nominal tables
#: are noise-free, so the overhead enters at its mean.
_MEAN_OVERHEAD_FACTOR = 1.5


def nominal_cell(
    spec: GPUSpec, kernel: KernelSpec, scale: float, op: OperatingPoint
) -> tuple[float, float]:
    """Noise-free ``(seconds, energy_j)`` of one (device, class, pair) cell.

    Runs the same physics pipeline as the simulator — cache model,
    timing, power decomposition, thermal solve — with every stochastic
    factor removed.  Deterministic in the spec alone, so workers and the
    parent agree bit-for-bit.
    """
    work = kernel.work(scale)
    cache = simulate_cache(work, spec)
    timing = simulate_timing(work, cache, spec, op)
    power = simulate_power(cache, timing, spec, op)
    dynamic = (
        power.core_dynamic_w + power.mem_background_w + power.dram_access_w
    )
    thermal = solve_thermal(
        spec, dynamic_w=dynamic, static_w=power.static_w, ambient_c=25.0
    )
    overhead_s = spec.traits.driver_overhead_s * _MEAN_OVERHEAD_FACTOR
    busy_s = timing.t_kernel + timing.t_launch
    idle_s = timing.t_transfer + timing.t_host + overhead_s
    energy_j = thermal.power_w * busy_s + idle_gpu_power(spec, op) * idle_s
    return (busy_s + idle_s, energy_j)


def nominal_table(
    spec: GPUSpec, workloads: Sequence[str], scale: float
) -> dict[str, Any]:
    """Nominal ``seconds``/``energy_j`` grids of one device.

    Rows follow ``workloads`` order, columns the device's Table III
    (highest-first) pair order — the axis convention every fleet table
    shares.
    """
    ops = spec.operating_points()
    seconds: list[list[float]] = []
    energy: list[list[float]] = []
    for name in workloads:
        kernel = get_benchmark(name)
        row = [nominal_cell(spec, kernel, scale, op) for op in ops]
        seconds.append([float(s) for s, _ in row])
        energy.append([float(e) for _, e in row])
    return {
        "pairs": [op.key for op in ops],
        "seconds": seconds,
        "energy_j": energy,
    }


def template_prediction_table(
    templates: Sequence[str],
    workloads: Sequence[str],
    scale: float,
    seed: int | None = None,
) -> dict[str, dict[str, Any]]:
    """Per-template Eq. 1 / Eq. 2 predictions at every configurable pair.

    Trains (or reuses, via the experiment suite's memo) each template's
    unified models on its 114-sample dataset and tabulates predicted
    seconds/power/energy per (workload, pair), plus the template's own
    nominal table — the denominator of the device scaling ratio.
    """
    # Imported here: experiments.context pulls the whole modeling stack,
    # which worker-side fleet units never need.
    from repro.experiments import context as expctx
    from repro.optimize.governor import ModelGovernor

    table: dict[str, dict[str, Any]] = {}
    for name in templates:
        dataset = expctx.dataset(name, seed)
        governor = ModelGovernor(
            expctx.power_model(name, seed),
            expctx.performance_model(name, seed),
        )
        spec = dataset.gpu
        nominal = nominal_table(spec, workloads, scale)
        classes: dict[str, Any] = {}
        for workload in workloads:
            ops, seconds, power = governor.predict_pairs(
                dataset, workload, scale
            )
            energy = seconds * power
            classes[workload] = {
                "seconds": [float(s) for s in seconds],
                "power_w": [float(p) for p in power],
                "energy_j": [float(e) for e in energy],
            }
        table[spec.name] = {
            "pairs": nominal["pairs"],
            "classes": classes,
            "nominal": nominal,
        }
    return table
