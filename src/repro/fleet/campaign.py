"""Fleet campaign orchestration: shards -> tables -> placement -> report.

One fleet campaign is a short deterministic pipeline:

1. decompose the inventory into :class:`~repro.fleet.units.FleetShardUnit`
   work units and run them through the execution engine (cache, pool,
   write-ahead journal — the shard batch survives SIGTERM and replays
   under ``--resume`` exactly like a measurement campaign);
2. train the per-template Eq. 1 / Eq. 2 models once and assemble each
   device's predicted tables by nominal-ratio scaling
   (:mod:`repro.fleet.model`);
3. draw the job stream's class mix from its own keyed RNG stream and
   place it under the facility power cap with all three policies
   (:mod:`repro.fleet.placement`);
4. publish ``fleet.json`` atomically — the report carries only science
   (inventory, stream, placements, headline percentages), never
   execution mechanics, so serial, pooled and resumed runs of one fleet
   are byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Mapping, Sequence

import numpy as np

from repro import rng
from repro.errors import ReproError
from repro.execution.cache import atomic_write_text
from repro.execution.engine import run_units
from repro.execution.journal import RunJournal
from repro.fleet.fleet import Fleet
from repro.fleet.model import template_prediction_table
from repro.fleet.placement import (
    DeviceTable,
    PolicyOutcome,
    largest_remainder,
    place_all,
)
from repro.fleet.units import fleet_shard_units

FLEET_REPORT_FORMAT = "repro.fleet-report"
FLEET_REPORT_VERSION = 1

#: Report artifact a fleet campaign publishes into its directory.
FLEET_REPORT_NAME = "fleet.json"

#: Write-ahead journal (same name as measurement campaigns, so resume
#: tooling and tests treat both directories uniformly).
JOURNAL_NAME = "journal.jsonl"


def job_mix(
    workloads: Sequence[str], jobs_total: int, seed: int | None = None
) -> np.ndarray:
    """Integer job count per workload class of the stream.

    Class weights draw from a keyed stream — deterministic in
    ``(workloads, jobs_total, seed)`` — and round by largest remainder,
    so every run of one fleet spec places the identical job stream.
    """
    generator = rng.stream(
        "fleet-jobmix", tuple(workloads), jobs_total, seed=seed
    )
    weights = generator.uniform(0.5, 1.5, size=len(workloads))
    quotas = jobs_total * weights / weights.sum()
    return largest_remainder(quotas, jobs_total)


def assemble_tables(
    payloads: Sequence[Mapping[str, Any]],
    template_table: Mapping[str, Mapping[str, Any]],
    workloads: Sequence[str],
) -> list[DeviceTable]:
    """Join shard payloads with template predictions into device tables.

    A device's predicted cell is the template model's prediction scaled
    by the nominal ratio ``nominal(device) / nominal(template)`` — the
    spec-sheet physics a planner can know without measuring the device.
    The device-specific noise effects baked into the true tables stay
    invisible here; they are the model/oracle gap.
    """
    tables: list[DeviceTable] = []
    for payload in payloads:
        for device in payload["devices"]:
            template = template_table[device["template"]]
            pairs = tuple(device["pairs"])
            if pairs != tuple(template["pairs"]):
                raise ReproError(
                    f"device {device['device_id']} pair axis {pairs} does "
                    f"not match template {device['template']!r} axis "
                    f"{tuple(template['pairs'])}"
                )
            pred_seconds = np.array(
                [template["classes"][w]["seconds"] for w in workloads]
            )
            pred_power = np.array(
                [template["classes"][w]["power_w"] for w in workloads]
            )
            nominal = template["nominal"]
            ratio_seconds = np.array(device["nominal_seconds"]) / np.array(
                nominal["seconds"]
            )
            ratio_energy = np.array(device["nominal_energy_j"]) / np.array(
                nominal["energy_j"]
            )
            tables.append(
                DeviceTable(
                    index=int(device["index"]),
                    device_id=device["device_id"],
                    template=device["template"],
                    name=device["name"],
                    reconfigure_seconds=float(device["reconfigure_seconds"]),
                    reconfigure_power_w=float(device["reconfigure_power_w"]),
                    pairs=pairs,
                    idle_power_w=np.array(device["idle_power_w"]),
                    true_energy_j=np.array(device["true_energy_j"]),
                    true_seconds=np.array(device["true_seconds"]),
                    pred_energy_j=(pred_seconds * pred_power) * ratio_energy,
                    pred_seconds=pred_seconds * ratio_seconds,
                )
            )
    tables.sort(key=lambda t: t.index)
    return tables


def fleet_report(
    fleet: Fleet,
    workloads: Sequence[str],
    scale: float,
    jobs_per_class: np.ndarray,
    outcomes: Mapping[str, PolicyOutcome],
) -> dict[str, Any]:
    """Canonical fleet-campaign report document.

    Shared by the campaign runner, the CLI, the ``ext_fleet``
    experiment and the smoke script, so every consumer agrees on the
    schema and the headline definitions: energy saved is the model
    policy's fleet-energy reduction over naive, regret its excess over
    the oracle.
    """
    naive = outcomes["naive"].fleet_energy_j
    model = outcomes["model"].fleet_energy_j
    oracle = outcomes["oracle"].fleet_energy_j
    return {
        "format": FLEET_REPORT_FORMAT,
        "version": FLEET_REPORT_VERSION,
        "fleet": fleet.document(),
        "jobs": {
            "total": int(jobs_per_class.sum()),
            "scale": scale,
            "classes": {
                workload: int(count)
                for workload, count in zip(workloads, jobs_per_class)
            },
        },
        "policies": {
            name: outcomes[name].document() for name in sorted(outcomes)
        },
        "energy_saved_pct": round(100.0 * (naive - model) / naive, 3),
        "regret_pct": round(100.0 * (model - oracle) / oracle, 3),
    }


def run_fleet_campaign(
    fleet_spec,
    ctx,
    directory: str | pathlib.Path,
    resume: bool = False,
) -> dict[str, Any]:
    """Run one fleet campaign end to end and publish ``fleet.json``.

    ``fleet_spec`` is a :class:`~repro.session.spec.FleetSpec` (or an
    inline table resolved into one); ``ctx`` a
    :class:`~repro.session.RunContext` supplying seed and execution
    mechanics.  The shard batch is journaled write-ahead into the
    campaign directory: a killed run resumes with ``resume=True`` and
    produces a byte-identical report.
    """
    from repro.session.spec import _resolve_fleet

    fleet_spec = _resolve_fleet(fleet_spec)
    if fleet_spec is None:
        raise ReproError("fleet campaign requires a fleet spec")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    bus = getattr(ctx.telemetry, "bus", None) if ctx.telemetry else None
    journal = RunJournal(
        directory / JOURNAL_NAME,
        resume=resume,
        observer=bus.journal_observer() if bus is not None else None,
    )
    try:
        run_ctx = dataclasses.replace(
            ctx,
            execution=dataclasses.replace(ctx.execution, journal=journal),
        )
        units = fleet_shard_units(fleet_spec, seed=ctx.seed)
        if bus is not None:
            bus.phase_start("fleet:shards", units=len(units))
        result = run_units(units, run_ctx)
    finally:
        journal.close()
    missing = [
        str(unit)
        for unit, payload in zip(units, result.payloads)
        if payload is None
    ]
    if missing:
        raise ReproError(
            f"fleet campaign lost {len(missing)} shard(s): "
            f"{', '.join(missing)}"
        )

    fleet = Fleet.build(
        templates=fleet_spec.templates,
        count=fleet_spec.devices,
        power_cap_w=fleet_spec.power_cap_w,
        cap_fraction=fleet_spec.cap_fraction,
        seed=ctx.seed,
        jitter_pct=fleet_spec.jitter_pct,
    )
    template_table = template_prediction_table(
        fleet.templates, fleet_spec.workloads, fleet_spec.scale, seed=ctx.seed
    )
    tables = assemble_tables(
        result.payloads, template_table, fleet_spec.workloads
    )
    jobs_per_class = job_mix(
        fleet_spec.workloads, fleet_spec.jobs_total, seed=ctx.seed
    )
    outcomes = place_all(tables, jobs_per_class, fleet.power_cap_w)
    document = fleet_report(
        fleet,
        fleet_spec.workloads,
        fleet_spec.scale,
        jobs_per_class,
        outcomes,
    )
    atomic_write_text(
        directory / FLEET_REPORT_NAME,
        json.dumps(document, indent=2, sort_keys=True) + "\n",
    )
    return document
