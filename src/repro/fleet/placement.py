"""Capped-fleet job placement: naive, model-driven and oracle policies.

Extends the single-card scheduling question of
:mod:`repro.optimize.scheduler` — "which pair should this job run at,
given switch costs" — to the fleet: which devices to power on under the
facility cap, which pair each device should run each workload class at,
and how many jobs of each class each device gets.  Three policies share
the accounting:

* ``naive`` — round-robin: devices in inventory order at the (H-H)
  default, jobs dealt evenly; what a model-free facility does.
* ``model`` — each device's derived Eq. 1 / Eq. 2 handle picks the
  per-class pair, ranks devices by predicted energy per job, activates
  the best under the cap, and load-balances by predicted speed.
* ``oracle`` — perfect information: the same algorithm driven by the
  true tables, and the energy-minimal candidate placement overall, so
  the gap to ``model`` (the regret the models pay) is never negative.

Admission under the cap always uses *true* power draw whatever the
policy believes — the facility cap is enforced by measurement, not by
the policy's predictions; policies control priority order, pair choice
and job spread.

Every policy is *scored* against the true tables; the lumos-style
headline is the fleet energy saved by ``model`` over ``naive`` and its
regret relative to ``oracle``.  All arithmetic is plain float64 numpy in
deterministic order — placements are byte-stable at any ``--jobs``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

POLICIES = ("naive", "model", "oracle")

#: Pair every device boots at (and the naive policy never leaves).
DEFAULT_PAIR = "H-H"


def largest_remainder(quotas: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` integer jobs to fractional ``quotas``.

    Deterministic largest-remainder rounding: floors first, then deals
    the shortfall to the largest fractional parts, ties broken by index
    — no float-order ambiguity, so placements replay exactly.
    """
    quotas = np.asarray(quotas, dtype=float)
    if quotas.size == 0:
        raise ValueError("cannot apportion over an empty quota vector")
    base = np.floor(quotas).astype(np.int64)
    short = int(total - base.sum())
    if short > 0:
        frac = quotas - base
        order = np.lexsort((np.arange(quotas.size), -frac))
        base[order[:short]] += 1
    return base


@dataclass(frozen=True)
class DeviceTable:
    """Assembled per-device tables, axes ``(class, pair)``."""

    index: int
    device_id: str
    template: str
    name: str
    reconfigure_seconds: float
    reconfigure_power_w: float
    pairs: tuple[str, ...]
    idle_power_w: np.ndarray  # (P,)
    true_energy_j: np.ndarray  # (C, P)
    true_seconds: np.ndarray  # (C, P)
    pred_energy_j: np.ndarray  # (C, P)
    pred_seconds: np.ndarray  # (C, P)

    @property
    def default_col(self) -> int:
        return self.pairs.index(DEFAULT_PAIR)


@dataclass(frozen=True)
class PolicyOutcome:
    """Fleet-level accounting of one policy, scored on true tables."""

    policy: str
    active_devices: int
    fleet_energy_j: float
    busy_energy_j: float
    switch_energy_j: float
    idle_energy_j: float
    makespan_s: float
    reconfigurations: int
    #: Peak concurrent draw the activation admitted (per-device worst
    #: class at its chosen pair, summed) — always <= the cap.
    admitted_power_w: float

    def document(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "active_devices": self.active_devices,
            "fleet_energy_j": round(self.fleet_energy_j, 3),
            "busy_energy_j": round(self.busy_energy_j, 3),
            "switch_energy_j": round(self.switch_energy_j, 3),
            "idle_energy_j": round(self.idle_energy_j, 3),
            "makespan_s": round(self.makespan_s, 3),
            "reconfigurations": self.reconfigurations,
            "admitted_power_w": round(self.admitted_power_w, 3),
        }


def _score(
    tables: Sequence[DeviceTable],
    active: Sequence[int],
    chosen: np.ndarray,
    assignment: np.ndarray,
    policy: str,
    admitted_power_w: float,
) -> PolicyOutcome:
    """True-table accounting of one placement.

    ``chosen[a, c]`` is the pair column device ``active[a]`` runs class
    ``c`` at; ``assignment[a, c]`` its job count.  Devices process their
    classes in canonical class order, jobs of a class back to back, and
    reconfigure (at their own per-card cost) whenever consecutive
    classes need different pairs — starting from the (H-H) boot pair.
    """
    busy_energy = 0.0
    switch_energy = 0.0
    reconfigurations = 0
    finish = np.zeros(len(active))
    last_col = np.empty(len(active), dtype=np.int64)
    for a, d in enumerate(active):
        table = tables[d]
        cols = chosen[a]
        jobs = assignment[a]
        run = jobs > 0
        busy_energy += float(
            np.sum(jobs[run] * table.true_energy_j[run, cols[run]])
        )
        busy_s = float(np.sum(jobs[run] * table.true_seconds[run, cols[run]]))
        sequence = [table.default_col, *cols[run]]
        switches = sum(
            1 for prev, cur in zip(sequence, sequence[1:]) if cur != prev
        )
        reconfigurations += switches
        switch_energy += switches * (
            table.reconfigure_seconds * table.reconfigure_power_w
        )
        finish[a] = busy_s + switches * table.reconfigure_seconds
        last_col[a] = sequence[-1]
    makespan = float(np.max(finish)) if len(active) else 0.0
    idle_energy = float(
        sum(
            tables[d].idle_power_w[last_col[a]] * (makespan - finish[a])
            for a, d in enumerate(active)
        )
    )
    total = busy_energy + switch_energy + idle_energy
    return PolicyOutcome(
        policy=policy,
        active_devices=len(active),
        fleet_energy_j=total,
        busy_energy_j=busy_energy,
        switch_energy_j=switch_energy,
        idle_energy_j=idle_energy,
        makespan_s=makespan,
        reconfigurations=reconfigurations,
        admitted_power_w=admitted_power_w,
    )


def _switch_count(table: DeviceTable, cols: np.ndarray) -> int:
    """Reconfigurations a device pays running every class at ``cols``."""
    sequence = [table.default_col, *cols]
    return sum(1 for prev, cur in zip(sequence, sequence[1:]) if cur != prev)


def _activate(
    order: Sequence[int], draw_w: np.ndarray, power_cap_w: float
) -> tuple[list[int], float]:
    """Greedy admission under the cap, in the given priority order.

    At least one device is always admitted — a cap below even the
    single best device means the job stream runs there sequentially
    (the cap bounds concurrency, not existence).
    """
    active: list[int] = []
    admitted = 0.0
    for d in order:
        if active and admitted + draw_w[d] > power_cap_w:
            continue
        active.append(d)
        admitted += float(draw_w[d])
    return sorted(active), admitted


def _naive_placement(
    tables: Sequence[DeviceTable],
    jobs_per_class: np.ndarray,
    power_cap_w: float,
) -> tuple[list[int], np.ndarray, np.ndarray, float]:
    """The baseline placement: inventory order, default clocks, even split."""
    n = len(tables)
    draw = np.array(
        [
            float(
                np.max(
                    t.true_energy_j[:, t.default_col]
                    / t.true_seconds[:, t.default_col]
                )
            )
            for t in tables
        ]
    )
    active, admitted = _activate(range(n), draw, power_cap_w)
    chosen = np.array(
        [[tables[d].default_col] * len(jobs_per_class) for d in active],
        dtype=np.int64,
    )
    assignment = np.zeros((len(active), len(jobs_per_class)), dtype=np.int64)
    for c, total in enumerate(jobs_per_class):
        per, extra = divmod(int(total), len(active))
        assignment[:, c] = per
        assignment[:extra, c] += 1
    return active, chosen, assignment, admitted


def place_naive(
    tables: Sequence[DeviceTable],
    jobs_per_class: np.ndarray,
    power_cap_w: float,
) -> PolicyOutcome:
    """Round-robin at default clocks: the model-free baseline."""
    active, chosen, assignment, admitted = _naive_placement(
        tables, jobs_per_class, power_cap_w
    )
    return _score(tables, active, chosen, assignment, "naive", admitted)


def place_modeled(
    tables: Sequence[DeviceTable],
    jobs_per_class: np.ndarray,
    power_cap_w: float,
    basis: str,
) -> PolicyOutcome:
    """Model-driven (``basis="pred"``) or oracle (``basis="true"``) placement."""
    if basis not in ("pred", "true"):
        raise ValueError(f"basis must be 'pred' or 'true', got {basis!r}")
    n = len(tables)
    n_classes = len(jobs_per_class)
    weights = jobs_per_class / max(1, jobs_per_class.sum())
    chosen_all = np.empty((n, n_classes), dtype=np.int64)
    cell_energy = np.empty((n, n_classes))
    cell_seconds = np.empty((n, n_classes))
    default_seconds = np.empty((n, n_classes))
    draw = np.empty(n)
    for d, t in enumerate(tables):
        energy = t.pred_energy_j if basis == "pred" else t.true_energy_j
        seconds = t.pred_seconds if basis == "pred" else t.true_seconds
        cols = np.argmin(energy, axis=1)
        rows = np.arange(n_classes)
        chosen_all[d] = cols
        cell_energy[d] = energy[rows, cols]
        cell_seconds[d] = seconds[rows, cols]
        default_seconds[d] = seconds[:, t.default_col]
        # Admission sees the device's *true* draw at the chosen pairs —
        # the cap is enforced by facility measurement, not by belief.
        draw[d] = float(
            np.max(
                t.true_energy_j[rows, cols] / t.true_seconds[rows, cols]
            )
        )
    # Rank devices by believed energy per job under the stream's class
    # mix; ties (identical believed cost) break by inventory index.
    score = cell_energy @ weights
    order = np.lexsort((np.arange(n), score))
    prefix: list[int] = []
    used = 0.0
    for d in order:
        if prefix and used + draw[d] > power_cap_w:
            continue
        prefix.append(int(d))
        used += float(draw[d])
    # How many of the ranked admissible devices to actually power on:
    # fewer devices concentrate jobs on believed-better cells (lower
    # energy) but stretch the makespan.  The throughput contract is that
    # an energy policy may not believe it finishes later than the naive
    # baseline would — minimize believed busy+switch energy over every
    # prefix length whose believed makespan meets that deadline.  With a
    # proportional-to-speed spread, K devices finish simultaneously at
    # sum_c jobs_c / capacity_c(K), and their believed busy energy is
    # sum_c jobs_c * (sum_d rate * E)_c(K) / capacity_c(K).
    jobs_f = jobs_per_class.astype(float)
    naive_active, _, naive_jobs, _ = _naive_placement(
        tables, jobs_per_class, power_cap_w
    )
    deadline = max(
        float(naive_jobs[a] @ default_seconds[d])
        for a, d in enumerate(naive_active)
    )
    rate = 1.0 / cell_seconds[prefix]  # (K_max, C)
    capacity = np.cumsum(rate, axis=0)
    switch_s = np.array(
        [
            _switch_count(tables[d], chosen_all[d])
            * tables[d].reconfigure_seconds
            for d in prefix
        ]
    )
    makespan_est = (jobs_f / capacity).sum(axis=1) + np.maximum.accumulate(
        switch_s
    )
    weighted = np.cumsum(rate * cell_energy[prefix], axis=0)
    busy_est = ((weighted / capacity) * jobs_f).sum(axis=1)
    switch_est = np.cumsum(
        switch_s * [tables[d].reconfigure_power_w for d in prefix]
    )
    objective = busy_est + switch_est
    feasible = makespan_est <= deadline
    if np.any(feasible):
        count = int(np.argmin(np.where(feasible, objective, np.inf))) + 1
    else:  # cannot meet the baseline: best effort with every admitted device
        count = len(prefix)
    active = sorted(prefix[:count])
    admitted = float(np.sum(draw[active]))
    chosen = chosen_all[active]
    # Per class, deal jobs proportional to believed speed so fast
    # devices absorb more of the stream (balances the makespan).
    assignment = np.zeros((len(active), n_classes), dtype=np.int64)
    for c, total in enumerate(jobs_per_class):
        rate = 1.0 / cell_seconds[active, c]
        quotas = int(total) * rate / rate.sum()
        assignment[:, c] = largest_remainder(quotas, int(total))
    policy = "model" if basis == "pred" else "oracle"
    return _score(tables, active, chosen, assignment, policy, admitted)


def place_all(
    tables: Sequence[DeviceTable],
    jobs_per_class: np.ndarray,
    power_cap_w: float,
) -> dict[str, PolicyOutcome]:
    """All three policies over one assembled fleet.

    The published oracle is the energy-minimal candidate placement
    under true-table scoring — with perfect information a planner can
    evaluate every candidate and keep the best, so model regret
    relative to the oracle is non-negative by construction.
    """
    naive = place_naive(tables, jobs_per_class, power_cap_w)
    model = place_modeled(tables, jobs_per_class, power_cap_w, "pred")
    oracle = place_modeled(tables, jobs_per_class, power_cap_w, "true")
    best = min(
        (naive, model, oracle), key=lambda outcome: outcome.fleet_energy_j
    )
    if best is not oracle:
        oracle = dataclasses.replace(best, policy="oracle")
    return {"naive": naive, "model": model, "oracle": oracle}
