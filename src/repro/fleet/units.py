"""Fleet shard work units: per-device tables through the batch engine.

A fleet campaign's measured substance is one power/perf table per
device — true energy, time and idle power for every (workload class,
frequency pair) cell, plus the noise-free nominal cells the model
handles scale by.  A :class:`FleetShardUnit` evaluates a contiguous
slice of the inventory (``shard_devices`` devices per unit), so a
1000-device fleet becomes a few dozen cacheable, journal-able,
pool-schedulable units rather than 10^5 tiny ones.

Shards synthesize their devices from ``(template, index, seed)``
coordinates — the unit carries no device specs, only the recipe — and
run every cell through a :class:`~repro.engine.batch.BatchSimulator`,
the columnar path that makes a 10^5-cell fleet campaign a seconds-scale
computation.  Shard payloads are deterministic in the unit spec alone:
byte-identical serial, pooled and resumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.arch import registry
from repro.engine.batch import BatchSimulator
from repro.execution.units import WorkUnit
from repro.fleet.model import nominal_table
from repro.kernels.suites import get_benchmark

if TYPE_CHECKING:  # session imports the engine; keep the cycle static-only
    from repro.session.spec import FleetSpec


@dataclass(frozen=True)
class FleetShardUnit(WorkUnit):
    """Tables for inventory slice ``[start, stop)`` of one fleet."""

    #: Template names the inventory cycles through (canonical spelling).
    templates: tuple[str, ...] = ()
    #: Half-open device-index range this shard evaluates.
    start: int = 0
    stop: int = 0
    #: Synthesis spread (see :mod:`repro.arch.registry`).
    jitter_pct: float = registry.DEFAULT_JITTER_PCT
    #: Workload classes of the job stream, at one input scale.
    workloads: tuple[str, ...] = ()
    scale: float = 0.25

    kind = "fleet-shard"

    def spec(self) -> dict[str, Any]:
        return {
            "templates": list(self.templates),
            "start": self.start,
            "stop": self.stop,
            "jitter_pct": self.jitter_pct,
            "workloads": list(self.workloads),
            "scale": self.scale,
        }

    def _device_specs(self):
        n = len(self.templates)
        for index in range(self.start, self.stop):
            yield index, registry.synthesize(
                self.templates[index % n],
                index // n,
                seed=self.seed,
                jitter_pct=self.jitter_pct,
            )

    def execute(self) -> dict[str, Any]:
        injector = self.injector()
        if injector is not None:
            injector.check_crash(
                self.kind, self.gpu.name, self.kernel.name, self.start
            )
        kernels = [get_benchmark(name) for name in self.workloads]
        devices = []
        for index, spec in self._device_specs():
            # One fresh simulator per device: each device is evaluated
            # exactly once, so the shared-simulator memo would only thrash.
            sim = BatchSimulator(spec, seed=self.seed)
            ops = spec.operating_points()
            cells = [
                (kernel, self.scale, op) for kernel in kernels for op in ops
            ]
            records = sim.run_grid(cells)
            true_energy: list[list[float]] = []
            true_seconds: list[list[float]] = []
            for k in range(len(kernels)):
                row = records[k * len(ops) : (k + 1) * len(ops)]
                true_energy.append([float(r.gpu_energy_j) for r in row])
                true_seconds.append([float(r.total_seconds) for r in row])
            idle_power = [
                float(records[i].gpu_idle_power_w) for i in range(len(ops))
            ]
            nominal = nominal_table(spec, self.workloads, self.scale)
            devices.append(
                {
                    "index": index,
                    "device_id": registry.device_id(spec),
                    "name": spec.name,
                    "template": self.templates[index % len(self.templates)],
                    "reconfigure_seconds": float(spec.reconfigure_seconds),
                    "reconfigure_power_w": float(spec.reconfigure_power_w),
                    "pairs": [op.key for op in ops],
                    "idle_power_w": idle_power,
                    "true_energy_j": true_energy,
                    "true_seconds": true_seconds,
                    "nominal_seconds": nominal["seconds"],
                    "nominal_energy_j": nominal["energy_j"],
                }
            )
        return {
            "kind": self.kind,
            "start": self.start,
            "stop": self.stop,
            "devices": devices,
        }

    def __str__(self) -> str:
        return f"fleet-shard([{self.start}:{self.stop}])"


def fleet_shard_units(
    fleet_spec: "FleetSpec", seed: int | None = None
) -> list[FleetShardUnit]:
    """Decompose a fleet campaign into device-range shards.

    The representative ``gpu``/``kernel`` carried by each unit (the
    first template card and first workload class) is what engine spans,
    breakers and journal entries label the shard with; the shard's own
    devices are synthesized at execution time.
    """
    from repro.arch.specs import get_gpu

    templates = tuple(
        get_gpu(name).name for name in fleet_spec.templates
    )
    gpu = get_gpu(templates[0])
    kernel = get_benchmark(fleet_spec.workloads[0])
    shard = fleet_spec.shard_devices
    return [
        FleetShardUnit(
            gpu=gpu,
            kernel=kernel,
            seed=seed,
            faults=None,
            templates=templates,
            start=start,
            stop=min(start + shard, fleet_spec.devices),
            jitter_pct=fleet_spec.jitter_pct,
            workloads=tuple(fleet_spec.workloads),
            scale=fleet_spec.scale,
        )
        for start in range(0, fleet_spec.devices, shard)
    ]
