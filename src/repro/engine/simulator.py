"""The simulated GPU: boots from a VBIOS image and executes kernels.

``GPUSimulator`` is the reproduction's stand-in for a physical card
sitting in the testbed.  It follows the paper's system-software path:
clocks can only be changed by flashing a patched VBIOS (there is no
runtime DVFS interface), and every run yields a :class:`RunRecord`
containing the ground truth that instruments may then observe —
noisily — through the power meter and the profiler.

Run-to-run variation is injected here, deterministically:

* *timing jitter*, a per-run multiplicative factor whose magnitude is a
  generation trait (older GPUs are noisier);
* *unmodeled power structure*, a per-(GPU, benchmark) fixed effect on the
  dynamic power that no performance counter explains — data-dependent
  toggling the paper's linear power model cannot capture, which is what
  keeps its R-squared at the realistic levels of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.bios import BiosImage, build_image, parse_image, patch_boot_levels
from repro.arch.dvfs import ClockLevel, OperatingPoint, coerce_levels
from repro.arch.specs import GPUSpec
from repro.engine.cache import CacheOutcome, simulate_cache
from repro.engine.counters import RunContext
from repro.engine.noise import lognormal_factor
from repro.engine.power import PowerBreakdown, idle_gpu_power, simulate_power
from repro.engine.thermal import solve_thermal
from repro.engine.timing import TimingBreakdown, simulate_timing
from repro.kernels.profile import KernelSpec, WorkProfile
from repro.rng import stream


def _cpi_cv(kernel: KernelSpec, traits) -> float:
    """Effective CPI-idiosyncrasy magnitude for one benchmark.

    Scales the generation's base ``unmodeled_cpi_cv`` down for large
    regular workloads and up for small irregular ones, capped at 0.9.
    """
    size_proxy = kernel.gflops_total + 2.0 * kernel.gbytes_total
    size_weight = min(2.5, max(0.3, (200.0 / size_proxy) ** 0.5))
    irregularity = 0.5 + kernel.divergence + (1.0 - kernel.coalescing)
    return min(0.9, traits.unmodeled_cpi_cv * size_weight * irregularity)


@dataclass(frozen=True)
class RunRecord:
    """Ground truth of one benchmark run on the simulated card."""

    gpu: GPUSpec
    kernel: KernelSpec
    scale: float
    op: OperatingPoint
    work: WorkProfile
    cache: CacheOutcome
    timing: TimingBreakdown
    power: PowerBreakdown
    #: In-kernel GPU time with run-to-run jitter applied (seconds).
    kernel_seconds: float
    #: One-time driver/context/allocation overhead of this run (seconds).
    overhead_seconds: float
    #: End-to-end run time with jitter (seconds).
    total_seconds: float
    #: Card power while kernels execute, with unmodeled structure (W).
    gpu_active_power_w: float
    #: Card power during host phases (W).
    gpu_idle_power_w: float
    #: Steady-state die temperature while the kernel runs (deg C).
    die_temp_c: float
    #: Whether the die exceeded the thermal throttle limit.
    throttling: bool

    @property
    def context(self) -> RunContext:
        """Counter-evaluation context for this run."""
        return RunContext(
            work=self.work,
            cache=self.cache,
            timing=self.timing,
            spec=self.gpu,
            op=self.op,
        )

    @property
    def gpu_busy_seconds(self) -> float:
        """Time the GPU is busy (kernels + launch overhead), jittered."""
        return self.kernel_seconds + self.timing.t_launch

    @property
    def idle_seconds(self) -> float:
        """GPU-idle time: transfers, host phases and driver overhead."""
        return (
            self.timing.t_transfer
            + self.work.host_seconds
            + self.overhead_seconds
        )

    @property
    def gpu_energy_j(self) -> float:
        """Card-level energy of the run (active + idle phases)."""
        return (
            self.gpu_active_power_w * self.gpu_busy_seconds
            + self.gpu_idle_power_w * self.idle_seconds
        )


class GPUSimulator:
    """A card in the testbed, programmable only through its VBIOS.

    Parameters
    ----------
    spec:
        Which card this is.
    bios:
        Raw VBIOS image to boot from; defaults to the factory image
        booting at (H-H).
    seed:
        Optional override of the global noise seed (tests).
    """

    def __init__(
        self,
        spec: GPUSpec,
        bios: bytes | None = None,
        seed: int | None = None,
        ambient_c: float = 25.0,
    ) -> None:
        self.spec = spec
        self._seed = seed
        self.ambient_c = ambient_c
        self._bios = bios if bios is not None else build_image(spec)
        self._boot()

    def _boot(self) -> None:
        image: BiosImage = parse_image(self._bios)
        self._op = image.boot_point(self.spec)

    @property
    def operating_point(self) -> OperatingPoint:
        """The point the card is currently booted at."""
        return self._op

    @property
    def bios_image(self) -> bytes:
        """The currently-flashed VBIOS image."""
        return self._bios

    def set_clocks(self, core: ClockLevel | str, mem: ClockLevel | str) -> None:
        """Reflash the VBIOS with new boot levels and reboot (Gdev method)."""
        core, mem = coerce_levels(core, mem)
        self._bios = patch_boot_levels(self._bios, self.spec, core, mem)
        self._boot()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_grid(
        self, cells: "list[tuple[KernelSpec, float, OperatingPoint]]"
    ) -> list[RunRecord]:
        """Batch API: evaluate many (kernel, scale, op) cells in one call.

        Unlike :meth:`run`, cells name their operating point explicitly
        (no VBIOS flash per cell) and stream seeding is vectorized
        across the grid.  Each returned record is byte-identical to
        what ``set_clocks`` + ``run`` would produce for the same cell.
        """
        from repro.engine.batch import BatchSimulator  # avoid import cycle

        batch = self.__dict__.get("_batch")
        if batch is None:
            batch = self.__dict__["_batch"] = BatchSimulator(
                self.spec, seed=self._seed, ambient_c=self.ambient_c
            )
        return batch.run_grid(cells)

    def run(self, kernel: KernelSpec, scale: float = 1.0) -> RunRecord:
        """Execute one benchmark run at the current operating point."""
        op = self._op
        work = kernel.work(scale)
        cache = simulate_cache(work, self.spec)
        timing = simulate_timing(work, cache, self.spec, op)
        power = simulate_power(cache, timing, self.spec, op)

        traits = self.spec.traits
        jitter_rng = stream(
            "timing-jitter", self.spec.name, kernel.name, scale, op.key,
            seed=self._seed,
        )
        jitter = lognormal_factor(jitter_rng, traits.timing_jitter_cv)

        # Per-(GPU, benchmark) throughput idiosyncrasy: a fixed CPI effect
        # (partition camping, replay storms) no counter observes.  Long
        # streaming workloads average hazards out; small irregular ones
        # (divergent, uncoalesced) are the unpredictable tail that
        # dominates the paper's percentage errors.
        cpi_rng = stream(
            "cpi-fixed-effect", self.spec.name, kernel.name, seed=self._seed
        )
        cpi = lognormal_factor(cpi_rng, _cpi_cv(kernel, traits))

        # One-time driver/context/allocation overhead: benchmark- and
        # size-specific, frequency-independent, counter-invisible.  The
        # spread is wide but bounded (a driver never takes 10x longer to
        # build a context), which is why this dominates the *percentage*
        # error of short runs while leaving R-squared nearly untouched.
        overhead_rng = stream(
            "driver-overhead", self.spec.name, kernel.name, scale,
            seed=self._seed,
        )
        overhead_s = traits.driver_overhead_s * float(
            overhead_rng.uniform(0.25, 2.75)
        )

        # Unmodeled power structure, split between a per-(GPU, benchmark)
        # fixed effect and a per-(GPU, benchmark, pair) interaction —
        # different operating points excite different data paths.
        fixed_rng = stream(
            "power-fixed-effect", self.spec.name, kernel.name, seed=self._seed
        )
        pair_rng = stream(
            "power-pair-effect", self.spec.name, kernel.name, op.key,
            seed=self._seed,
        )
        cv = traits.unmodeled_power_cv
        # The bulk is a per-benchmark fixed effect (cancels in energy
        # ratios between pairs, so the Section III characterization is
        # unaffected); only a small residual varies across pairs.
        fixed = lognormal_factor(fixed_rng, cv * 0.9)
        interaction = lognormal_factor(pair_rng, cv * 0.10)
        dynamic = power.core_dynamic_w + power.mem_background_w + power.dram_access_w
        # Temperature/leakage feedback: the static component grows with
        # die temperature, which grows with total power (engine.thermal).
        thermal = solve_thermal(
            self.spec,
            dynamic_w=dynamic * fixed * interaction,
            static_w=power.static_w,
            ambient_c=self.ambient_c,
        )
        active_power = thermal.power_w

        kernel_seconds = timing.t_kernel * jitter * cpi
        total_seconds = (
            kernel_seconds
            + timing.t_launch
            + timing.t_transfer
            + timing.t_host
            + overhead_s
        )
        return RunRecord(
            gpu=self.spec,
            kernel=kernel,
            scale=scale,
            op=op,
            work=work,
            cache=cache,
            timing=timing,
            power=power,
            kernel_seconds=kernel_seconds,
            overhead_seconds=overhead_s,
            total_seconds=total_seconds,
            gpu_active_power_w=active_power,
            gpu_idle_power_w=idle_gpu_power(self.spec, op),
            die_temp_c=thermal.die_c,
            throttling=thermal.throttling,
        )
