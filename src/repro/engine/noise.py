"""Deterministic noise helpers for the simulated measurements."""

from __future__ import annotations

import numpy as np


def lognormal_factor(rng: np.random.Generator, cv: float) -> float:
    """A multiplicative noise factor with unit median.

    Parameters
    ----------
    rng:
        Deterministic generator from :func:`repro.rng.stream`.
    cv:
        Approximate coefficient of variation; 0 returns exactly 1.
    """
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if cv == 0:
        return 1.0
    sigma = float(np.sqrt(np.log1p(cv**2)))
    return float(np.exp(rng.normal(0.0, sigma)))
