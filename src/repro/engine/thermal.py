"""Steady-state thermal model with leakage feedback.

Leakage current grows with die temperature, and die temperature grows
with dissipated power — a positive feedback the TDP figures of Table I
are sized against.  This module solves the steady state:

``T = T_ambient + R_th * P(T)`` with ``P(T)`` containing a leakage term
``~ (1 + k * (T - T_ref))``.

The feedback is deliberately weak around the calibration point (the
reproduction's headline numbers are calibrated at ``T_REF``), but it
makes ambient temperature a real experimental variable: the same card in
a hot aisle consumes measurably more energy at identical clocks, and
energy-optimal frequency pairs can shift — an effect entirely outside
the paper's scope but directly relevant to its runtime-management
vision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec

#: Ambient temperature the power coefficients are calibrated at (deg C).
T_AMBIENT_CAL = 25.0
#: Die reference temperature at calibration (deg C).
T_REF = 70.0
#: Leakage sensitivity: fractional static-power growth per kelvin.
LEAKAGE_PER_K = 0.006
#: Thermal throttle limit typical of the era (deg C).
T_THROTTLE = 97.0


@dataclass(frozen=True)
class ThermalState:
    """Converged thermal operating point of one run."""

    #: Die temperature (deg C).
    die_c: float
    #: Total card power including the leakage correction (W).
    power_w: float
    #: Multiplier applied to the static power.
    leakage_factor: float
    #: Whether the die exceeds the throttle limit.
    throttling: bool
    #: Fixed-point iterations used.
    iterations: int


def thermal_resistance(spec: GPUSpec) -> float:
    """Junction-to-ambient thermal resistance of the card's cooler (K/W).

    Coolers are sized so the card sits near ``T_REF`` at TDP in a
    ``T_AMBIENT_CAL`` environment — exactly how vendors spec them.
    """
    return (T_REF - T_AMBIENT_CAL) / spec.tdp_w


def solve_thermal(
    spec: GPUSpec,
    dynamic_w: float,
    static_w: float,
    ambient_c: float = T_AMBIENT_CAL,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> ThermalState:
    """Fixed-point solve of the temperature/leakage feedback.

    Parameters
    ----------
    dynamic_w:
        Activity-dependent power (temperature-independent).
    static_w:
        Leakage power at the reference temperature ``T_REF``.
    ambient_c:
        Ambient (intake) temperature.

    The iteration ``T -> ambient + R * P(T)`` is a contraction as long
    as ``R * static * LEAKAGE_PER_K < 1`` — true for every card here by
    a wide margin — so convergence is unconditional.
    """
    if dynamic_w < 0 or static_w < 0:
        raise ValueError("power components must be non-negative")
    r_th = thermal_resistance(spec)
    t = ambient_c + r_th * (dynamic_w + static_w)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        factor = max(0.1, 1.0 + LEAKAGE_PER_K * (t - T_REF))
        power = dynamic_w + static_w * factor
        t_new = ambient_c + r_th * power
        if abs(t_new - t) < tolerance:
            t = t_new
            break
        t = t_new
    factor = max(0.1, 1.0 + LEAKAGE_PER_K * (t - T_REF))
    power = dynamic_w + static_w * factor
    return ThermalState(
        die_c=t,
        power_w=power,
        leakage_factor=factor,
        throttling=t > T_THROTTLE,
        iterations=iterations,
    )
