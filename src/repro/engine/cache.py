"""Cache-hierarchy model.

Tesla has no L1/L2 data caches, so every requested global byte reaches
DRAM.  Fermi introduced a real hierarchy and Kepler enlarged it; the
generation's ``cache_factor`` bounds how much *perfectly local* traffic
the hierarchy can filter.  This single mechanism is behind one of the
paper's central observations: memory-frequency scaling becomes viable on
newer generations because caches decouple kernels from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec
from repro.kernels.profile import WorkProfile

#: DRAM sector granularity in bytes (what the frame-buffer counters count).
SECTOR_BYTES = 32.0
#: Cache-line / transaction granularity in bytes.
LINE_BYTES = 128.0


@dataclass(frozen=True)
class CacheOutcome:
    """Traffic decomposition of one run through the memory hierarchy."""

    #: Bytes requested by the kernel (loads + stores).
    requested_bytes: float
    #: Bytes served by the L1 caches.
    l1_hit_bytes: float
    #: Bytes served by the L2 cache.
    l2_hit_bytes: float
    #: Bytes that reached DRAM.
    dram_bytes: float
    #: DRAM read bytes (after hierarchy filtering).
    dram_read_bytes: float
    #: DRAM write bytes.
    dram_write_bytes: float
    #: L1 load transactions that hit / missed.
    l1_load_hits: float
    l1_load_misses: float
    #: L2 sector queries and misses.
    l2_queries: float
    l2_misses: float

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit fraction of requested traffic."""
        if self.requested_bytes == 0:
            return 0.0
        return self.l1_hit_bytes / self.requested_bytes

    @property
    def dram_fraction(self) -> float:
        """Fraction of requested traffic that reached DRAM."""
        if self.requested_bytes == 0:
            return 0.0
        return self.dram_bytes / self.requested_bytes


def simulate_cache(work: WorkProfile, spec: GPUSpec) -> CacheOutcome:
    """Propagate a work profile through the generation's hierarchy.

    The filterable fraction is ``cache_factor * locality``; of the
    filtered traffic, L1 captures about 60% and L2 the rest (Fermi's L1
    is small and write-evict, so L2 does much of the work).  Poorly
    coalesced access patterns additionally over-fetch DRAM sectors.
    """
    requested = work.global_bytes
    filtered_fraction = spec.traits.cache_factor * work.locality
    filtered = requested * filtered_fraction
    l1_bytes = filtered * 0.60
    l2_bytes = filtered - l1_bytes
    to_dram = requested - filtered
    # Uncoalesced accesses waste sector bandwidth: a fully-scattered
    # pattern touches a whole 32B sector per useful word.
    overfetch = 1.0 / max(work.coalescing, 0.125)
    dram_bytes = to_dram * overfetch
    read_share = work.gld_bytes / requested if requested else 0.0
    load_transactions = work.gld_bytes / LINE_BYTES
    l1_load_hits = load_transactions * filtered_fraction * 0.60
    l1_load_misses = load_transactions - l1_load_hits
    l2_queries = (requested - l1_bytes) / SECTOR_BYTES
    l2_misses = dram_bytes / SECTOR_BYTES
    return CacheOutcome(
        requested_bytes=requested,
        l1_hit_bytes=l1_bytes,
        l2_hit_bytes=l2_bytes,
        dram_bytes=dram_bytes,
        dram_read_bytes=dram_bytes * read_share,
        dram_write_bytes=dram_bytes * (1.0 - read_share),
        l1_load_hits=l1_load_hits,
        l1_load_misses=l1_load_misses,
        l2_queries=l2_queries,
        l2_misses=l2_misses,
    )
