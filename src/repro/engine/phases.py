"""Intra-run phase structure of the busy window.

A run is not a flat power plateau: kernels alternate compute-dominated
and memory-dominated stretches.  This module derives a phase profile for
the busy window from the run's own timing decomposition — the
compute-side and memory-side times and their power levels — such that

* the phase durations sum exactly to the busy time, and
* the time-weighted mean power equals exactly the run's average active
  power (so every energy figure is preserved by construction).

The wall meter then sees a physically-shaped ripple, which is what the
trace-segmentation tooling (``repro.analysis.traces``) gets to analyze.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import RunRecord


@dataclass(frozen=True)
class BusyPhase:
    """One stretch of the busy window."""

    duration_s: float
    watts: float
    #: ``"compute"`` or ``"memory"`` dominated.
    kind: str


def busy_phase_profile(
    record: RunRecord, mean_watts: float, bursts: int = 3
) -> list[BusyPhase]:
    """Derive the busy window's phase structure from the run record.

    The window is split into ``bursts`` repetitions of a
    (compute-stretch, memory-stretch) pattern whose duration split
    follows the run's ``t_compute``/``t_memory`` decomposition and whose
    power levels reflect which side dominates: compute stretches run the
    ALUs hot with the memory interface partly idle, and vice versa.

    Power levels are chosen around ``mean_watts`` with an exact
    time-weighted mean of ``mean_watts``.
    """
    total = record.gpu_busy_seconds
    if total <= 0:
        return []
    t_c = record.timing.t_compute
    t_m = record.timing.t_memory
    share_c = t_c / (t_c + t_m)
    share_c = min(max(share_c, 0.02), 0.98)

    # Contrast between the two phase kinds grows with how unbalanced the
    # kernel is; a perfectly balanced kernel shows almost no ripple.
    imbalance = abs(2.0 * share_c - 1.0)
    contrast = mean_watts * (0.03 + 0.12 * imbalance)
    # Solve for level offsets with zero time-weighted mean:
    #   share_c * dc + (1 - share_c) * dm = 0
    dc = contrast * (1.0 - share_c)
    dm = -contrast * share_c

    per_burst = total / bursts
    phases: list[BusyPhase] = []
    for _ in range(bursts):
        phases.append(
            BusyPhase(
                duration_s=per_burst * share_c,
                watts=max(mean_watts + dc, 1.0),
                kind="compute",
            )
        )
        phases.append(
            BusyPhase(
                duration_s=per_burst * (1.0 - share_c),
                watts=max(mean_watts + dm, 1.0),
                kind="memory",
            )
        )
    return phases
