"""Counter-classification registry and documentation export.

The paper's footnote: *"We do not show what counters are classified into
which group because of space limitations."*  This module publishes the
full classification for every architecture — queryable programmatically
and exportable as Markdown — closing that gap for downstream users who
want to audit or reuse the core-event/memory-event split of Eqs. 1/2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.counters import Counter, CounterDomain, counter_set

#: Counter sets by architecture generation, with paper cardinalities.
COUNTER_SET_NAMES: tuple[str, ...] = ("tesla", "fermi", "kepler", "gcn")


@dataclass(frozen=True)
class CounterGroupSummary:
    """Domain split of one architecture's counter set."""

    set_name: str
    total: int
    core_events: tuple[str, ...]
    memory_events: tuple[str, ...]

    @property
    def n_core(self) -> int:
        """Number of core-domain counters."""
        return len(self.core_events)

    @property
    def n_memory(self) -> int:
        """Number of memory-domain counters."""
        return len(self.memory_events)


def classify(set_name: str) -> CounterGroupSummary:
    """The full core/memory classification of one counter set."""
    counters = counter_set(set_name)
    core = tuple(
        c.name for c in counters if c.domain is CounterDomain.CORE
    )
    memory = tuple(
        c.name for c in counters if c.domain is CounterDomain.MEMORY
    )
    return CounterGroupSummary(
        set_name=set_name,
        total=len(counters),
        core_events=core,
        memory_events=memory,
    )


def domain_of(set_name: str, counter_name: str) -> CounterDomain:
    """Domain of one counter (raises ``KeyError`` if absent)."""
    for counter in counter_set(set_name):
        if counter.name == counter_name:
            return counter.domain
    raise KeyError(
        f"no counter {counter_name!r} in the {set_name!r} set"
    )


def classification_markdown() -> str:
    """Render the full classification of every set as Markdown.

    Used to generate ``docs/COUNTERS.md``.
    """
    lines: list[str] = [
        "# Performance-counter classification",
        "",
        "Core-event counters multiply (power, Eq. 1) or divide",
        "(performance, Eq. 2) by the *core* frequency; memory-event",
        "counters by the *memory* frequency.  The paper omitted this",
        "table for space; the reproduction publishes it in full.",
        "",
    ]
    for set_name in COUNTER_SET_NAMES:
        summary = classify(set_name)
        lines.append(
            f"## {set_name} ({summary.total} counters: "
            f"{summary.n_core} core, {summary.n_memory} memory)"
        )
        lines.append("")
        lines.append("### Core events")
        lines.append("")
        for name in summary.core_events:
            lines.append(f"- `{name}`")
        lines.append("")
        lines.append("### Memory events")
        lines.append("")
        for name in summary.memory_events:
            lines.append(f"- `{name}`")
        lines.append("")
    return "\n".join(lines)
