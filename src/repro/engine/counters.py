"""Per-architecture performance-counter sets.

Section IV of the paper: *"the types and the number of performance
counters depend on each GPU architecture: 32 counters for GTX 285, 74
counters for GTX 460 and GTX 480, and 108 counters for GTX 680."*

This module defines those three sets with realistic CUDA-profiler-era
names and evaluates each counter from the ground-truth run record.  Every
counter is tagged *core-event* or *memory-event* — the classification the
paper's unified models use to decide which frequency multiplies/divides
the counter value (Eqs. 1 and 2).  As in the real tool, a few counters
are ratios (``achieved_occupancy``) or always-zero triggers
(``prof_trigger_*``); robust feature selection has to cope with them.

Counters observe the run imperfectly: values are deterministic functions
of the work profile, cache outcome and timing, and the *profiler* (in
:mod:`repro.instruments.profiler`) adds per-collection observation noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import LINE_BYTES, SECTOR_BYTES, CacheOutcome
from repro.engine.timing import TimingBreakdown
from repro.kernels.profile import WorkProfile


class CounterDomain(enum.Enum):
    """Frequency domain a counter's events belong to (Section IV)."""

    CORE = "core"
    MEMORY = "memory"


@dataclass(frozen=True)
class RunContext:
    """Everything a counter can observe about one run."""

    work: WorkProfile
    cache: CacheOutcome
    timing: TimingBreakdown
    spec: GPUSpec
    op: OperatingPoint

    @property
    def elapsed_cycles(self) -> float:
        """Core-clock cycles elapsed during kernel execution."""
        return self.timing.t_kernel * self.op.core_hz

    @property
    def gld_transactions(self) -> float:
        """Warp-level global load transactions (coalescing-dependent)."""
        return self.work.gld_bytes / (LINE_BYTES * max(self.work.coalescing, 0.125))

    @property
    def gst_transactions(self) -> float:
        """Warp-level global store transactions."""
        return self.work.gst_bytes / (LINE_BYTES * max(self.work.coalescing, 0.125))


ValueFn = Callable[[RunContext], float]


@dataclass(frozen=True)
class Counter:
    """One hardware performance counter."""

    name: str
    domain: CounterDomain
    fn: ValueFn
    #: Observation noise (coefficient of variation) the profiler applies.
    noise_cv: float = 0.01

    def evaluate(self, ctx: RunContext) -> float:
        """Noise-free counter value for a run."""
        return float(self.fn(ctx))


# ----------------------------------------------------------------------
# shared value helpers
# ----------------------------------------------------------------------

#: Maximum resident warps per SM (generation-typical; used for
#: active_warps style counters).
_MAX_WARPS = 48.0

#: Sub-partition traffic weights: real boards never split perfectly evenly.
_SUBP2 = (0.52, 0.48)
_SUBP4 = (0.27, 0.25, 0.25, 0.23)
#: Tahiti's L2/memory system is split across eight channels.
_SUBP8 = (0.14, 0.13, 0.13, 0.125, 0.125, 0.12, 0.12, 0.11)


def _inst_issued(ctx: RunContext) -> float:
    replay = 0.04 + 0.35 * ctx.work.divergence
    return ctx.work.inst_total * (1.0 + replay)


def _active_warps(ctx: RunContext) -> float:
    return ctx.elapsed_cycles * ctx.work.occupancy * _MAX_WARPS


def _bank_conflicts(ctx: RunContext) -> float:
    return 0.06 * (ctx.work.shared_loads + ctx.work.shared_stores)


def _local_traffic(ctx: RunContext) -> float:
    # Register-spill traffic: a small, occupancy-dependent slice.
    return 0.008 * ctx.work.inst_total * (0.5 + 0.5 * ctx.work.occupancy)


def _ldst_inst(ctx: RunContext) -> float:
    return ctx.work.global_bytes / 8.0


def _issue_slots(ctx: RunContext) -> float:
    return _inst_issued(ctx) * 1.1


def _stall(share_fn: Callable[[RunContext], float]) -> ValueFn:
    def fn(ctx: RunContext) -> float:
        return ctx.elapsed_cycles * min(1.0, max(0.0, share_fn(ctx)))

    return fn


def _read_share(ctx: RunContext) -> float:
    total = ctx.work.global_bytes
    return ctx.work.gld_bytes / total if total else 0.0


def _split(total_fn: ValueFn, weight: float) -> ValueFn:
    def fn(ctx: RunContext) -> float:
        return total_fn(ctx) * weight

    return fn


def _l2_read_queries(ctx: RunContext) -> float:
    return ctx.cache.l2_queries * _read_share(ctx)


def _l2_write_queries(ctx: RunContext) -> float:
    return ctx.cache.l2_queries * (1.0 - _read_share(ctx))


def _l2_read_misses(ctx: RunContext) -> float:
    return ctx.cache.l2_misses * _read_share(ctx)


def _l2_write_misses(ctx: RunContext) -> float:
    return ctx.cache.l2_misses * (1.0 - _read_share(ctx))


def _l2_read_hits(ctx: RunContext) -> float:
    return max(0.0, _l2_read_queries(ctx) - _l2_read_misses(ctx))


def _fb_reads(ctx: RunContext) -> float:
    return ctx.cache.dram_read_bytes / SECTOR_BYTES


def _fb_writes(ctx: RunContext) -> float:
    return ctx.cache.dram_write_bytes / SECTOR_BYTES


def _tex_queries(ctx: RunContext) -> float:
    return 0.02 * ctx.gld_transactions


def _tex_misses(ctx: RunContext) -> float:
    return 0.3 * _tex_queries(ctx)


def _zero(_: RunContext) -> float:
    return 0.0


_CORE = CounterDomain.CORE
_MEM = CounterDomain.MEMORY


# ----------------------------------------------------------------------
# GT200 / Tesla counter set (32 counters)
# ----------------------------------------------------------------------

def _tesla_counters() -> tuple[Counter, ...]:
    return (
        # -- core events ------------------------------------------------
        Counter("instructions", _CORE, lambda c: c.work.inst_total),
        Counter("branch", _CORE, lambda c: c.work.branches),
        Counter("divergent_branch", _CORE, lambda c: c.work.divergent_branches),
        Counter(
            "warp_serialize",
            _CORE,
            lambda c: 6.0 * c.work.divergent_branches + _bank_conflicts(c),
        ),
        Counter("sm_cta_launched", _CORE, lambda c: c.work.blocks),
        Counter("cta_launched", _CORE, lambda c: c.work.blocks),
        Counter("threads_launched", _CORE, lambda c: c.work.threads),
        Counter("warps_launched", _CORE, lambda c: c.work.warps),
        Counter("active_cycles", _CORE, lambda c: c.elapsed_cycles, noise_cv=0.02),
        Counter("active_warps", _CORE, _active_warps, noise_cv=0.02),
        Counter("shared_load", _CORE, lambda c: c.work.shared_loads),
        Counter("shared_store", _CORE, lambda c: c.work.shared_stores),
        Counter("instructions_fp", _CORE, lambda c: c.work.flops / 1.6),
        Counter("instructions_int", _CORE, lambda c: c.work.int_ops),
        Counter("instructions_sfu", _CORE, lambda c: c.work.sfu_ops),
        Counter("grid_launches", _CORE, lambda c: c.work.launches),
        Counter("prof_trigger_00", _CORE, _zero, noise_cv=0.0),
        Counter("prof_trigger_01", _CORE, _zero, noise_cv=0.0),
        # -- memory events ------------------------------------------------
        Counter("gld_32b", _MEM, lambda c: 0.25 * c.gld_transactions),
        Counter("gld_64b", _MEM, lambda c: 0.35 * c.gld_transactions),
        Counter("gld_128b", _MEM, lambda c: 0.40 * c.gld_transactions),
        Counter("gst_32b", _MEM, lambda c: 0.25 * c.gst_transactions),
        Counter("gst_64b", _MEM, lambda c: 0.35 * c.gst_transactions),
        Counter("gst_128b", _MEM, lambda c: 0.40 * c.gst_transactions),
        Counter(
            "gld_coherent",
            _MEM,
            lambda c: c.gld_transactions * c.work.coalescing,
        ),
        Counter(
            "gld_incoherent",
            _MEM,
            lambda c: c.gld_transactions * (1.0 - c.work.coalescing),
        ),
        Counter(
            "gst_coherent",
            _MEM,
            lambda c: c.gst_transactions * c.work.coalescing,
        ),
        Counter(
            "gst_incoherent",
            _MEM,
            lambda c: c.gst_transactions * (1.0 - c.work.coalescing),
        ),
        Counter("local_load", _MEM, lambda c: 0.6 * _local_traffic(c)),
        Counter("local_store", _MEM, lambda c: 0.4 * _local_traffic(c)),
        Counter("tex_cache_hit", _MEM, lambda c: 0.7 * _tex_queries(c)),
        Counter("tex_cache_miss", _MEM, _tex_misses),
    )


# ----------------------------------------------------------------------
# GF1xx / Fermi counter set (74 counters)
# ----------------------------------------------------------------------

def _fermi_core() -> list[Counter]:
    counters = [
        Counter("inst_executed", _CORE, lambda c: c.work.inst_total),
        Counter("inst_issued", _CORE, _inst_issued),
        Counter("inst_issued1_0", _CORE, _split(_inst_issued, 0.33)),
        Counter("inst_issued2_0", _CORE, _split(_inst_issued, 0.18)),
        Counter("inst_issued1_1", _CORE, _split(_inst_issued, 0.31)),
        Counter("inst_issued2_1", _CORE, _split(_inst_issued, 0.18)),
        Counter(
            "thread_inst_executed_0",
            _CORE,
            lambda c: 8.5 * c.work.inst_total,
        ),
        Counter(
            "thread_inst_executed_1",
            _CORE,
            lambda c: 8.1 * c.work.inst_total,
        ),
        Counter(
            "thread_inst_executed_2",
            _CORE,
            lambda c: 7.9 * c.work.inst_total,
        ),
        Counter(
            "thread_inst_executed_3",
            _CORE,
            lambda c: 7.5 * c.work.inst_total,
        ),
        Counter("branch", _CORE, lambda c: c.work.branches),
        Counter("divergent_branch", _CORE, lambda c: c.work.divergent_branches),
        Counter("warps_launched", _CORE, lambda c: c.work.warps),
        Counter("threads_launched", _CORE, lambda c: c.work.threads),
        Counter("sm_cta_launched", _CORE, lambda c: c.work.blocks),
        Counter("active_cycles", _CORE, lambda c: c.elapsed_cycles, noise_cv=0.02),
        Counter("active_warps", _CORE, _active_warps, noise_cv=0.02),
        Counter("shared_load", _CORE, lambda c: c.work.shared_loads),
        Counter("shared_store", _CORE, lambda c: c.work.shared_stores),
        Counter("l1_shared_bank_conflict", _CORE, _bank_conflicts),
        Counter("inst_fp_32", _CORE, lambda c: c.work.flops / 1.6),
        Counter("inst_fp_64", _CORE, lambda c: c.work.dp_flops / 1.3),
        Counter("inst_int", _CORE, lambda c: c.work.int_ops),
        Counter(
            "inst_bit_convert", _CORE, lambda c: 0.05 * c.work.int_ops
        ),
        Counter("inst_control", _CORE, lambda c: c.work.branches),
        Counter("inst_ldst", _CORE, _ldst_inst),
        Counter("inst_misc", _CORE, lambda c: 0.04 * c.work.inst_total),
        Counter("inst_special", _CORE, lambda c: c.work.sfu_ops),
        Counter("issue_slots", _CORE, _issue_slots),
        Counter(
            "stall_inst_fetch",
            _CORE,
            _stall(lambda c: 0.02 + 0.05 * c.work.divergence),
        ),
        Counter(
            "stall_exec_dependency",
            _CORE,
            _stall(lambda c: 0.25 * (1.0 - c.work.occupancy)),
        ),
        Counter(
            "stall_memory_dependency",
            _CORE,
            _stall(lambda c: 0.8 * c.timing.memory_utilization),
            noise_cv=0.03,
        ),
        Counter("stall_texture", _CORE, _stall(lambda c: 0.01)),
        Counter(
            "stall_sync",
            _CORE,
            _stall(
                lambda c: 0.10
                * (c.work.shared_loads + c.work.shared_stores)
                / max(c.work.inst_total, 1.0)
            ),
        ),
        Counter("stall_other", _CORE, _stall(lambda c: 0.03)),
        Counter(
            "achieved_occupancy", _CORE, lambda c: c.work.occupancy, noise_cv=0.005
        ),
        Counter(
            "inst_replay_overhead",
            _CORE,
            lambda c: 0.04 + 0.35 * c.work.divergence,
            noise_cv=0.005,
        ),
        Counter(
            "shared_replay_overhead",
            _CORE,
            lambda c: _bank_conflicts(c) / max(c.work.inst_total, 1.0),
            noise_cv=0.005,
        ),
        Counter("atom_count", _CORE, lambda c: c.work.atom_ops),
        Counter("gred_count", _CORE, lambda c: 0.3 * c.work.atom_ops),
        Counter("prof_trigger_00", _CORE, _zero, noise_cv=0.0),
    ]
    return counters


def _fermi_memory() -> list[Counter]:
    counters = [
        Counter("gld_request", _MEM, lambda c: c.work.gld_bytes / 128.0),
        Counter("gst_request", _MEM, lambda c: c.work.gst_bytes / 128.0),
        Counter("l1_global_load_hit", _MEM, lambda c: c.cache.l1_load_hits),
        Counter("l1_global_load_miss", _MEM, lambda c: c.cache.l1_load_misses),
        Counter(
            "l1_local_load_hit", _MEM, lambda c: 0.5 * _local_traffic(c)
        ),
        Counter(
            "l1_local_load_miss", _MEM, lambda c: 0.1 * _local_traffic(c)
        ),
        Counter(
            "l1_local_store_hit", _MEM, lambda c: 0.3 * _local_traffic(c)
        ),
        Counter(
            "l1_local_store_miss", _MEM, lambda c: 0.1 * _local_traffic(c)
        ),
        Counter(
            "uncached_global_load_transaction",
            _MEM,
            lambda c: c.gld_transactions * (1.0 - c.work.locality),
        ),
        Counter("global_store_transaction", _MEM, lambda c: c.gst_transactions),
        Counter("local_load", _MEM, lambda c: 0.6 * _local_traffic(c)),
        Counter("local_store", _MEM, lambda c: 0.4 * _local_traffic(c)),
        Counter(
            "global_cache_replay_overhead",
            _MEM,
            lambda c: 0.1 * (1.0 - c.work.coalescing),
            noise_cv=0.005,
        ),
        Counter(
            "local_cache_replay_overhead",
            _MEM,
            lambda c: 0.01,
            noise_cv=0.005,
        ),
        Counter(
            "dram_utilization",
            _MEM,
            lambda c: 10.0 * c.timing.memory_utilization,
            noise_cv=0.02,
        ),
    ]
    for i, weight in enumerate(_SUBP2):
        counters.extend(
            [
                Counter(
                    f"l2_subp{i}_read_sector_queries",
                    _MEM,
                    _split(_l2_read_queries, weight),
                ),
                Counter(
                    f"l2_subp{i}_write_sector_queries",
                    _MEM,
                    _split(_l2_write_queries, weight),
                ),
                Counter(
                    f"l2_subp{i}_read_sector_misses",
                    _MEM,
                    _split(_l2_read_misses, weight),
                ),
                Counter(
                    f"l2_subp{i}_write_sector_misses",
                    _MEM,
                    _split(_l2_write_misses, weight),
                ),
                Counter(
                    f"l2_subp{i}_read_hit_sectors",
                    _MEM,
                    _split(_l2_read_hits, weight),
                ),
                Counter(
                    f"fb_subp{i}_read_sectors",
                    _MEM,
                    _split(_fb_reads, weight),
                    noise_cv=0.02,
                ),
                Counter(
                    f"fb_subp{i}_write_sectors",
                    _MEM,
                    _split(_fb_writes, weight),
                    noise_cv=0.02,
                ),
                Counter(
                    f"tex{i}_cache_sector_queries",
                    _MEM,
                    _split(_tex_queries, weight),
                ),
                Counter(
                    f"tex{i}_cache_sector_misses",
                    _MEM,
                    _split(_tex_misses, weight),
                ),
            ]
        )
    return counters


def _fermi_counters() -> tuple[Counter, ...]:
    return tuple(_fermi_core() + _fermi_memory())


# ----------------------------------------------------------------------
# GK104 / Kepler counter set (108 counters)
# ----------------------------------------------------------------------

def _kepler_counters() -> tuple[Counter, ...]:
    core = _fermi_core() + [
        Counter("flops_sp", _CORE, lambda c: c.work.flops),
        Counter("flops_sp_add", _CORE, lambda c: 0.15 * c.work.flops),
        Counter("flops_sp_mul", _CORE, lambda c: 0.20 * c.work.flops),
        Counter("flops_sp_fma", _CORE, lambda c: 0.65 * c.work.flops / 2.0),
        Counter("flops_dp", _CORE, lambda c: c.work.dp_flops),
        Counter(
            "stall_pipe_busy",
            _CORE,
            _stall(lambda c: 0.10 * c.timing.core_utilization),
        ),
        Counter("stall_constant_memory_dependency", _CORE, _stall(lambda c: 0.01)),
        Counter(
            "stall_memory_throttle",
            _CORE,
            _stall(lambda c: 0.3 * c.timing.memory_utilization),
            noise_cv=0.03,
        ),
        Counter(
            "stall_not_selected",
            _CORE,
            _stall(lambda c: 0.15 * c.work.occupancy),
        ),
        Counter("shared_load_replay", _CORE, lambda c: 0.6 * _bank_conflicts(c)),
        Counter("shared_store_replay", _CORE, lambda c: 0.4 * _bank_conflicts(c)),
        Counter(
            "issue_slot_utilization",
            _CORE,
            lambda c: min(
                1.0, _issue_slots(c) / max(c.elapsed_cycles * 4.0, 1.0)
            ),
            noise_cv=0.005,
        ),
        Counter(
            "eligible_warps_per_cycle",
            _CORE,
            lambda c: c.work.occupancy * _MAX_WARPS * 0.25,
            noise_cv=0.005,
        ),
    ]
    memory = _fermi_memory() + [
        Counter("gld_transactions", _MEM, lambda c: c.gld_transactions),
        Counter("gst_transactions", _MEM, lambda c: c.gst_transactions),
        Counter(
            "l1_cached_global_load_transaction",
            _MEM,
            lambda c: c.gld_transactions * c.work.locality,
        ),
        Counter("l2_tex_read_sector_queries", _MEM, _split(_tex_queries, 1.0)),
        Counter("l2_tex_write_sector_queries", _MEM, _split(_tex_queries, 0.1)),
        Counter(
            "sysmem_read_transactions", _MEM, lambda c: 0.001 * c.gld_transactions
        ),
        Counter(
            "sysmem_write_transactions", _MEM, lambda c: 0.001 * c.gst_transactions
        ),
    ]
    # Kepler's L2/FB are split across four sub-partitions; the extra two
    # partitions contribute additional counters beyond the Fermi pair.
    for i in (2, 3):
        weight = _SUBP4[i]
        memory.extend(
            [
                Counter(
                    f"l2_subp{i}_read_sector_queries",
                    _MEM,
                    _split(_l2_read_queries, weight),
                ),
                Counter(
                    f"l2_subp{i}_write_sector_queries",
                    _MEM,
                    _split(_l2_write_queries, weight),
                ),
                Counter(
                    f"l2_subp{i}_read_sector_misses",
                    _MEM,
                    _split(_l2_read_misses, weight),
                ),
                Counter(
                    f"l2_subp{i}_write_sector_misses",
                    _MEM,
                    _split(_l2_write_misses, weight),
                ),
                Counter(
                    f"l2_subp{i}_read_hit_sectors",
                    _MEM,
                    _split(_l2_read_hits, weight),
                ),
                Counter(
                    f"fb_subp{i}_read_sectors",
                    _MEM,
                    _split(_fb_reads, weight),
                    noise_cv=0.02,
                ),
                Counter(
                    f"fb_subp{i}_write_sectors",
                    _MEM,
                    _split(_fb_writes, weight),
                    noise_cv=0.02,
                ),
            ]
        )
    return tuple(core + memory)


# ----------------------------------------------------------------------
# Tahiti / GCN counter set (extension: the paper's Radeon future work)
# ----------------------------------------------------------------------

def _gcn_counters() -> tuple[Counter, ...]:
    """AMD GCN (Tahiti) counters in CodeXL/GPUPerfAPI naming style.

    Wavefronts are 64 threads wide on GCN (two NVIDIA warps), SALU/VALU
    split replaces the scalar/vector mix, and the L2 (TCC) plus memory
    controller are split across eight channels.
    """
    core = [
        Counter("SQ_INSTS", _CORE, lambda c: c.work.inst_total),
        Counter(
            "SQ_INSTS_VALU",
            _CORE,
            lambda c: c.work.flops / 1.6 + c.work.int_ops,
        ),
        Counter("SQ_INSTS_SALU", _CORE, lambda c: 0.15 * c.work.inst_total),
        Counter("SQ_INSTS_SMEM", _CORE, lambda c: 0.03 * c.work.inst_total),
        Counter(
            "SQ_INSTS_LDS",
            _CORE,
            lambda c: c.work.shared_loads + c.work.shared_stores,
        ),
        Counter("SQ_INSTS_GDS", _CORE, lambda c: c.work.atom_ops),
        Counter("SQ_INSTS_BRANCH", _CORE, lambda c: c.work.branches),
        Counter(
            "SQ_INSTS_VSKIPPED",
            _CORE,
            lambda c: 10.0 * c.work.divergent_branches,
        ),
        Counter("SQ_WAVES", _CORE, lambda c: c.work.warps / 2.0),
        Counter("SQ_BUSY_CYCLES", _CORE, lambda c: c.elapsed_cycles, noise_cv=0.02),
        Counter(
            "SQ_ACTIVE_INST_VALU",
            _CORE,
            lambda c: c.elapsed_cycles * c.timing.core_utilization,
            noise_cv=0.02,
        ),
        Counter(
            "SQ_WAIT_ANY",
            _CORE,
            _stall(lambda c: 0.5 * c.timing.memory_utilization),
            noise_cv=0.03,
        ),
        Counter(
            "SQ_WAIT_INST_LDS",
            _CORE,
            _stall(
                lambda c: 0.08
                * (c.work.shared_loads + c.work.shared_stores)
                / max(c.work.inst_total, 1.0)
            ),
        ),
        Counter("GRBM_GUI_ACTIVE", _CORE, lambda c: c.elapsed_cycles, noise_cv=0.02),
        Counter("GRBM_COUNT", _CORE, lambda c: c.elapsed_cycles * 1.02, noise_cv=0.02),
        Counter("SPI_CSN_BUSY", _CORE, lambda c: c.elapsed_cycles * 0.95, noise_cv=0.02),
        Counter("SPI_CSN_WAVE", _CORE, lambda c: c.work.warps / 2.0),
        Counter("SPI_CSN_NUM_THREADGROUPS", _CORE, lambda c: c.work.blocks),
        Counter("TA_BUSY", _CORE, lambda c: c.elapsed_cycles * 0.4, noise_cv=0.02),
        Counter("Wavefronts", _CORE, lambda c: c.work.warps / 2.0),
        Counter(
            "VALUInsts",
            _CORE,
            lambda c: (c.work.flops / 1.6 + c.work.int_ops)
            / max(c.work.warps / 2.0, 1.0),
        ),
        Counter(
            "SALUInsts",
            _CORE,
            lambda c: 0.15 * c.work.inst_total / max(c.work.warps / 2.0, 1.0),
        ),
        Counter(
            "VALUUtilization",
            _CORE,
            lambda c: 100.0
            / (1.0 + 2.0 * c.work.divergence * c.spec.traits.divergence_penalty),
            noise_cv=0.005,
        ),
        Counter(
            "VALUBusy",
            _CORE,
            lambda c: 100.0 * c.timing.core_utilization,
            noise_cv=0.01,
        ),
        Counter(
            "SALUBusy",
            _CORE,
            lambda c: 15.0 * c.timing.core_utilization,
            noise_cv=0.01,
        ),
        Counter(
            "LDSInsts",
            _CORE,
            lambda c: (c.work.shared_loads + c.work.shared_stores)
            / max(c.work.warps / 2.0, 1.0),
        ),
        Counter("LDSBankConflict", _CORE, _bank_conflicts),
        Counter("GDSInsts", _CORE, lambda c: c.work.atom_ops / max(c.work.warps / 2.0, 1.0)),
        Counter("prof_trigger_00", _CORE, _zero, noise_cv=0.0),
    ]
    memory = [
        Counter(
            "TCP_TOTAL_CACHE_ACCESSES",
            _MEM,
            lambda c: c.gld_transactions + c.gst_transactions,
        ),
        Counter(
            "TCP_TCC_READ_REQ",
            _MEM,
            lambda c: c.gld_transactions * (1.0 - 0.6 * c.work.locality),
        ),
        Counter("TCP_TCC_WRITE_REQ", _MEM, lambda c: c.gst_transactions),
        Counter(
            "TCP_TCR_TCC_STALL",
            _MEM,
            lambda c: 0.2 * c.cache.l2_queries * c.timing.memory_utilization,
            noise_cv=0.03,
        ),
        Counter("TD_TD_BUSY", _MEM, lambda c: c.elapsed_cycles * 0.3, noise_cv=0.02),
        Counter(
            "MemUnitBusy",
            _MEM,
            lambda c: 100.0 * c.timing.memory_utilization,
            noise_cv=0.02,
        ),
        Counter(
            "MemUnitStalled",
            _MEM,
            lambda c: 20.0 * c.timing.memory_utilization * (1.0 - c.work.coalescing),
            noise_cv=0.02,
        ),
        Counter(
            "WriteUnitStalled",
            _MEM,
            lambda c: 5.0 * c.timing.memory_utilization,
            noise_cv=0.02,
        ),
        Counter("FetchSize", _MEM, lambda c: c.cache.dram_read_bytes / 1024.0),
        Counter("WriteSize", _MEM, lambda c: c.cache.dram_write_bytes / 1024.0),
        Counter(
            "VFetchInsts",
            _MEM,
            lambda c: (c.work.gld_bytes / 8.0) / max(c.work.warps / 2.0, 1.0),
        ),
        Counter(
            "VWriteInsts",
            _MEM,
            lambda c: (c.work.gst_bytes / 8.0) / max(c.work.warps / 2.0, 1.0),
        ),
        Counter(
            "CacheHit",
            _MEM,
            lambda c: 100.0 * c.spec.traits.cache_factor * c.work.locality,
            noise_cv=0.01,
        ),
        Counter(
            "L1CacheHit",
            _MEM,
            lambda c: 60.0 * c.spec.traits.cache_factor * c.work.locality,
            noise_cv=0.01,
        ),
    ]
    for i, weight in enumerate(_SUBP8):
        memory.extend(
            [
                Counter(
                    f"TCC_HIT_ch{i}",
                    _MEM,
                    _split(lambda c: c.cache.l2_queries - c.cache.l2_misses, weight),
                ),
                Counter(
                    f"TCC_MISS_ch{i}",
                    _MEM,
                    _split(lambda c: c.cache.l2_misses, weight),
                ),
                Counter(
                    f"TCC_EA_RDREQ_ch{i}",
                    _MEM,
                    _split(_fb_reads, weight),
                    noise_cv=0.02,
                ),
                Counter(
                    f"TCC_EA_WRREQ_ch{i}",
                    _MEM,
                    _split(_fb_writes, weight),
                    noise_cv=0.02,
                ),
            ]
        )
    return tuple(core + memory)


_COUNTER_SETS: dict[str, tuple[Counter, ...]] = {}


def counter_set(name: str) -> tuple[Counter, ...]:
    """Return the counter set of a generation (``tesla``/``fermi``/``kepler``)."""
    if not _COUNTER_SETS:
        _COUNTER_SETS["tesla"] = _tesla_counters()
        _COUNTER_SETS["fermi"] = _fermi_counters()
        _COUNTER_SETS["kepler"] = _kepler_counters()
        _COUNTER_SETS["gcn"] = _gcn_counters()
    try:
        return _COUNTER_SETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown counter set {name!r}; available: tesla, fermi, kepler, gcn"
        ) from None


def counter_set_size(name: str) -> int:
    """Number of counters in a generation's set (paper: 32 / 74 / 108)."""
    return len(counter_set(name))
