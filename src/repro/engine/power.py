"""Physical GPU power model (DC side of the card).

Power decomposes into the card's four sinks:

* static/board power, scaling super-linearly with core voltage
  (``V**leakage_exponent`` — leakage);
* core-domain dynamic power ``~ u_core * (V/V_H)**2 * (f/f_H)``;
* memory-domain background power ``~ (Vm/Vm_H)**2 * (fm/fm_H)``
  (interface clocking — what memory DVFS actually saves);
* traffic-proportional DRAM access energy (J/GB), voltage- but not
  frequency-scaled — moving a byte costs the same charge at any clock.

The statistical model of the paper (Eq. 1) approximates all of this with
terms linear in ``counter * frequency``; the voltage squaring, the
leakage exponent and the per-benchmark unmodeled structure injected by
the simulator are what keep its R-squared realistic (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dvfs import ClockLevel, OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import CacheOutcome
from repro.engine.timing import TimingBreakdown


@dataclass(frozen=True)
class PowerBreakdown:
    """Ground-truth GPU power decomposition during kernel execution (W)."""

    static_w: float
    core_dynamic_w: float
    mem_background_w: float
    dram_access_w: float

    @property
    def total(self) -> float:
        """Total card power while the kernel runs."""
        return (
            self.static_w
            + self.core_dynamic_w
            + self.mem_background_w
            + self.dram_access_w
        )


def _static_power(spec: GPUSpec, op: OperatingPoint) -> float:
    v_rel = op.core_voltage / spec.core_vdd.at(ClockLevel.H)
    return spec.power.board_static_w * v_rel**spec.power.leakage_exponent


def _mem_background(spec: GPUSpec, op: OperatingPoint) -> float:
    vm_rel = op.mem_voltage / spec.mem_vdd.at(ClockLevel.H)
    fm_rel = op.mem_mhz / spec.mem_freq(ClockLevel.H)
    return spec.power.mem_background_w * vm_rel**2 * fm_rel


def idle_gpu_power(spec: GPUSpec, op: OperatingPoint) -> float:
    """Card power when booted at ``op`` but not running kernels.

    Between kernels the card clock-gates aggressively: most of the
    memory-interface and core clock trees stop toggling regardless of the
    pinned clocks, so idle power is dominated by voltage-dependent
    leakage.  (This is why long host/transfer phases contribute energy
    that barely depends on the chosen frequency pair.)
    """
    v_rel = op.core_voltage / spec.core_vdd.at(ClockLevel.H)
    f_rel = op.core_mhz / spec.core_freq(ClockLevel.H)
    clock_tree = 0.04 * spec.power.core_dyn_w * v_rel**2 * f_rel
    gated_mem = 0.20 * _mem_background(spec, op)
    return _static_power(spec, op) + gated_mem + clock_tree


def simulate_power(
    cache: CacheOutcome,
    timing: TimingBreakdown,
    spec: GPUSpec,
    op: OperatingPoint,
) -> PowerBreakdown:
    """Ground-truth card power while the kernel is executing."""
    v_rel = op.core_voltage / spec.core_vdd.at(ClockLevel.H)
    f_rel = op.core_mhz / spec.core_freq(ClockLevel.H)
    vm_rel = op.mem_voltage / spec.mem_vdd.at(ClockLevel.H)
    core_dyn = (
        spec.power.core_dyn_w * timing.core_utilization * v_rel**2 * f_rel
    )
    traffic_gb_s = (
        cache.dram_bytes / 1e9 / timing.t_kernel if timing.t_kernel > 0 else 0.0
    )
    dram_access = spec.power.dram_access_j_per_gb * traffic_gb_s * vm_rel**2
    return PowerBreakdown(
        static_w=_static_power(spec, op),
        core_dynamic_w=core_dyn,
        mem_background_w=_mem_background(spec, op),
        dram_access_w=dram_access,
    )
