"""Warp-scheduler efficiency model.

Maps a kernel's occupancy and branch divergence, together with the
generation's issue machinery, to the fraction of peak issue bandwidth the
kernel actually achieves.  This is deliberately coarse — the paper's
models never see these internals, only their consequences through the
counters — but the *cross-generation ordering* matters: Tesla's scalar
issue suffers most from divergence (its profiler exposes
``warp_serialize`` for a reason), Kepler's quad scheduler least.
"""

from __future__ import annotations

from repro.arch.architecture import ArchTraits


def occupancy_efficiency(occupancy: float) -> float:
    """Issue efficiency attained at a given achieved occupancy.

    Latency hiding saturates well below 100% occupancy (a handful of
    resident warps already covers ALU latency), hence the concave shape.
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    return occupancy**0.4


def divergence_efficiency(divergence: float, traits: ArchTraits) -> float:
    """Issue efficiency retained under branch divergence.

    A warp that diverges serializes its paths; the per-generation
    ``divergence_penalty`` scales how much of that serialization reaches
    the issue stage.
    """
    if not 0.0 <= divergence <= 1.0:
        raise ValueError(f"divergence must be in [0, 1], got {divergence}")
    return 1.0 / (1.0 + 2.0 * divergence * traits.divergence_penalty)


def scheduler_efficiency(
    occupancy: float, divergence: float, traits: ArchTraits
) -> float:
    """Combined fraction of peak issue bandwidth achieved by a kernel."""
    return (
        traits.issue_efficiency
        * occupancy_efficiency(occupancy)
        * divergence_efficiency(divergence, traits)
    )
