"""Execution and physics simulator — the "hardware" under test.

``GPUSimulator`` boots a card from a VBIOS image and runs kernel
workloads, producing :class:`~repro.engine.simulator.RunRecord` objects
that carry ground-truth timing, power and activity.  The measurement
instruments in :mod:`repro.instruments` observe those records the way the
paper's equipment observed the real machines — through a wall-power meter
and the CUDA profiler's counters.
"""

from repro.engine.cache import CacheOutcome, simulate_cache
from repro.engine.occupancy import scheduler_efficiency
from repro.engine.timing import TimingBreakdown, simulate_timing
from repro.engine.power import PowerBreakdown, simulate_power, idle_gpu_power
from repro.engine.counters import (
    Counter,
    CounterDomain,
    RunContext,
    counter_set,
    counter_set_size,
)
from repro.engine.simulator import GPUSimulator, RunRecord

__all__ = [
    "CacheOutcome",
    "simulate_cache",
    "scheduler_efficiency",
    "TimingBreakdown",
    "simulate_timing",
    "PowerBreakdown",
    "simulate_power",
    "idle_gpu_power",
    "Counter",
    "CounterDomain",
    "RunContext",
    "counter_set",
    "counter_set_size",
    "GPUSimulator",
    "RunRecord",
]
