"""Analytical kernel timing model.

Execution time is the generalized mean of a compute-side and a
memory-side time, plus launch and host overheads:

``t_kernel = (t_compute**p + t_dram**p) ** (1/p)``

with the per-generation overlap exponent ``p`` (higher = better latency
hiding; ``p -> inf`` recovers the roofline ``max``).  Both sides scale
with their own clock domain, which is exactly the structure the paper's
Eq. 2 assumes — the *deviation* between this ground truth and a purely
linear model (overlap, launch overhead, host time) is what limits the
regression's accuracy, as observed in Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dvfs import ClockLevel, OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import CacheOutcome
from repro.engine.occupancy import scheduler_efficiency
from repro.kernels.profile import WorkProfile

#: Double-precision throughput penalty (consumer cards run DP at a small
#: fraction of SP rate; exact ratios vary by generation but all are poor).
DP_PENALTY = 10.0
#: SFU operations cost several SP slots.
SFU_WEIGHT = 4.0
#: Integer ops share the SP pipelines at slightly lower density.
INT_WEIGHT = 0.8
#: Shared-memory instructions occupy issue slots.
SHARED_WEIGHT = 0.5
#: Atomics serialize; each costs many slots.
ATOM_WEIGHT = 20.0
#: Fraction of peak DRAM bandwidth attainable by a perfect stream.
STREAM_EFFICIENCY = 0.88
#: Request-issue headroom: how much DRAM bandwidth the SMs can demand at
#: the High core clock, relative to the card's peak.  Below 1.0x the
#: memory system is never saturated; the ratio scales with core clock,
#: which is why memory-bound kernels still lose performance when the
#: core domain is down-clocked (Fig. 2: Streamcluster's Mem-H line keeps
#: improving with core frequency).
ISSUE_BW_HEADROOM = 1.15


@dataclass(frozen=True)
class TimingBreakdown:
    """Ground-truth timing decomposition of one run."""

    #: Compute-side time at this operating point (seconds).
    t_compute: float
    #: DRAM-side time (seconds).
    t_memory: float
    #: Combined in-kernel time including overlap (seconds).
    t_kernel: float
    #: Launch overhead (seconds).
    t_launch: float
    #: Host-device PCIe transfer time (seconds) — scales with neither
    #: clock domain and is invisible to kernel-level counters.
    t_transfer: float
    #: Host-side time (seconds).
    t_host: float

    @property
    def t_gpu(self) -> float:
        """GPU-busy time: kernels plus launch overhead."""
        return self.t_kernel + self.t_launch

    @property
    def total(self) -> float:
        """End-to-end run time as the paper's wall measurements see it."""
        return self.t_gpu + self.t_transfer + self.t_host

    @property
    def core_utilization(self) -> float:
        """Fraction of kernel time the compute pipelines are busy."""
        return min(1.0, self.t_compute / self.t_kernel) if self.t_kernel else 0.0

    @property
    def memory_utilization(self) -> float:
        """Fraction of kernel time the DRAM interface is busy."""
        return min(1.0, self.t_memory / self.t_kernel) if self.t_kernel else 0.0


def compute_work_ops(work: WorkProfile) -> float:
    """Issue-weighted operation count of a run (SP-op equivalents)."""
    return (
        work.flops
        + work.dp_flops * DP_PENALTY
        + work.int_ops * INT_WEIGHT
        + work.sfu_ops * SFU_WEIGHT
        + (work.shared_loads + work.shared_stores) * SHARED_WEIGHT
        + work.atom_ops * ATOM_WEIGHT
    )


def simulate_timing(
    work: WorkProfile,
    cache: CacheOutcome,
    spec: GPUSpec,
    op: OperatingPoint,
) -> TimingBreakdown:
    """Ground-truth timing of one run at one operating point."""
    sched = scheduler_efficiency(work.occupancy, work.divergence, spec.traits)
    t_compute = compute_work_ops(work) / (spec.peak_flops(op) * sched)
    # DRAM time is bound by the slower of the memory system itself and the
    # rate at which the cores can put requests in flight (MWP-style limit:
    # scales with core clock and, weakly, with occupancy).
    core_rel = op.core_mhz / spec.core_freq(ClockLevel.H)
    issue_bw = (
        ISSUE_BW_HEADROOM
        * core_rel
        * work.occupancy**0.3
        * spec.mem_bandwidth_gbs
        * 1e9
    )
    # Streaming (coalesced) traffic scales linearly with the interface
    # clock; scattered traffic is bound by CAS/row latency and only
    # partially benefits from a faster interface, so its effective
    # bandwidth scales sublinearly with memory frequency.
    mem_rel = op.mem_mhz / spec.mem_freq(ClockLevel.H)
    freq_exponent = 0.45 + 0.55 * work.coalescing
    mem_bw = (
        spec.mem_bandwidth_gbs * 1e9 * mem_rel**freq_exponent * STREAM_EFFICIENCY
    )
    t_memory = cache.dram_bytes / min(mem_bw, issue_bw)
    p = spec.traits.overlap_exponent
    t_kernel = (t_compute**p + t_memory**p) ** (1.0 / p)
    t_launch = work.launches * spec.traits.launch_overhead_s
    t_transfer = work.pcie_bytes / (spec.traits.pcie_gb_s * 1e9)
    return TimingBreakdown(
        t_compute=t_compute,
        t_memory=t_memory,
        t_kernel=t_kernel,
        t_launch=t_launch,
        t_transfer=t_transfer,
        t_host=work.host_seconds,
    )
