"""Columnar batch evaluation of (benchmark x frequency-pair) grids.

The paper's campaigns are grid-shaped: every benchmark at every Table
III operating point, at several input scales.  The scalar path walks
that grid one ``GPUSimulator.run`` at a time, re-seeding five noise
streams per cell at ~16us each.  :class:`BatchSimulator` evaluates the
same grid columnarly:

* stream seeding is vectorized across the whole grid
  (:class:`repro.rng.StreamBank`), and
* every pure intermediate (work profile, cache outcome, the full run
  record) is memoized per cell, so re-evaluating a grid — the shape of
  every bench repeat and every warm campaign — costs dictionary lookups.

Parity is structural, not approximate: each cell calls the **same**
scalar physics functions (``simulate_cache``, ``simulate_timing``,
``simulate_power``, ``solve_thermal``) with the same float inputs, and
draws noise from generators bit-identical to ``repro.rng.stream``.  A
:class:`BatchSimulator` record is therefore byte-for-byte the record
``GPUSimulator.run`` produces for the same cell
(tests/test_batch_parity.py asserts this over random grids).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.cache import simulate_cache
from repro.engine.noise import lognormal_factor
from repro.engine.power import idle_gpu_power, simulate_power
from repro.engine.simulator import RunRecord, _cpi_cv
from repro.engine.thermal import solve_thermal
from repro.engine.timing import simulate_timing
from repro.kernels.profile import KernelSpec
from repro.rng import StreamBank, stable_hash

#: One grid cell: (kernel, input scale, operating point).
Cell = "tuple[KernelSpec, float, OperatingPoint]"

#: Cap on the identity-keyed fingerprint memo (defensive; real runs hold
#: a handful of specs, test suites churn through many).
_FP_CAP = 4096

_CONTENT_FPS: dict[int, tuple[Any, int]] = {}


def content_fingerprint(obj: Any) -> int:
    """Stable content hash of a frozen spec, memoized by identity.

    ``repr`` of a frozen dataclass enumerates every field
    deterministically, so the hash changes whenever the spec's content
    does — the property the batch memos key on.
    """
    entry = _CONTENT_FPS.get(id(obj))
    if entry is None or entry[0] is not obj:
        if len(_CONTENT_FPS) >= _FP_CAP:
            _CONTENT_FPS.clear()
        entry = (obj, stable_hash(repr(obj)))
        _CONTENT_FPS[id(obj)] = entry
    return entry[1]


class BatchSimulator:
    """Grid-shaped, memoizing counterpart of :class:`GPUSimulator`.

    Unlike the scalar simulator there is no "currently flashed" clock
    state: every cell names its operating point explicitly, which is
    what makes cells independent and the grid embarrassingly columnar.

    Parameters
    ----------
    spec:
        The card every cell of this simulator's grids runs on.
    seed:
        Optional override of the global noise seed (as in ``stream``).
    ambient_c:
        Ambient temperature of the thermal solve.
    """

    def __init__(
        self, spec: GPUSpec, seed: int | None = None, ambient_c: float = 25.0
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.ambient_c = ambient_c
        self.streams = StreamBank(seed)
        self._works: dict[tuple, Any] = {}
        self._caches: dict[tuple, Any] = {}
        self._records: dict[tuple, RunRecord] = {}
        self._idle_power: dict[str, float] = {}

    # ------------------------------------------------------------------
    # vectorized seeding
    # ------------------------------------------------------------------

    def cell_stream_coords(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> list[tuple]:
        """The noise-stream coordinates one cell draws from."""
        g, k = self.spec.name, kernel.name
        return [
            ("timing-jitter", g, k, scale, op.key),
            ("cpi-fixed-effect", g, k),
            ("driver-overhead", g, k, scale),
            ("power-fixed-effect", g, k),
            ("power-pair-effect", g, k, op.key),
        ]

    def prepare(
        self, cells: Iterable["tuple[KernelSpec, float, OperatingPoint]"]
    ) -> None:
        """Vector-seed every stream the given grid cells will draw."""
        coords: list[tuple] = []
        for kernel, scale, op in cells:
            if self._record_key(kernel, scale, op) not in self._records:
                coords.extend(self.cell_stream_coords(kernel, scale, op))
        self.streams.prepare(coords)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _record_key(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> tuple:
        return (content_fingerprint(kernel), scale, op.key)

    def work_profile(self, kernel: KernelSpec, scale: float):
        """Memoized ``kernel.work(scale)``."""
        key = (content_fingerprint(kernel), scale)
        work = self._works.get(key)
        if work is None:
            work = self._works[key] = kernel.work(scale)
        return work

    def cache_outcome(self, kernel: KernelSpec, scale: float):
        """Memoized ``simulate_cache`` for a (kernel, scale) column."""
        key = (content_fingerprint(kernel), scale)
        outcome = self._caches.get(key)
        if outcome is None:
            work = self.work_profile(kernel, scale)
            outcome = self._caches[key] = simulate_cache(work, self.spec)
        return outcome

    def record(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> RunRecord:
        """The cell's run record, byte-identical to ``GPUSimulator.run``."""
        key = self._record_key(kernel, scale, op)
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = self._evaluate(kernel, scale, op)
        return record

    def run_grid(
        self,
        cells: Sequence["tuple[KernelSpec, float, OperatingPoint]"],
    ) -> list[RunRecord]:
        """Evaluate a whole grid: vector-seed once, then fill every cell."""
        self.prepare(cells)
        return [self.record(kernel, scale, op) for kernel, scale, op in cells]

    def _evaluate(
        self, kernel: KernelSpec, scale: float, op: OperatingPoint
    ) -> RunRecord:
        # Mirrors GPUSimulator.run exactly: same functions, same float
        # inputs, same draw order within each stream.
        spec = self.spec
        work = self.work_profile(kernel, scale)
        cache = self.cache_outcome(kernel, scale)
        timing = simulate_timing(work, cache, spec, op)
        power = simulate_power(cache, timing, spec, op)

        traits = spec.traits
        g, k = spec.name, kernel.name
        streams = self.streams
        jitter = lognormal_factor(
            streams.stream("timing-jitter", g, k, scale, op.key),
            traits.timing_jitter_cv,
        )
        cpi = lognormal_factor(
            streams.stream("cpi-fixed-effect", g, k), _cpi_cv(kernel, traits)
        )
        overhead_s = traits.driver_overhead_s * float(
            streams.stream("driver-overhead", g, k, scale).uniform(0.25, 2.75)
        )
        cv = traits.unmodeled_power_cv
        fixed = lognormal_factor(
            streams.stream("power-fixed-effect", g, k), cv * 0.9
        )
        interaction = lognormal_factor(
            streams.stream("power-pair-effect", g, k, op.key), cv * 0.10
        )
        dynamic = (
            power.core_dynamic_w + power.mem_background_w + power.dram_access_w
        )
        thermal = solve_thermal(
            spec,
            dynamic_w=dynamic * fixed * interaction,
            static_w=power.static_w,
            ambient_c=self.ambient_c,
        )
        kernel_seconds = timing.t_kernel * jitter * cpi
        total_seconds = (
            kernel_seconds
            + timing.t_launch
            + timing.t_transfer
            + timing.t_host
            + overhead_s
        )
        idle_w = self._idle_power.get(op.key)
        if idle_w is None:
            idle_w = self._idle_power[op.key] = idle_gpu_power(spec, op)
        return RunRecord(
            gpu=spec,
            kernel=kernel,
            scale=scale,
            op=op,
            work=work,
            cache=cache,
            timing=timing,
            power=power,
            kernel_seconds=kernel_seconds,
            overhead_seconds=overhead_s,
            total_seconds=total_seconds,
            gpu_active_power_w=thermal.power_w,
            gpu_idle_power_w=idle_w,
            die_temp_c=thermal.die_c,
            throttling=thermal.throttling,
        )


#: Process-local shared simulators, keyed by (card content, seed).
_SHARED: dict[tuple[int, int | None], BatchSimulator] = {}

#: Cap on the shared-simulator memo (tests churn seeds; campaigns don't).
_SHARED_CAP = 64


def shared_batch_simulator(
    spec: GPUSpec, seed: int | None = None
) -> BatchSimulator:
    """This process's memoized batch simulator for a (card, seed).

    Only default ambient temperature is memoized here — construct a
    :class:`BatchSimulator` directly for custom thermal environments.
    """
    key = (content_fingerprint(spec), seed)
    sim = _SHARED.get(key)
    if sim is None:
        if len(_SHARED) >= _SHARED_CAP:
            _SHARED.clear()
        sim = _SHARED[key] = BatchSimulator(spec, seed=seed)
    return sim
