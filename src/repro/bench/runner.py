"""The benchmark runner: warmup, fingerprint, calibration, timed repeats.

One workload run proceeds in strictly separated stages so the reported
numbers mean what they claim:

1. **setup** builds the expensive inputs outside every timed region;
2. **warmup** absorbs one-time costs (testbed boot, import tails,
   allocator growth) that belong to neither the timing nor the
   fingerprint;
3. **fingerprint** executes the workload exactly once under a fresh
   :class:`~repro.telemetry.Telemetry` context; the deterministic
   counters it accumulates — merged with the workload's own ``work``
   quantities — become the record's unit-of-work signature.  Two runs
   at the same seed produce byte-identical fingerprints, so a timing
   improvement with a changed fingerprint is "it did less work", not
   "it got faster";
4. **calibration** batches sub-resolution workloads into multi-
   invocation samples (see :mod:`repro.bench.stats`);
5. **timed repeats** collect one wall-clock sample per repeat, with no
   telemetry active, summarized by the outlier-robust
   :class:`~repro.telemetry.timing.TimingSummary`.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.bench.registry import Workload, workloads
from repro.bench.stats import TimingSummary, calibrate_iterations, timer_resolution
from repro.telemetry.runtime import Telemetry

#: Repeat cap applied by ``--quick`` (CI smoke; statistics are rough).
QUICK_REPEATS = 3

#: Warmup cap applied by ``--quick``.
QUICK_WARMUP = 1


@dataclass(frozen=True)
class RunnerConfig:
    """How a suite run executes its workloads."""

    #: Noise seed threaded into every workload setup (fingerprints are
    #: deterministic per seed).
    seed: int | None = 0
    #: Trim repeats/warmup for CI smoke runs.
    quick: bool = False
    #: Override every workload's repeat count (highest precedence).
    repeats: int | None = None
    #: Calibration floor for one timed sample.
    min_sample_s: float = 0.01
    #: Cap on invocations batched per sample.
    max_iterations: int = 1000
    timer: Callable[[], float] = time.perf_counter

    def repeats_for(self, workload: Workload) -> int:
        if self.repeats is not None:
            return max(1, self.repeats)
        if self.quick:
            return min(workload.repeats, QUICK_REPEATS)
        return workload.repeats

    def warmup_for(self, workload: Workload) -> int:
        if self.quick:
            return min(workload.warmup, QUICK_WARMUP)
        return workload.warmup


@dataclass(frozen=True)
class WorkloadRecord:
    """Everything ``BENCH_*.json`` stores about one workload run."""

    name: str
    group: str
    title: str
    repeats: int
    warmup: int
    iterations: int
    #: Outlier-robust summary of the per-invocation samples (seconds).
    timing: TimingSummary
    #: Deterministic unit-of-work signature: telemetry counters from the
    #: fingerprint invocation plus the workload's ``work`` quantities
    #: (prefixed ``work.``).
    fingerprint: dict[str, Any]

    def document(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "iterations": self.iterations,
            "timing_s": self.timing.document(),
            "fingerprint": dict(sorted(self.fingerprint.items())),
        }


def fingerprint_workload(
    fn: Callable[[Telemetry | None], Any], workload: Workload
) -> dict[str, Any]:
    """One instrumented invocation -> the deterministic work signature."""
    telemetry = Telemetry()
    result = fn(telemetry)
    # Worker-process accounting (``worker.*``) depends on scheduling and
    # pool reuse, never on the work done — keep it out of the signature.
    signature: dict[str, Any] = {
        key: value
        for key, value in telemetry.metrics.snapshot()["counters"].items()
        if not key.startswith("worker.")
    }
    if workload.work is not None:
        for key, value in workload.work(result).items():
            signature[f"work.{key}"] = value
    return signature


def run_workload(
    workload: Workload,
    config: RunnerConfig | None = None,
    resolution_s: float | None = None,
) -> WorkloadRecord:
    """Execute one workload through all stages and record it."""
    if config is None:
        config = RunnerConfig()
    if resolution_s is None:
        resolution_s = timer_resolution(config.timer)
    workdir = pathlib.Path(
        tempfile.mkdtemp(prefix=f"repro-bench-{workload.name.replace('.', '-')}-")
    )
    try:
        fn = workload.setup(config.seed, workdir)
        for _ in range(config.warmup_for(workload)):
            fn(None)
        fingerprint = fingerprint_workload(fn, workload)
        iterations = 1
        if workload.calibrate and not config.quick:
            iterations = calibrate_iterations(
                lambda: fn(None),
                timer=config.timer,
                min_sample_s=config.min_sample_s,
                max_iterations=config.max_iterations,
                resolution_s=resolution_s,
            )
        repeats = config.repeats_for(workload)
        samples = []
        for _ in range(repeats):
            start = config.timer()
            for _ in range(iterations):
                fn(None)
            samples.append((config.timer() - start) / iterations)
        timing = TimingSummary.from_samples(samples)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return WorkloadRecord(
        name=workload.name,
        group=workload.group,
        title=workload.title,
        repeats=repeats,
        warmup=config.warmup_for(workload),
        iterations=iterations,
        timing=timing,
        fingerprint=fingerprint,
    )


def run_suite(
    config: RunnerConfig | None = None,
    only: tuple[str, ...] | None = None,
    group: str | None = None,
    progress: Callable[[WorkloadRecord], None] | None = None,
) -> list[WorkloadRecord]:
    """Run the registered workloads (optionally a named subset), in order."""
    if config is None:
        config = RunnerConfig()
    selected = [w for w in workloads(group) if only is None or w.name in only]
    if only is not None:
        known = {w.name for w in workloads(group)}
        missing = sorted(set(only) - known)
        if missing:
            raise KeyError(f"unknown workloads: {', '.join(missing)}")
    resolution_s = timer_resolution(config.timer)
    records = []
    for workload in selected:
        record = run_workload(workload, config, resolution_s=resolution_s)
        records.append(record)
        if progress is not None:
            progress(record)
    return records
