"""Performance observability: the library's own benchmark harness.

The paper's contribution is a measurement methodology; this package
applies the same discipline to the reproduction substrate itself.  It
registers calibrated workloads for the library's hot paths (simulator
runs, metered measurements, profiler passes, sweeps, dataset builds,
model selection, and the execution engine's cached-vs-cold batches),
times them with warmup and repeats, and reports outlier-robust
statistics alongside *deterministic* work-counter fingerprints pulled
from the :mod:`repro.telemetry` metrics registry — so every recorded
timing is paired with an invariant unit-of-work signature that detects
"it got faster because it did less work".

Artifacts are schema-versioned ``BENCH_components.json`` /
``BENCH_pipeline.json`` documents written by ``repro bench run`` and
gated by ``repro bench compare`` (non-zero exit past a configurable
median-regression threshold).  See docs/BENCHMARKS.md.
"""

from repro.bench.compare import (
    CompareReport,
    WorkloadDelta,
    compare_documents,
    render_report,
)
from repro.bench.registry import Workload, get_workload, groups, workloads
from repro.bench.runner import RunnerConfig, WorkloadRecord, run_suite, run_workload
from repro.bench.schema import (
    BENCH_FORMAT,
    BENCH_SCHEMA,
    bench_document,
    bench_filename,
    load_bench_json,
    write_bench_json,
)
from repro.bench.stats import TimingSummary, calibrate_iterations, timer_resolution

__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA",
    "CompareReport",
    "RunnerConfig",
    "TimingSummary",
    "Workload",
    "WorkloadDelta",
    "WorkloadRecord",
    "bench_document",
    "bench_filename",
    "calibrate_iterations",
    "compare_documents",
    "get_workload",
    "groups",
    "load_bench_json",
    "render_report",
    "run_suite",
    "run_workload",
    "timer_resolution",
    "workloads",
    "write_bench_json",
]
