"""The ``BENCH_*.json`` artifact schema: versioned, provenance-stamped.

One artifact per workload group lands at the repository root:
``BENCH_components.json`` (single-operation microbenches) and
``BENCH_pipeline.json`` (multi-unit orchestrations).  Every document
carries:

* ``format`` / ``schema`` — artifact identity and schema version, so a
  reader can reject documents it does not understand;
* ``version`` — the package version that produced the numbers;
* ``provenance`` — host/python/platform identification, because a
  timing is meaningless without knowing where it was taken;
* ``config`` — seed, quick flag and timer resolution of the run;
* ``workloads`` — one record per workload: repeat/warmup/iteration
  counts, the outlier-robust ``timing_s`` summary (shared
  ``repro.telemetry.timing`` schema, in seconds) and the deterministic
  ``fingerprint``.

Only the fingerprints are byte-identical across runs at one seed; the
timings are wall-clock and the provenance is host-specific.  The
compare gate (:mod:`repro.bench.compare`) consumes exactly this split.
"""

from __future__ import annotations

import json
import pathlib
import platform
import socket
from typing import Any, Iterable

from repro._version import __version__
from repro.bench.runner import RunnerConfig, WorkloadRecord
from repro.bench.stats import timer_resolution

BENCH_FORMAT = "repro.bench"
BENCH_SCHEMA = 1

#: Artifact filename per workload group.
BENCH_FILENAMES = {
    "components": "BENCH_components.json",
    "pipeline": "BENCH_pipeline.json",
}


def bench_filename(group: str) -> str:
    """The canonical artifact filename of one workload group."""
    try:
        return BENCH_FILENAMES[group]
    except KeyError:
        known = ", ".join(sorted(BENCH_FILENAMES))
        raise KeyError(f"unknown group {group!r}; known: {known}") from None


def provenance_document() -> dict[str, Any]:
    """Host identification stamped into every artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "host": socket.gethostname(),
    }


def bench_document(
    group: str,
    records: Iterable[WorkloadRecord],
    config: RunnerConfig | None = None,
    resolution_s: float | None = None,
) -> dict[str, Any]:
    """Assemble the artifact document of one workload group."""
    if config is None:
        config = RunnerConfig()
    if resolution_s is None:
        resolution_s = timer_resolution(config.timer)
    selected = [r for r in records if r.group == group]
    return {
        "format": BENCH_FORMAT,
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "group": group,
        "provenance": provenance_document(),
        "config": {
            "seed": config.seed,
            "quick": config.quick,
            "timer_resolution_s": resolution_s,
        },
        "workloads": {r.name: r.document() for r in selected},
    }


def write_bench_json(
    path: str | pathlib.Path, document: dict[str, Any]
) -> pathlib.Path:
    """Write one artifact atomically (sorted keys, trailing newline)."""
    from repro.execution.cache import atomic_write_text

    text = json.dumps(document, indent=2, sort_keys=True)
    return atomic_write_text(path, text + "\n")


def load_bench_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Load and validate one artifact document.

    Raises
    ------
    ValueError
        When the file is not a ``repro.bench`` document or its schema
        version is newer than this reader understands.
    """
    path = pathlib.Path(path)
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("format") != BENCH_FORMAT:
        raise ValueError(f"{path} is not a {BENCH_FORMAT} document")
    schema = document.get("schema")
    if not isinstance(schema, int) or schema < 1 or schema > BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported schema version {schema!r} "
            f"(this reader understands 1..{BENCH_SCHEMA})"
        )
    if not isinstance(document.get("workloads"), dict):
        raise ValueError(f"{path}: missing workloads section")
    return document
