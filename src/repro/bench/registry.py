"""The workload registry: one list of hot paths, shared by both runners.

A :class:`Workload` packages everything the harness needs to time one
hot path reproducibly:

* ``setup(seed, workdir)`` builds the expensive inputs once (datasets,
  testbeds, unit lists) outside the timed region and returns the
  callable the runner times;
* the returned callable takes an optional
  :class:`~repro.telemetry.Telemetry` context — the runner passes one
  for the single *fingerprint* invocation (whose deterministic work
  counters become the record's unit-of-work signature) and ``None`` for
  warmup and timed repeats, so instrumentation never contaminates the
  timings;
* ``work(result)`` contributes workload-specific deterministic
  quantities (observation counts, selected-feature counts) that the
  telemetry counters alone would miss.

Both entry points — ``repro bench run`` and the pytest-benchmark
wrappers under ``benchmarks/`` — iterate this registry, so the two can
never drift apart on what "the hot paths" are.
"""

from __future__ import annotations

import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.telemetry.runtime import Telemetry, using_telemetry

#: A timed callable: ``fn(telemetry)`` runs the workload once, under the
#: given telemetry context when one is passed (fingerprint runs only).
WorkloadFn = Callable[[Telemetry | None], Any]

#: Group names, in artifact order.
GROUPS = ("components", "pipeline")


@dataclass(frozen=True)
class Workload:
    """One registered hot-path benchmark."""

    name: str
    #: Artifact group: ``components`` (single-operation microbenches) or
    #: ``pipeline`` (multi-unit orchestrations).
    group: str
    title: str
    #: ``setup(seed, workdir) -> fn``; ``workdir`` is a private scratch
    #: directory the runner deletes after the workload finishes.
    setup: Callable[[int | None, pathlib.Path], WorkloadFn]
    #: Extra deterministic work quantities derived from one result.
    work: Callable[[Any], dict[str, Any]] | None = None
    #: Timed repeats at full fidelity (quick mode trims this).
    repeats: int = 20
    #: Untimed warmup invocations before fingerprinting and timing.
    warmup: int = 2
    #: Whether the runner may batch several invocations per timed sample
    #: when one invocation is shorter than the calibration floor.
    calibrate: bool = True
    tags: tuple[str, ...] = field(default=())


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the registry (name must be unique)."""
    if workload.group not in GROUPS:
        raise ValueError(
            f"unknown group {workload.group!r}; expected one of {GROUPS}"
        )
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def workloads(group: str | None = None) -> tuple[Workload, ...]:
    """All registered workloads, optionally restricted to one group."""
    selected = [w for w in _REGISTRY.values() if group is None or w.group == group]
    return tuple(selected)


def get_workload(name: str) -> Workload:
    """Look up one workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def groups() -> tuple[str, ...]:
    """Groups that currently have at least one workload, in order."""
    present = {w.group for w in _REGISTRY.values()}
    return tuple(g for g in GROUPS if g in present)


def _ambient(call: Callable[[], Any]) -> WorkloadFn:
    """Wrap a thunk so a fingerprint telemetry context becomes ambient.

    Instrument-level code (testbed meter windows, profiler passes)
    reports into :func:`~repro.telemetry.current_telemetry`; making the
    runner's fingerprint context ambient routes those counters into the
    fingerprint without touching the timed path.
    """

    def fn(telemetry: Telemetry | None = None) -> Any:
        if telemetry is None:
            return call()
        with using_telemetry(telemetry):
            return call()

    return fn


# ----------------------------------------------------------------------
# component workloads: single-operation microbenches
# ----------------------------------------------------------------------


def _setup_simulator_run(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.engine.simulator import GPUSimulator
    from repro.kernels.suites import get_benchmark

    sim = GPUSimulator(get_gpu("GTX 680"), seed=seed)
    bench = get_benchmark("kmeans")
    return _ambient(lambda: sim.run(bench, 0.25))


def _work_simulator_run(record) -> dict[str, Any]:
    return {
        "pair": record.op.key,
        "kernel_seconds": float(record.kernel_seconds),
        "total_seconds": float(record.total_seconds),
    }


def _setup_testbed_measure(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.instruments.testbed import Testbed
    from repro.kernels.suites import get_benchmark

    testbed = Testbed(get_gpu("GTX 480"), seed=seed)
    bench = get_benchmark("hotspot")
    return _ambient(lambda: testbed.measure(bench, 0.25))


def _work_testbed_measure(m) -> dict[str, Any]:
    return {
        "repeats": int(m.repeats),
        "trace_samples": int(m.trace.num_samples),
        "energy_j": float(m.energy_j),
    }


def _setup_testbed_reflash(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.instruments.testbed import Testbed

    testbed = Testbed(get_gpu("GTX 480"), seed=seed)

    def cycle():
        testbed.set_clocks("M", "M")
        testbed.set_clocks("H", "H")

    return _ambient(cycle)


def _setup_profiler_kepler(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.engine.simulator import GPUSimulator
    from repro.instruments.profiler import CudaProfiler
    from repro.kernels.suites import get_benchmark

    sim = GPUSimulator(get_gpu("GTX 680"), seed=seed)
    profiler = CudaProfiler(seed=seed)
    bench = get_benchmark("kmeans")
    return _ambient(lambda: profiler.profile(sim, bench, 0.25))


def _work_profiler_kepler(totals) -> dict[str, Any]:
    return {"counters": len(totals)}


register(
    Workload(
        name="simulator.run",
        group="components",
        title="single GPUSimulator.run (GTX 680, kmeans)",
        setup=_setup_simulator_run,
        work=_work_simulator_run,
        repeats=30,
    )
)

register(
    Workload(
        name="testbed.measure",
        group="components",
        title="Testbed.measure with meter quorum (GTX 480, hotspot)",
        setup=_setup_testbed_measure,
        work=_work_testbed_measure,
        repeats=30,
    )
)

register(
    Workload(
        name="testbed.reflash",
        group="components",
        title="VBIOS reflash cycle M-M -> H-H (GTX 480)",
        setup=_setup_testbed_reflash,
        repeats=30,
    )
)

register(
    Workload(
        name="profiler.profile.kepler",
        group="components",
        title="CudaProfiler.profile over the 108-counter Kepler set",
        setup=_setup_profiler_kepler,
        work=_work_profiler_kepler,
        repeats=30,
    )
)


def _setup_governor_online_step(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.core.dataset import build_dataset
    from repro.experiments.ext_governor_online import stream_campaign
    from repro.kernels.suites import modeling_benchmarks
    from repro.session.context import RunContext

    ds = build_dataset(
        get_gpu("GTX 460"),
        benchmarks=modeling_benchmarks()[:8],
        ctx=RunContext.resolve(seed=seed),
    )
    governor = stream_campaign(ds)
    probe = ds.observations[0]

    # Clone per invocation: every re-plan starts from the identical
    # converged controller, so timings and the fingerprint are
    # independent of warmup/calibration invocation counts.
    def step():
        return governor.clone().decide(
            probe.benchmark, probe.scale, probe.counters
        )

    return _ambient(step)


def _work_governor_online_step(decision) -> dict[str, Any]:
    return {
        "pair": decision.op.key,
        "source": decision.source,
        "updates": decision.updates,
        "candidates": len(decision.predicted_energy_j or {}),
    }


register(
    Workload(
        name="governor.online.step",
        group="components",
        title="OnlineGovernor re-plan from a converged RLS model (GTX 460)",
        setup=_setup_governor_online_step,
        work=_work_governor_online_step,
        repeats=30,
    )
)


def _setup_bus_publish(seed, workdir):
    from repro.telemetry.bus import EventBus

    #: Envelopes per invocation — a realistic small campaign's worth.
    publishes = 1000

    def stream():
        # A fresh bus per invocation with the production subscriber
        # set: the NDJSON writer (same-path reopen overwrites) and the
        # flight-recorder ring — the exact per-event cost a ``--live
        # --flight-recorder`` campaign pays on its settle path.
        bus = EventBus()
        bus.attach_writer(workdir / "events.ndjson")
        bus.attach_flight_recorder(workdir / "flight.json")
        bus.phase_start("bench:publish", units=publishes)
        for i in range(publishes):
            bus.publish(
                "progress",
                {
                    "phase": "bench:publish",
                    "index": i,
                    "done": i + 1,
                    "total": publishes,
                    "cache_hit": False,
                    "failed": False,
                    "quarantined": False,
                },
            )
        stats = bus.stats()
        bus.close()
        return stats

    return _ambient(stream)


def _work_bus_publish(stats) -> dict[str, Any]:
    return {"published": stats["published"], "dropped": stats["dropped"]}


register(
    Workload(
        name="telemetry.bus.publish",
        group="components",
        title="EventBus: 1000 envelopes through writer + flight ring",
        setup=_setup_bus_publish,
        work=_work_bus_publish,
        repeats=30,
    )
)


# ----------------------------------------------------------------------
# pipeline workloads: multi-unit orchestrations
# ----------------------------------------------------------------------


def _setup_sweep_run(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.characterize.sweep import FrequencySweep
    from repro.kernels.suites import all_benchmarks
    from repro.session.context import RunContext

    gpu = get_gpu("GTX 480")
    benches = all_benchmarks()
    plain = FrequencySweep(gpu, RunContext.resolve(seed=seed))

    def fn(telemetry: Telemetry | None = None):
        if telemetry is None:
            return plain.run(benches, scale=0.25)
        ctx = RunContext.resolve(seed=seed, telemetry=telemetry)
        return FrequencySweep(gpu, ctx).run(benches, scale=0.25)

    return fn


def _work_sweep_run(table) -> dict[str, Any]:
    return {
        "benchmarks": len(table.benchmark_names),
        "cells": sum(len(cells) for cells in table.measurements.values()),
    }


def _setup_dataset_build(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.core.dataset import build_dataset
    from repro.kernels.suites import modeling_benchmarks
    from repro.session.context import RunContext

    gpu = get_gpu("GTX 460")
    benches = modeling_benchmarks()[:8]
    plain = RunContext.resolve(seed=seed)

    def fn(telemetry: Telemetry | None = None):
        ctx = (
            plain
            if telemetry is None
            else RunContext.resolve(seed=seed, telemetry=telemetry)
        )
        return build_dataset(gpu, benchmarks=benches, ctx=ctx)

    return fn


def _work_dataset_build(ds) -> dict[str, Any]:
    return {
        "observations": ds.n_observations,
        "samples": ds.n_samples,
        "exclusions": len(ds.exclusions),
        "counters": len(ds.counter_names),
    }


def _setup_forward_select(seed, workdir):
    from repro.arch.specs import get_gpu
    from repro.core.dataset import build_dataset
    from repro.core.features import power_feature_matrix
    from repro.core.selection import forward_select
    from repro.kernels.suites import modeling_benchmarks
    from repro.session.context import RunContext

    gpu = get_gpu("GTX 680")
    ds = build_dataset(
        gpu,
        benchmarks=modeling_benchmarks()[:8],
        ctx=RunContext.resolve(seed=seed),
    )
    X, names = power_feature_matrix(ds)
    y = ds.avg_power_w()
    return _ambient(lambda: forward_select(X, y, names, max_features=10))


def _work_forward_select(result) -> dict[str, Any]:
    return {
        "selected": len(result.selected),
        "steps": len(result.history),
        "features": ";".join(result.selected_names),
    }


def _engine_units(seed):
    from repro.arch.specs import get_gpu
    from repro.execution.units import sweep_units
    from repro.kernels.suites import all_benchmarks

    gpu = get_gpu("GTX 460")
    return sweep_units(gpu, all_benchmarks()[:6], scale=0.25, seed=seed)


def _work_run_units(outcome) -> dict[str, Any]:
    stats = outcome.stats
    return {
        "units": stats.total_units,
        "measured": stats.measured,
        "cache_hits": stats.cache_hits,
        "failed": stats.failed,
    }


def _make_engine_setup(jobs: int, cached: bool):
    def setup(seed, workdir):
        from repro.execution.engine import ExecutionConfig, run_units

        units = _engine_units(seed)
        counter = iter(range(10**9))

        def run(cache_dir, telemetry):
            config = ExecutionConfig(
                jobs=jobs, cache_dir=cache_dir, telemetry=telemetry
            )
            return run_units(units, config)

        if cached:
            warm_dir = workdir / "warm-cache"
            run(warm_dir, None)  # prewarm once, outside the timed region

            def fn(telemetry: Telemetry | None = None):
                return run(warm_dir, telemetry)

        else:

            def fn(telemetry: Telemetry | None = None):
                cold_dir = workdir / f"cold-{next(counter)}"
                try:
                    return run(cold_dir, telemetry)
                finally:
                    shutil.rmtree(cold_dir, ignore_errors=True)

        return fn

    return setup


register(
    Workload(
        name="sweep.run",
        group="pipeline",
        title="FrequencySweep.run, all 37 benchmarks (GTX 480)",
        setup=_setup_sweep_run,
        work=_work_sweep_run,
        repeats=10,
    )
)

register(
    Workload(
        name="dataset.build",
        group="pipeline",
        title="build_dataset, 8 modeling benchmarks (GTX 460)",
        setup=_setup_dataset_build,
        work=_work_dataset_build,
        repeats=10,
    )
)

register(
    Workload(
        name="selection.forward",
        group="pipeline",
        title="forward_select to the 10-variable cap (Kepler features)",
        setup=_setup_forward_select,
        work=_work_forward_select,
        repeats=10,
    )
)


def _make_grid_setup(scales: tuple[float, ...]):
    def setup(seed, workdir):
        from repro.arch.specs import get_gpu
        from repro.execution.engine import ExecutionConfig, run_units
        from repro.execution.units import sweep_units
        from repro.kernels.suites import all_benchmarks

        gpu = get_gpu("GTX 460")
        benches = all_benchmarks()[:6]
        units = []
        for scale in scales:
            units.extend(sweep_units(gpu, benches, scale=scale, seed=seed))

        def fn(telemetry: Telemetry | None = None):
            return run_units(units, ExecutionConfig(telemetry=telemetry))

        return fn

    return setup


#: Input scales for the 10x grid: 6 benchmarks x 7 pairs x 10 scales.
_GRID_SCALES_420 = tuple(round(0.1 * i, 1) for i in range(1, 11))

register(
    Workload(
        name="engine.batch.grid42",
        group="pipeline",
        title="columnar batch path, 42-cell grid (6 benchmarks x 7 pairs)",
        setup=_make_grid_setup((0.25,)),
        work=_work_run_units,
        repeats=10,
        warmup=1,
        calibrate=False,
        tags=("engine", "batch"),
    )
)

register(
    Workload(
        name="engine.batch.grid420",
        group="pipeline",
        title=(
            "columnar batch path, 420-cell grid "
            "(6 benchmarks x 7 pairs x 10 scales)"
        ),
        setup=_make_grid_setup(_GRID_SCALES_420),
        work=_work_run_units,
        repeats=5,
        warmup=1,
        calibrate=False,
        tags=("engine", "batch"),
    )
)


for _jobs in (1, 4):
    for _cached in (False, True):
        _mode = "cached" if _cached else "cold"
        _cache_word = "prewarmed" if _cached else "cold"
        register(
            Workload(
                name=f"engine.run_units.{_mode}.jobs{_jobs}",
                group="pipeline",
                title=(
                    f"run_units batch of 42 sweep units, {_cache_word} "
                    f"cache, jobs={_jobs}"
                ),
                setup=_make_engine_setup(_jobs, _cached),
                work=_work_run_units,
                repeats=10 if _jobs == 1 else 5,
                warmup=1,
                calibrate=False,
                tags=("engine",),
            )
        )


def _setup_engine_journal(seed, workdir):
    """Cold-cache serial batch with the write-ahead journal enabled.

    Each invocation gets a fresh cache tree *and* a fresh journal, so
    the timed region includes every fsync'd append — the durability
    tax the journal charges a campaign.
    """
    from repro.execution.engine import ExecutionConfig, run_units
    from repro.execution.journal import RunJournal

    units = _engine_units(seed)
    counter = iter(range(10**9))

    def fn(telemetry: Telemetry | None = None):
        index = next(counter)
        cold_dir = workdir / f"journal-cold-{index}"
        journal_path = workdir / f"journal-{index}.jsonl"
        journal = RunJournal(journal_path)
        try:
            return run_units(
                units,
                ExecutionConfig(
                    jobs=1,
                    cache_dir=cold_dir,
                    journal=journal,
                    telemetry=telemetry,
                ),
            )
        finally:
            journal.close()
            journal_path.unlink(missing_ok=True)
            shutil.rmtree(cold_dir, ignore_errors=True)

    return fn


register(
    Workload(
        name="engine.run_units.journal",
        group="pipeline",
        title=(
            "run_units batch of 42 sweep units, cold cache, "
            "write-ahead journal, jobs=1"
        ),
        setup=_setup_engine_journal,
        work=_work_run_units,
        repeats=10,
        warmup=1,
        calibrate=False,
        tags=("engine",),
    )
)


def _setup_fleet_place(seed, workdir):
    """Assemble the 1000-device tables once; time placement alone.

    Shard simulation and model training happen in setup — the timed
    region is the planner hot path a capped campaign re-runs per job
    stream: three policy placements plus report assembly.
    """
    from repro.fleet.campaign import (
        assemble_tables,
        fleet_report,
        job_mix,
    )
    from repro.fleet.fleet import Fleet
    from repro.fleet.model import template_prediction_table
    from repro.fleet.placement import place_all
    from repro.fleet.units import fleet_shard_units
    from repro.session.spec import FleetSpec

    spec = FleetSpec()
    payloads = [unit.execute() for unit in fleet_shard_units(spec, seed=seed)]
    fleet = Fleet.build(
        templates=spec.templates,
        count=spec.devices,
        cap_fraction=spec.cap_fraction,
        seed=seed,
        jitter_pct=spec.jitter_pct,
    )
    template_table = template_prediction_table(
        fleet.templates, spec.workloads, spec.scale, seed=seed
    )
    tables = assemble_tables(payloads, template_table, spec.workloads)
    jobs_per_class = job_mix(spec.workloads, spec.jobs_total, seed=seed)

    def call():
        outcomes = place_all(tables, jobs_per_class, fleet.power_cap_w)
        return fleet_report(
            fleet, spec.workloads, spec.scale, jobs_per_class, outcomes
        )

    return _ambient(call)


def _work_fleet_place(document) -> dict[str, Any]:
    policies = document["policies"]
    return {
        "devices": document["fleet"]["devices"],
        "jobs": document["jobs"]["total"],
        "active_model": policies["model"]["active_devices"],
        "active_naive": policies["naive"]["active_devices"],
        "reconfigurations": policies["model"]["reconfigurations"],
    }


register(
    Workload(
        name="fleet.place.1k",
        group="pipeline",
        title=(
            "fleet placement, 1000 devices x 100k jobs under a power cap "
            "(three policies + report)"
        ),
        setup=_setup_fleet_place,
        work=_work_fleet_place,
        repeats=10,
        warmup=1,
        calibrate=False,
        tags=("fleet",),
    )
)
