"""Timer calibration and robust statistics for the benchmark harness.

The statistics themselves live in :mod:`repro.telemetry.timing` — the
shared timing-stat schema ``metrics.json`` timings also follow — and
are re-exported here; this module adds the timer-side concerns:
measuring the clock's effective resolution and choosing how many
invocations to batch per timed sample so that sub-resolution workloads
still produce meaningful numbers.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.telemetry.timing import TimingSummary

__all__ = ["TimingSummary", "calibrate_iterations", "timer_resolution"]

#: Spins used to estimate the timer's effective resolution.
_RESOLUTION_SPINS = 25

#: A timed sample should span at least this many timer resolutions, so
#: quantization error stays under ~1%.
_RESOLUTION_MULTIPLE = 100.0


def timer_resolution(
    timer: Callable[[], float] = time.perf_counter, spins: int = _RESOLUTION_SPINS
) -> float:
    """Smallest positive delta the timer reports (median of spins)."""
    deltas = []
    for _ in range(spins):
        start = timer()
        end = timer()
        while end <= start:
            end = timer()
        deltas.append(end - start)
    deltas.sort()
    return deltas[len(deltas) // 2]


def calibrate_iterations(
    fn: Callable[[], object],
    timer: Callable[[], float] = time.perf_counter,
    min_sample_s: float = 0.01,
    max_iterations: int = 1000,
    resolution_s: float | None = None,
) -> int:
    """Pick the invocations batched into one timed sample.

    One probe invocation estimates the workload's cost; the sample size
    is then scaled so each sample spans at least ``min_sample_s`` *and*
    at least :data:`_RESOLUTION_MULTIPLE` timer resolutions.  Workloads
    already longer than the floor run one invocation per sample.
    """
    if resolution_s is None:
        resolution_s = timer_resolution(timer)
    floor_s = max(min_sample_s, resolution_s * _RESOLUTION_MULTIPLE)
    start = timer()
    fn()
    probe_s = max(timer() - start, resolution_s)
    if probe_s >= floor_s:
        return 1
    return max(1, min(max_iterations, math.ceil(floor_s / probe_s)))
