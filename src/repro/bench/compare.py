"""The regression gate: ``repro bench compare OLD NEW``.

Workloads are matched by name across two ``BENCH_*.json`` documents and
their **median** sample times compared — medians, because one scheduler
hiccup in either run must not flip the gate.  A workload regresses when
its median grew past the threshold (default 25%); it is *suspect* when
its deterministic fingerprint drifted, because then the two timings no
longer measure the same work and neither a regression nor an
improvement verdict is meaningful ("it got faster because it did less
work").

Exit semantics (see :func:`CompareReport.exit_code`): regressions fail
the gate; workloads present in OLD but deleted from NEW fail it only
under ``--fail-on-missing``; fingerprint drift and new workloads are
reported but do not fail the gate on their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Default regression threshold, in percent growth of the median.
DEFAULT_THRESHOLD_PCT = 25.0


@dataclass(frozen=True)
class WorkloadDelta:
    """Comparison of one workload across two documents."""

    name: str
    #: ``ok`` / ``regression`` / ``improved`` / ``suspect`` (fingerprint
    #: drift) / ``new`` (only in NEW) / ``missing`` (only in OLD).
    status: str
    old_median_s: float | None = None
    new_median_s: float | None = None
    #: Median growth in percent (positive = slower).
    delta_pct: float | None = None
    #: Fingerprint keys whose values differ (or exist on one side only).
    drifted_keys: tuple[str, ...] = ()

    @property
    def comparable(self) -> bool:
        return self.old_median_s is not None and self.new_median_s is not None


@dataclass(frozen=True)
class CompareReport:
    """Full outcome of one document comparison."""

    deltas: tuple[WorkloadDelta, ...]
    threshold_pct: float

    def by_status(self, status: str) -> tuple[WorkloadDelta, ...]:
        return tuple(d for d in self.deltas if d.status == status)

    @property
    def regressions(self) -> tuple[WorkloadDelta, ...]:
        return self.by_status("regression")

    @property
    def missing(self) -> tuple[WorkloadDelta, ...]:
        return self.by_status("missing")

    @property
    def suspects(self) -> tuple[WorkloadDelta, ...]:
        return self.by_status("suspect")

    def exit_code(
        self, fail_on_missing: bool = False, fail_on_drift: bool = False
    ) -> int:
        """The gate verdict: 0 passes, 1 fails.

        ``fail_on_drift`` turns fingerprint-drift suspects into gate
        failures — the enforcing-CI posture, where timings are host-
        dependent but the deterministic work signature is not, so drift
        is always a real behavior change.
        """
        if self.regressions:
            return 1
        if fail_on_missing and self.missing:
            return 1
        if fail_on_drift and self.suspects:
            return 1
        return 0


def _median_of(record: dict[str, Any]) -> float | None:
    timing = record.get("timing_s")
    if not isinstance(timing, dict):
        return None
    median = timing.get("median")
    return float(median) if isinstance(median, (int, float)) else None


def _drifted_keys(old: dict[str, Any], new: dict[str, Any]) -> tuple[str, ...]:
    old_fp = old.get("fingerprint") or {}
    new_fp = new.get("fingerprint") or {}
    keys = sorted(set(old_fp) | set(new_fp))
    return tuple(
        k
        for k in keys
        if k not in old_fp or k not in new_fp or old_fp[k] != new_fp[k]
    )


def compare_documents(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> CompareReport:
    """Compare two loaded ``BENCH_*.json`` documents workload by workload."""
    if threshold_pct <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold_pct}")
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    names = sorted(set(old_workloads) | set(new_workloads))
    deltas = []
    for name in names:
        old_record = old_workloads.get(name)
        new_record = new_workloads.get(name)
        if old_record is None:
            deltas.append(
                WorkloadDelta(
                    name=name,
                    status="new",
                    new_median_s=_median_of(new_record),
                )
            )
            continue
        if new_record is None:
            deltas.append(
                WorkloadDelta(
                    name=name,
                    status="missing",
                    old_median_s=_median_of(old_record),
                )
            )
            continue
        old_median = _median_of(old_record)
        new_median = _median_of(new_record)
        drifted = _drifted_keys(old_record, new_record)
        delta_pct = None
        if old_median and new_median is not None:
            delta_pct = (new_median / old_median - 1.0) * 100.0
        if drifted:
            status = "suspect"
        elif delta_pct is not None and delta_pct > threshold_pct:
            status = "regression"
        elif delta_pct is not None and delta_pct < -threshold_pct:
            status = "improved"
        else:
            status = "ok"
        deltas.append(
            WorkloadDelta(
                name=name,
                status=status,
                old_median_s=old_median,
                new_median_s=new_median,
                delta_pct=delta_pct,
                drifted_keys=drifted,
            )
        )
    return CompareReport(deltas=tuple(deltas), threshold_pct=threshold_pct)


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "n/a"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_report(report: CompareReport) -> str:
    """Fixed-width per-workload delta table plus a verdict line."""
    lines = [
        f"{'workload':32s} {'old median':>11s} {'new median':>11s} "
        f"{'delta':>8s}  status",
    ]
    for d in report.deltas:
        delta_text = (
            f"{d.delta_pct:+7.1f}%" if d.delta_pct is not None else f"{'n/a':>8s}"
        )
        lines.append(
            f"{d.name:32s} {_fmt_seconds(d.old_median_s):>11s} "
            f"{_fmt_seconds(d.new_median_s):>11s} {delta_text}  {d.status}"
        )
        if d.drifted_keys:
            drift = ", ".join(d.drifted_keys[:6])
            more = len(d.drifted_keys) - 6
            if more > 0:
                drift += f", +{more} more"
            lines.append(f"{'':32s} fingerprint drift: {drift}")
    n_reg = len(report.regressions)
    n_missing = len(report.missing)
    n_suspect = len(report.suspects)
    lines.append("")
    lines.append(
        f"threshold {report.threshold_pct:g}%: "
        f"{n_reg} regression(s), {n_missing} missing, "
        f"{n_suspect} fingerprint-drift suspect(s), "
        f"{len(report.by_status('improved'))} improved, "
        f"{len(report.by_status('new'))} new"
    )
    return "\n".join(lines)
