"""Section III characterization: frequency sweeps and energy optimality."""

from repro.characterize.sweep import FrequencySweep, SweepTable
from repro.characterize.efficiency import (
    BenchmarkCharacterization,
    best_operating_point,
    characterize_gpu,
    efficiency_improvement,
)

__all__ = [
    "FrequencySweep",
    "SweepTable",
    "BenchmarkCharacterization",
    "best_operating_point",
    "characterize_gpu",
    "efficiency_improvement",
]
