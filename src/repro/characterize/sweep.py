"""Full frequency-pair sweeps over benchmarks (the Section III campaign).

The paper measures every benchmark at every configurable (core, memory)
pair of every GPU with the maximum feasible input size.  A
:class:`FrequencySweep` reproduces that campaign for one card and returns
a :class:`SweepTable` from which Figs. 1-4 and Table IV are derived.

Sweeps decompose into one work unit per (benchmark, pair) and run on
the campaign execution engine (``repro.execution``): pass an
:class:`~repro.execution.ExecutionConfig` to spread the units over
worker processes and memoize them in the content-addressed result
cache.  Serial and parallel runs produce identical tables because every
noise stream is keyed by experimental coordinates, not by call order.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.specs import GPUSpec
from repro.execution.engine import (
    ExecutionConfig,
    ExecutionStats,
    UnitFailure,
    run_units,
)
from repro.execution.units import measurement_from_payload, sweep_units
from repro.faults.plan import FaultPlan
from repro.instruments.testbed import Measurement, Testbed
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import all_benchmarks
from repro.session.context import RunContext, legacy_context
from repro.telemetry.runtime import Telemetry


@dataclass(frozen=True)
class SweepTable:
    """All measurements of one sweep, indexed by (benchmark, pair)."""

    gpu: GPUSpec
    #: ``measurements[benchmark_name][pair_key]`` -> Measurement.
    measurements: Mapping[str, Mapping[str, Measurement]]

    @property
    def benchmark_names(self) -> tuple[str, ...]:
        """Benchmarks in the sweep, in insertion order."""
        return tuple(self.measurements)

    def pairs_for(self, benchmark: str) -> tuple[str, ...]:
        """Frequency-pair keys measured for a benchmark."""
        return tuple(self.measurements[benchmark])

    def at(self, benchmark: str, pair_key: str) -> Measurement:
        """One measurement."""
        return self.measurements[benchmark][pair_key]

    def default(self, benchmark: str) -> Measurement:
        """The (H-H) measurement the paper compares against."""
        return self.at(benchmark, "H-H")


class FrequencySweep:
    """Sweep runner for one GPU.

    Parameters
    ----------
    gpu:
        Card to characterize.
    ctx:
        The :class:`~repro.session.RunContext` the sweep runs under —
        seed, executor/cache selection, fault plan and telemetry in one
        normalized value.  Defaults to a plain context (serial,
        uncached, fault-free).  When the context carries a fault plan,
        runs degrade gracefully: failed (benchmark, pair) units are
        dropped from the table and recorded in :attr:`last_failures`
        instead of aborting the sweep.  When it carries telemetry, the
        sweep reports into it (a ``sweep`` phase span plus unit/loss
        counters).
    seed, faults, telemetry:
        Deprecated kwarg bundle; pass a ``ctx`` instead.  Kept as a
        compatibility shim for one release.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        ctx: RunContext | None = None,
        *,
        seed: int | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        legacy = legacy_context(
            "FrequencySweep", ctx=ctx, seed=seed, faults=faults,
            telemetry=telemetry,
        )
        if legacy is not None:
            ctx = legacy
        elif ctx is None:
            ctx = RunContext.resolve()
        #: The session context every run of this sweep executes under.
        self.ctx = ctx
        self.testbed = Testbed(gpu, seed=ctx.seed)
        #: Statistics of the most recent :meth:`run` (units, cache hits).
        self.last_stats: ExecutionStats | None = None
        #: Units of the most recent :meth:`run` that produced no
        #: measurement (fault injection / degrade mode only).
        self.last_failures: tuple[UnitFailure, ...] = ()

    @property
    def gpu(self) -> GPUSpec:
        """The card being swept."""
        return self.testbed.gpu

    def _run_ctx(
        self, execution: ExecutionConfig | None, api: str
    ) -> RunContext:
        """Fold the deprecated per-run execution override into a context."""
        if execution is None:
            return self.ctx
        warnings.warn(
            f"{api}: the execution keyword is deprecated; build the sweep "
            f"with ctx=RunContext.resolve(execution=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return self.ctx.derive(execution=execution)

    def run_benchmark(
        self,
        benchmark: KernelSpec,
        scale: float = 1.0,
        execution: ExecutionConfig | None = None,
    ) -> dict[str, Measurement]:
        """Measure one benchmark at every configurable pair."""
        ctx = self._run_ctx(execution, "FrequencySweep.run_benchmark")
        table = self._run([benchmark], scale, ctx)
        return dict(table.measurements[benchmark.name])

    def run(
        self,
        benchmarks: Sequence[KernelSpec] | None = None,
        scale: float = 1.0,
        execution: ExecutionConfig | None = None,
    ) -> SweepTable:
        """Measure a set of benchmarks (default: all 37) at every pair.

        ``scale=1.0`` is the paper's "maximum feasible input data size".
        The executor, worker count and result cache come from the
        sweep's :attr:`ctx`; ``execution`` is the deprecated per-run
        override.
        """
        ctx = self._run_ctx(execution, "FrequencySweep.run")
        return self._run(benchmarks, scale, ctx)

    def _run(
        self,
        benchmarks: Sequence[KernelSpec] | None,
        scale: float,
        ctx: RunContext,
    ) -> SweepTable:
        if benchmarks is None:
            benchmarks = all_benchmarks()
        telemetry = ctx.telemetry
        units = sweep_units(self.gpu, benchmarks, scale=scale, ctx=ctx)
        if telemetry is not None:
            bus = getattr(telemetry, "bus", None)
            if bus is not None:
                bus.phase_start(f"sweep:{self.gpu.name}", units=len(units))
            with telemetry.tracer.span(
                "sweep", kind="phase", gpu=self.gpu.name, units=len(units)
            ):
                outcome = run_units(units, ctx)
            telemetry.metrics.inc("sweep.units", len(units))
            telemetry.metrics.inc("sweep.lost", len(outcome.failures))
            if outcome.stats.quarantined:
                telemetry.metrics.inc(
                    "sweep.quarantined", outcome.stats.quarantined
                )
        else:
            outcome = run_units(units, ctx)
        self.last_stats = outcome.stats
        self.last_failures = outcome.failures
        table: dict[str, dict[str, Measurement]] = {
            bench.name: {} for bench in benchmarks
        }
        for unit, payload in zip(units, outcome.payloads):
            if payload is None:
                # Degrade mode: the unit failed; its cell stays empty
                # and the failure is recorded in ``last_failures``.
                continue
            table[unit.kernel.name][unit.pair] = measurement_from_payload(
                payload, self.gpu, unit.kernel
            )
        return SweepTable(gpu=self.gpu, measurements=table)
