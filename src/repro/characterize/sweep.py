"""Full frequency-pair sweeps over benchmarks (the Section III campaign).

The paper measures every benchmark at every configurable (core, memory)
pair of every GPU with the maximum feasible input size.  A
:class:`FrequencySweep` reproduces that campaign for one card and returns
a :class:`SweepTable` from which Figs. 1-4 and Table IV are derived.

Sweeps decompose into one work unit per (benchmark, pair) and run on
the campaign execution engine (``repro.execution``): pass an
:class:`~repro.execution.ExecutionConfig` to spread the units over
worker processes and memoize them in the content-addressed result
cache.  Serial and parallel runs produce identical tables because every
noise stream is keyed by experimental coordinates, not by call order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.specs import GPUSpec
from repro.execution.engine import (
    ExecutionConfig,
    ExecutionStats,
    UnitFailure,
    run_units,
)
from repro.execution.units import measurement_from_payload, sweep_units
from repro.faults.plan import FaultPlan
from repro.instruments.testbed import Measurement, Testbed
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import all_benchmarks
from repro.telemetry.runtime import Telemetry


@dataclass(frozen=True)
class SweepTable:
    """All measurements of one sweep, indexed by (benchmark, pair)."""

    gpu: GPUSpec
    #: ``measurements[benchmark_name][pair_key]`` -> Measurement.
    measurements: Mapping[str, Mapping[str, Measurement]]

    @property
    def benchmark_names(self) -> tuple[str, ...]:
        """Benchmarks in the sweep, in insertion order."""
        return tuple(self.measurements)

    def pairs_for(self, benchmark: str) -> tuple[str, ...]:
        """Frequency-pair keys measured for a benchmark."""
        return tuple(self.measurements[benchmark])

    def at(self, benchmark: str, pair_key: str) -> Measurement:
        """One measurement."""
        return self.measurements[benchmark][pair_key]

    def default(self, benchmark: str) -> Measurement:
        """The (H-H) measurement the paper compares against."""
        return self.at(benchmark, "H-H")


class FrequencySweep:
    """Sweep runner for one GPU.

    Parameters
    ----------
    gpu:
        Card to characterize.
    seed:
        Optional noise-seed override (tests).
    faults:
        Optional deterministic fault plan (``repro.faults``).  When
        active, runs degrade gracefully: failed (benchmark, pair)
        units are dropped from the table and recorded in
        :attr:`last_failures` instead of aborting the sweep.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` context the sweep
        reports into (a ``sweep`` phase span plus unit/loss counters).
    """

    def __init__(
        self,
        gpu: GPUSpec,
        seed: int | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._seed = seed
        if faults is not None and faults.is_null:
            faults = None
        self._faults = faults
        self._telemetry = telemetry
        self.testbed = Testbed(gpu, seed=seed)
        #: Statistics of the most recent :meth:`run` (units, cache hits).
        self.last_stats: ExecutionStats | None = None
        #: Units of the most recent :meth:`run` that produced no
        #: measurement (fault injection / degrade mode only).
        self.last_failures: tuple[UnitFailure, ...] = ()

    @property
    def gpu(self) -> GPUSpec:
        """The card being swept."""
        return self.testbed.gpu

    def run_benchmark(
        self,
        benchmark: KernelSpec,
        scale: float = 1.0,
        execution: ExecutionConfig | None = None,
    ) -> dict[str, Measurement]:
        """Measure one benchmark at every configurable pair."""
        table = self.run([benchmark], scale=scale, execution=execution)
        return dict(table.measurements[benchmark.name])

    def run(
        self,
        benchmarks: Sequence[KernelSpec] | None = None,
        scale: float = 1.0,
        execution: ExecutionConfig | None = None,
    ) -> SweepTable:
        """Measure a set of benchmarks (default: all 37) at every pair.

        ``scale=1.0`` is the paper's "maximum feasible input data size".
        ``execution`` selects the executor, worker count and result
        cache; the default runs serially, uncached.
        """
        if benchmarks is None:
            benchmarks = all_benchmarks()
        if self._faults is not None:
            execution = dataclasses.replace(
                execution if execution is not None else ExecutionConfig(),
                on_error="degrade",
            )
        telemetry = self._telemetry
        if telemetry is not None:
            execution = dataclasses.replace(
                execution if execution is not None else ExecutionConfig(),
                telemetry=telemetry,
            )
        elif execution is not None:
            telemetry = execution.telemetry
        units = sweep_units(
            self.gpu, benchmarks, scale=scale, seed=self._seed,
            faults=self._faults,
        )
        if telemetry is not None:
            with telemetry.tracer.span(
                "sweep", kind="phase", gpu=self.gpu.name, units=len(units)
            ):
                outcome = run_units(units, execution)
            telemetry.metrics.inc("sweep.units", len(units))
            telemetry.metrics.inc("sweep.lost", len(outcome.failures))
        else:
            outcome = run_units(units, execution)
        self.last_stats = outcome.stats
        self.last_failures = outcome.failures
        table: dict[str, dict[str, Measurement]] = {
            bench.name: {} for bench in benchmarks
        }
        for unit, payload in zip(units, outcome.payloads):
            if payload is None:
                # Degrade mode: the unit failed; its cell stays empty
                # and the failure is recorded in ``last_failures``.
                continue
            table[unit.kernel.name][unit.pair] = measurement_from_payload(
                payload, self.gpu, unit.kernel
            )
        return SweepTable(gpu=self.gpu, measurements=table)
