"""Full frequency-pair sweeps over benchmarks (the Section III campaign).

The paper measures every benchmark at every configurable (core, memory)
pair of every GPU with the maximum feasible input size.  A
:class:`FrequencySweep` reproduces that campaign for one card and returns
a :class:`SweepTable` from which Figs. 1-4 and Table IV are derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.arch.specs import GPUSpec
from repro.instruments.testbed import Measurement, Testbed
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import all_benchmarks


@dataclass(frozen=True)
class SweepTable:
    """All measurements of one sweep, indexed by (benchmark, pair)."""

    gpu: GPUSpec
    #: ``measurements[benchmark_name][pair_key]`` -> Measurement.
    measurements: Mapping[str, Mapping[str, Measurement]]

    @property
    def benchmark_names(self) -> tuple[str, ...]:
        """Benchmarks in the sweep, in insertion order."""
        return tuple(self.measurements)

    def pairs_for(self, benchmark: str) -> tuple[str, ...]:
        """Frequency-pair keys measured for a benchmark."""
        return tuple(self.measurements[benchmark])

    def at(self, benchmark: str, pair_key: str) -> Measurement:
        """One measurement."""
        return self.measurements[benchmark][pair_key]

    def default(self, benchmark: str) -> Measurement:
        """The (H-H) measurement the paper compares against."""
        return self.at(benchmark, "H-H")


class FrequencySweep:
    """Sweep runner for one GPU.

    Parameters
    ----------
    gpu:
        Card to characterize.
    seed:
        Optional noise-seed override (tests).
    """

    def __init__(self, gpu: GPUSpec, seed: int | None = None) -> None:
        self.testbed = Testbed(gpu, seed=seed)

    @property
    def gpu(self) -> GPUSpec:
        """The card being swept."""
        return self.testbed.gpu

    def run_benchmark(
        self, benchmark: KernelSpec, scale: float = 1.0
    ) -> dict[str, Measurement]:
        """Measure one benchmark at every configurable pair."""
        results: dict[str, Measurement] = {}
        for op in self.gpu.operating_points():
            self.testbed.set_clocks(op.core_level, op.mem_level)
            results[op.key] = self.testbed.measure(benchmark, scale)
        return results

    def run(
        self,
        benchmarks: Sequence[KernelSpec] | None = None,
        scale: float = 1.0,
    ) -> SweepTable:
        """Measure a set of benchmarks (default: all 37) at every pair.

        ``scale=1.0`` is the paper's "maximum feasible input data size".
        """
        if benchmarks is None:
            benchmarks = all_benchmarks()
        table = {b.name: self.run_benchmark(b, scale) for b in benchmarks}
        return SweepTable(gpu=self.gpu, measurements=table)
