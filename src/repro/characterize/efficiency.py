"""Energy-optimal frequency pairs and power-efficiency improvements.

Derives Table IV (best pair per benchmark/GPU) and Fig. 4 (efficiency
improvement of the best pair over the (H-H) default) from a sweep.
Power efficiency is the paper's metric: the reciprocal of the measured
energy consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.arch.specs import GPUSpec
from repro.characterize.sweep import FrequencySweep, SweepTable
from repro.session.context import RunContext
from repro.instruments.testbed import Measurement


@dataclass(frozen=True)
class BenchmarkCharacterization:
    """Energy-optimality record of one benchmark on one GPU."""

    benchmark: str
    #: Best (energy-minimal) frequency-pair key, e.g. ``"H-L"``.
    best_pair: str
    #: Power-efficiency improvement of best over (H-H), in percent.
    improvement_pct: float
    #: Performance loss of best over (H-H), in percent (negative = faster).
    performance_loss_pct: float
    #: Energy at the default and best pairs (J).
    default_energy_j: float
    best_energy_j: float

    @property
    def is_default_best(self) -> bool:
        """Whether the factory (H-H) setting is already energy-optimal."""
        return self.best_pair == "H-H"


def best_operating_point(
    pair_measurements: Mapping[str, Measurement],
) -> tuple[str, Measurement]:
    """The energy-minimal pair among measured pairs of one benchmark."""
    if not pair_measurements:
        raise ValueError("no measurements given")
    key = min(pair_measurements, key=lambda k: pair_measurements[k].energy_j)
    return key, pair_measurements[key]


def efficiency_improvement(
    default: Measurement, candidate: Measurement
) -> float:
    """Power-efficiency improvement of candidate over default, percent.

    Efficiency is 1/energy, so the improvement equals
    ``E_default / E_candidate - 1``.
    """
    return (default.energy_j / candidate.energy_j - 1.0) * 100.0


def characterize_benchmark(
    table: SweepTable, benchmark: str
) -> BenchmarkCharacterization:
    """Table IV / Fig. 4 record for one benchmark of a sweep."""
    pairs = table.measurements[benchmark]
    default = table.default(benchmark)
    best_key, best = best_operating_point(pairs)
    return BenchmarkCharacterization(
        benchmark=benchmark,
        best_pair=best_key,
        improvement_pct=efficiency_improvement(default, best),
        performance_loss_pct=(best.exec_seconds / default.exec_seconds - 1.0)
        * 100.0,
        default_energy_j=default.energy_j,
        best_energy_j=best.energy_j,
    )


def characterize_gpu(
    gpu: GPUSpec, seed: int | None = None, table: SweepTable | None = None
) -> list[BenchmarkCharacterization]:
    """Characterize every benchmark on one GPU (one Table IV column).

    Pass a pre-computed ``table`` to avoid re-running the sweep.
    """
    if table is None:
        table = FrequencySweep(gpu, RunContext.resolve(seed=seed)).run()
    return [
        characterize_benchmark(table, name) for name in table.benchmark_names
    ]
