"""Out-of-sample validation of the unified models.

The paper evaluates its regressions in-sample (fit and predict on the
same 114 samples).  A natural robustness question — and the first thing
a downstream user of these models would ask — is how they generalize to
*unseen workloads*.  This module adds leave-one-benchmark-out (LOBO)
cross-validation: for each benchmark, fit on the other 32 benchmarks'
observations and predict the held-out one.

LOBO is the right split here (rather than random k-fold) because
observations of the same benchmark share counters and unmodeled structure;
random folds would leak benchmark identity across the split.

Two protocols are provided:

* :func:`leave_one_benchmark_out` — the exact protocol: every fold
  re-runs forward selection and refits from scratch.  O(folds) full
  fits; this is what the ``ext_crossval`` experiment reports.
* :func:`leave_one_benchmark_out_fast` — the incremental protocol:
  forward selection runs *once* on the full dataset, then each fold is
  produced by Sherman–Morrison *downdates* of a
  :class:`~repro.core.online.RecursiveLeastSquares` estimator — O(d²)
  per removed sample instead of a from-scratch refit.  The held-out
  coefficients are exact (up to the estimator's vanishing prior), but
  the feature *set* is the full-data selection, so folds measure
  coefficient generalization, not selection stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.core.evaluate import ErrorReport, evaluate_model
from repro.core.models import _UnifiedModel
from repro.core.online import RecursiveLeastSquares


@dataclass(frozen=True)
class CrossValidationResult:
    """Leave-one-benchmark-out outcome for one model family."""

    #: Held-out error report per benchmark.
    per_benchmark: dict[str, ErrorReport]
    #: In-sample report of the model fitted on everything (reference).
    in_sample: ErrorReport

    @property
    def mean_pct_error(self) -> float:
        """Mean held-out percentage error across all observations."""
        all_errors = np.concatenate(
            [r.pct_errors for r in self.per_benchmark.values()]
        )
        return float(np.mean(all_errors))

    @property
    def mean_abs_error(self) -> float:
        """Mean held-out absolute error (target units)."""
        all_errors = np.concatenate(
            [r.abs_errors for r in self.per_benchmark.values()]
        )
        return float(np.mean(all_errors))

    @property
    def generalization_gap_pct(self) -> float:
        """Held-out minus in-sample mean percentage error."""
        return self.mean_pct_error - self.in_sample.mean_pct_error

    def worst_benchmarks(self, k: int = 5) -> list[tuple[str, float]]:
        """The k benchmarks with the largest held-out error."""
        ranked = sorted(
            (
                (name, report.mean_pct_error)
                for name, report in self.per_benchmark.items()
            ),
            key=lambda kv: -kv[1],
        )
        return ranked[:k]


def leave_one_benchmark_out(
    model_cls: Type[_UnifiedModel],
    dataset: ModelingDataset,
    max_features: int = 10,
) -> CrossValidationResult:
    """Run LOBO cross-validation for one model family on one GPU.

    Parameters
    ----------
    model_cls:
        :class:`~repro.core.models.UnifiedPowerModel` or
        :class:`~repro.core.models.UnifiedPerformanceModel`.
    dataset:
        Full modeling dataset of the GPU.
    max_features:
        Forward-selection cap (the paper's 10).
    """
    per_benchmark: dict[str, ErrorReport] = {}
    for name in dataset.benchmarks:
        train = dataset.without_benchmark(name)
        test = dataset.only_benchmark(name)
        model = model_cls(max_features=max_features).fit(train)
        per_benchmark[name] = evaluate_model(model, test)
    full = model_cls(max_features=max_features).fit(dataset)
    return CrossValidationResult(
        per_benchmark=per_benchmark,
        in_sample=evaluate_model(full, dataset),
    )


def leave_one_benchmark_out_fast(
    model_cls: Type[_UnifiedModel],
    dataset: ModelingDataset,
    max_features: int = 10,
    prior_scale: float = 1e10,
) -> CrossValidationResult:
    """Incremental LOBO: per-fold downdates instead of per-fold refits.

    Forward selection runs once, on the full dataset; each fold then
    *removes* the held-out benchmark's samples from a recursive
    estimator via exact rank-1 downdates, predicts the held-out rows,
    and re-ingests them — O(n_holdout · d²) per fold against the exact
    protocol's full refit.  A fold whose removal would make the
    information matrix singular (pathologically small datasets) falls
    back to the from-scratch fit for that fold alone.
    """
    full = model_cls(max_features=max_features).fit(dataset)
    X, _ = full._features(dataset)
    y = np.asarray(full._target(dataset), dtype=float)
    design = full.selection.design_matrix(X)
    # Column equilibration keeps the recursion well-conditioned across
    # counters spanning many orders of magnitude (same concern as
    # fit_ols); the scale is fixed once so every fold sees it.
    scale = np.max(np.abs(design), axis=0)
    scale[scale == 0.0] = 1.0
    rows = design / scale

    rls = RecursiveLeastSquares(rows.shape[1], prior_scale=prior_scale)
    for row, target in zip(rows, y):
        rls.update(row, target)

    names = np.array([o.benchmark for o in dataset.observations])
    per_benchmark: dict[str, ErrorReport] = {}
    for name in dataset.benchmarks:
        mask = names == name
        held_rows = rows[mask]
        held_y = y[mask]
        checkpoint = rls.clone()
        try:
            for row, target in zip(held_rows, held_y):
                rls.downdate(row, target)
            predicted = rls.predict(held_rows)
            for row, target in zip(held_rows, held_y):
                rls.update(row, target)
        except ValueError:
            # Removal would be singular: this fold refits from scratch.
            rls = checkpoint
            train = dataset.without_benchmark(name)
            test = dataset.only_benchmark(name)
            fold = model_cls(max_features=max_features).fit(train)
            per_benchmark[name] = evaluate_model(fold, test)
            continue
        per_benchmark[name] = ErrorReport(
            benchmarks=tuple(names[mask]),
            actual=held_y,
            predicted=np.asarray(predicted, dtype=float),
        )
    return CrossValidationResult(
        per_benchmark=per_benchmark,
        in_sample=evaluate_model(full, dataset),
    )
