"""Ordinary least squares with the paper's goodness-of-fit statistics.

Thin, dependency-light linear algebra: the model matrix is small (at most
a few hundred observations by tens of features), so a single
``numpy.linalg.lstsq`` call is both exact and fast.  The adjusted
coefficient of determination (R-bar-squared) is the paper's model-
selection criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegressionResult:
    """A fitted multiple-linear-regression model ``y ~ X @ coef + z``."""

    #: Per-feature coefficients (the paper's x_i / y_j).
    coefficients: np.ndarray
    #: Intercept (the paper's z).
    intercept: float
    #: Coefficient of determination on the training set.
    r2: float
    #: Adjusted coefficient of determination (R-bar-squared).
    adjusted_r2: float
    #: Number of training observations.
    n_observations: int

    @property
    def n_features(self) -> int:
        """Number of explanatory variables in the model."""
        return int(self.coefficients.size)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix (n_obs, n_features)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"feature matrix must be (n, {self.n_features}), got {X.shape}"
            )
        return X @ self.coefficients + self.intercept


def r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    """Plain coefficient of determination."""
    y = np.asarray(y, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def adjusted_r_squared(r2: float, n_observations: int, n_features: int) -> float:
    """R-bar-squared: penalizes adding explanatory variables.

    Follows the standard definition the paper uses for model selection;
    undefined (returns ``-inf``) when there are no residual degrees of
    freedom.
    """
    dof = n_observations - n_features - 1
    if dof <= 0:
        return float("-inf")
    return 1.0 - (1.0 - r2) * (n_observations - 1) / dof


def fit_ols(X: np.ndarray, y: np.ndarray) -> RegressionResult:
    """Fit ``y = X @ coef + z`` by least squares.

    Columns are equilibrated to unit norm before solving — counter-based
    features span many orders of magnitude (an instruction count vs. a
    ratio counter), which would otherwise destroy the conditioning of
    the normal equations.  Degenerate (constant or collinear) columns
    are handled by the minimum-norm solution of
    :func:`numpy.linalg.lstsq`.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.size != X.shape[0]:
        raise ValueError(
            f"y must be 1-D with {X.shape[0]} entries, got shape {y.shape}"
        )
    if X.shape[0] < 2:
        raise ValueError("need at least two observations")
    norms = np.linalg.norm(X, axis=0)
    norms = np.where(norms == 0.0, 1.0, norms)
    design = np.column_stack([X / norms, np.ones(X.shape[0])])
    solution, *_ = np.linalg.lstsq(design, y, rcond=None)
    coefficients, intercept = solution[:-1] / norms, float(solution[-1])
    predicted = design @ solution
    r2 = r_squared(y, predicted)
    return RegressionResult(
        coefficients=coefficients,
        intercept=intercept,
        r2=r2,
        adjusted_r2=adjusted_r_squared(r2, X.shape[0], X.shape[1]),
        n_observations=X.shape[0],
    )
