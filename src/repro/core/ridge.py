"""Ridge regression and backward elimination — modeling alternatives.

The paper leaves "building a more sophisticated model" to future work and
justifies forward selection only by its R-bar-squared saturation.  These
two alternatives bound the design space from both sides:

* **Ridge** keeps *all* counters but shrinks coefficients (L2), trading
  the interpretability of a 10-variable model for robustness to the
  collinear counter sets (sub-partition counters are near-duplicates);
  the penalty is chosen by generalized cross-validation (GCV).
* **Backward elimination** starts from everything and drops the least
  useful variable while adjusted R² improves — the classical alternative
  to the paper's forward method, and a check that the greedy direction
  does not matter much here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.regression import (
    RegressionResult,
    fit_ols,
    r_squared,
)


@dataclass(frozen=True)
class RidgeResult:
    """A fitted ridge model on standardized features."""

    coefficients: np.ndarray
    intercept: float
    #: Chosen L2 penalty.
    alpha: float
    #: Per-feature standardization parameters.
    means: np.ndarray
    scales: np.ndarray
    #: Training fit quality.
    r2: float
    #: GCV score of the chosen alpha.
    gcv: float

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a raw (unstandardized) feature matrix."""
        X = np.asarray(X, dtype=float)
        Z = (X - self.means) / self.scales
        return Z @ self.coefficients + self.intercept


def _standardize(X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    means = X.mean(axis=0)
    scales = X.std(axis=0)
    scales = np.where(scales == 0.0, 1.0, scales)
    return (X - means) / scales, means, scales


def fit_ridge(
    X: np.ndarray,
    y: np.ndarray,
    alphas: Sequence[float] | None = None,
) -> RidgeResult:
    """Ridge regression with the penalty chosen by GCV.

    The intercept is unpenalized (features are centred); the GCV score
    is ``n * RSS / (n - tr(H))**2`` with H the ridge hat matrix.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.ndim != 1 or y.size != X.shape[0]:
        raise ValueError("X must be (n, p) and y (n,)")
    if alphas is None:
        alphas = np.logspace(-4, 4, 17)
    Z, means, scales = _standardize(X)
    y_mean = float(np.mean(y))
    yc = y - y_mean
    n, p = Z.shape
    # Economy SVD makes the alpha sweep O(np^2 + sweep * p).
    U, s, Vt = np.linalg.svd(Z, full_matrices=False)
    Uty = U.T @ yc

    best: tuple[float, float, np.ndarray] | None = None
    for alpha in alphas:
        shrink = s / (s**2 + alpha)
        coef = Vt.T @ (shrink * Uty)
        fitted = Z @ coef
        rss = float(np.sum((yc - fitted) ** 2))
        eff_dof = float(np.sum(s**2 / (s**2 + alpha)))
        denom = max(n - eff_dof, 1e-9)
        gcv = n * rss / denom**2
        if best is None or gcv < best[0]:
            best = (gcv, float(alpha), coef)
    assert best is not None
    gcv, alpha, coef = best
    fitted = Z @ coef + y_mean
    return RidgeResult(
        coefficients=coef,
        intercept=y_mean,
        alpha=alpha,
        means=means,
        scales=scales,
        r2=r_squared(y, fitted),
        gcv=gcv,
    )


@dataclass(frozen=True)
class BackwardEliminationResult:
    """Outcome of backward elimination."""

    selected: tuple[int, ...]
    selected_names: tuple[str, ...]
    #: Adjusted R² after each *drop* (starting from the full model).
    history: tuple[float, ...]
    model: RegressionResult

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict from a full feature matrix."""
        return self.model.predict(
            np.asarray(X, dtype=float)[:, list(self.selected)]
        )


def backward_eliminate(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    min_features: int = 1,
) -> BackwardEliminationResult:
    """Drop variables while adjusted R-bar-squared improves.

    Starts from all non-degenerate columns; at each step removes the
    variable whose removal yields the best adjusted R², stopping when no
    removal improves it (or ``min_features`` is reached).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[1] != len(feature_names):
        raise ValueError(
            f"{X.shape[1]} columns but {len(feature_names)} names"
        )
    selected = [j for j in range(X.shape[1]) if np.ptp(X[:, j]) > 0.0]
    if not selected:
        raise ValueError("all features are degenerate")
    current = fit_ols(X[:, selected], y)
    history = [current.adjusted_r2]
    while len(selected) > min_features:
        step_best: tuple[float, int, RegressionResult] | None = None
        for j in selected:
            remaining = [k for k in selected if k != j]
            model = fit_ols(X[:, remaining], y)
            if step_best is None or model.adjusted_r2 > step_best[0]:
                step_best = (model.adjusted_r2, j, model)
        assert step_best is not None
        score, j, model = step_best
        if score <= current.adjusted_r2:
            break
        selected.remove(j)
        current = model
        history.append(score)
    return BackwardEliminationResult(
        selected=tuple(selected),
        selected_names=tuple(feature_names[j] for j in selected),
        history=tuple(history),
        model=current,
    )
