"""Cross-GPU model transfer.

The paper argues that analytic models do not transfer between GPUs (they
spent excessive time porting Hong & Kim's GTX 280 model to the GTX 285).
The natural follow-up — called out in DESIGN.md §7 — is to quantify how
the paper's *statistical* models transfer:

* **within a generation** (GTX 460 -> GTX 480): the counter sets are
  identical, so a model ports directly — and still degrades, because the
  coefficients encode board-level power and core counts;
* **across generations**: the counter sets differ (32/74/108), so only
  the intersection of counters is even expressible — models must be
  refit on the common subset first, mirroring what a practitioner could
  actually do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from repro.core.dataset import ModelingDataset
from repro.core.evaluate import ErrorReport, evaluate_model
from repro.core.models import _UnifiedModel


def common_counters(
    a: ModelingDataset, b: ModelingDataset
) -> tuple[str, ...]:
    """Counter names available on both GPUs, in ``a``'s order."""
    available = set(b.counter_names)
    return tuple(n for n in a.counter_names if n in available)


def restrict_counters(
    dataset: ModelingDataset, counters: tuple[str, ...]
) -> ModelingDataset:
    """View of a dataset exposing only the given counters.

    Observations keep their full counter dictionaries; only the feature
    construction (driven by ``counter_names``) is narrowed.
    """
    missing = [n for n in counters if n not in dataset.counter_domains]
    if missing:
        raise ValueError(f"counters not present on {dataset.gpu.name}: {missing}")
    return ModelingDataset(
        gpu=dataset.gpu,
        counter_names=tuple(counters),
        counter_domains={
            n: dataset.counter_domains[n] for n in counters
        },
        observations=dataset.observations,
    )


@dataclass(frozen=True)
class TransferResult:
    """Outcome of porting a model from one GPU to another."""

    source: str
    target: str
    #: Counters usable on both cards.
    n_common_counters: int
    #: Error of the ported model on the target GPU.
    transferred: ErrorReport
    #: Error of a model fit natively on the target (same counter subset).
    native: ErrorReport

    @property
    def degradation_factor(self) -> float:
        """How many times worse the ported model is than the native one."""
        return self.transferred.mean_pct_error / self.native.mean_pct_error


def transfer_model(
    model_cls: Type[_UnifiedModel],
    source: ModelingDataset,
    target: ModelingDataset,
    max_features: int = 10,
) -> TransferResult:
    """Fit on ``source``, evaluate on ``target`` (restricted to common
    counters), and compare against a natively-fit reference."""
    shared = common_counters(source, target)
    if len(shared) < max_features:
        raise ValueError(
            f"only {len(shared)} common counters between "
            f"{source.gpu.name} and {target.gpu.name}"
        )
    source_r = restrict_counters(source, shared)
    target_r = restrict_counters(target, shared)

    ported = model_cls(max_features=max_features).fit(source_r)
    native = model_cls(max_features=max_features).fit(target_r)
    return TransferResult(
        source=source.gpu.name,
        target=target.gpu.name,
        n_common_counters=len(shared),
        transferred=evaluate_model(ported, target_r),
        native=evaluate_model(native, target_r),
    )
