"""Model evaluation: the error metrics of Tables VII/VIII and Figs. 5-11.

The paper reports mean absolute percentage error, mean absolute error in
Watts (power only), per-benchmark error distributions (Figs. 5, 6), and
the influence of the selected explanatory variables (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.core.models import _UnifiedModel


@dataclass(frozen=True)
class ErrorReport:
    """Prediction-error summary of one model on one dataset."""

    #: Benchmark name per observation.
    benchmarks: tuple[str, ...]
    #: Measured target values.
    actual: np.ndarray
    #: Model predictions.
    predicted: np.ndarray

    @property
    def abs_errors(self) -> np.ndarray:
        """Absolute errors in target units."""
        return np.abs(self.predicted - self.actual)

    @property
    def pct_errors(self) -> np.ndarray:
        """Absolute percentage errors."""
        return 100.0 * self.abs_errors / np.abs(self.actual)

    @property
    def mean_pct_error(self) -> float:
        """Mean absolute percentage error (Tables VII/VIII 'Error[%]')."""
        return float(np.mean(self.pct_errors))

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute error in target units (Table VII 'Error[W]')."""
        return float(np.mean(self.abs_errors))

    @property
    def median_pct_error(self) -> float:
        """Median absolute percentage error."""
        return float(np.median(self.pct_errors))

    def per_benchmark_pct_error(self) -> dict[str, float]:
        """Mean absolute percentage error per benchmark (Figs. 5, 6)."""
        result: dict[str, list[float]] = {}
        for name, err in zip(self.benchmarks, self.pct_errors):
            result.setdefault(name, []).append(float(err))
        return {name: float(np.mean(v)) for name, v in result.items()}

    def box_stats(self) -> dict[str, float]:
        """Box-and-whisker summary of percentage errors (Figs. 9, 10)."""
        e = self.pct_errors
        q1, med, q3 = np.percentile(e, [25, 50, 75])
        return {
            "min": float(np.min(e)),
            "q1": float(q1),
            "median": float(med),
            "q3": float(q3),
            "max": float(np.max(e)),
            "mean": float(np.mean(e)),
        }


def evaluate_model(model: _UnifiedModel, dataset: ModelingDataset) -> ErrorReport:
    """Predict a dataset with a fitted model and summarize the errors."""
    predicted = model.predict(dataset)
    actual = model._target(dataset)
    return ErrorReport(
        benchmarks=tuple(o.benchmark for o in dataset.observations),
        actual=np.asarray(actual, dtype=float),
        predicted=np.asarray(predicted, dtype=float),
    )


def influence_breakdown(
    model: _UnifiedModel, dataset: ModelingDataset
) -> dict[str, float]:
    """Relative influence of each selected variable (Fig. 11).

    Influence of variable *i* is ``|coef_i| * std(feature_i)`` —
    the typical magnitude the term contributes to the prediction —
    normalized so the shares sum to 1.
    """
    selection = model.selection
    X, _ = model._features(dataset)
    design = selection.design_matrix(X)
    raw = np.abs(selection.model.coefficients) * np.std(design, axis=0)
    total = float(np.sum(raw))
    if total == 0.0:
        shares = np.full(raw.shape, 1.0 / raw.size)
    else:
        shares = raw / total
    return dict(zip(selection.selected_names, map(float, shares)))
