"""Deployable two-stage power/performance predictor.

Bundles a fitted performance model and power model into the object a
runtime system would actually ship: given one profiled run of a workload
(counter totals) it predicts execution time, average power and energy at
*any* configurable frequency pair of its GPU — no further measurement.

The two-stage structure mirrors deployment reality: Eq. 2 predicts the
time at the target pair from counter totals, and that predicted time
converts the totals into the per-second rates Eq. 1 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.core.dataset import ModelingDataset, Observation
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.engine.counters import CounterDomain, counter_set
from repro.errors import ModelNotFittedError


@dataclass(frozen=True)
class Prediction:
    """Predicted behaviour of one workload at one operating point."""

    op: OperatingPoint
    seconds: float
    watts: float

    @property
    def energy_j(self) -> float:
        """Predicted energy (time x power)."""
        return self.seconds * self.watts


class PowerPerformancePredictor:
    """Predicts (time, power, energy) for profiled workloads.

    Parameters
    ----------
    gpu:
        Card the models were trained on.
    power_model / performance_model:
        Fitted unified models for that card.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        power_model: UnifiedPowerModel,
        performance_model: UnifiedPerformanceModel,
    ) -> None:
        if not (power_model.is_fitted and performance_model.is_fitted):
            raise ModelNotFittedError("predictor requires fitted models")
        self.gpu = gpu
        self.power_model = power_model
        self.performance_model = performance_model
        counters = counter_set(gpu.traits.counter_set)
        self._counter_names = tuple(c.name for c in counters)
        self._domains: dict[str, CounterDomain] = {
            c.name: c.domain for c in counters
        }

    # ------------------------------------------------------------------

    def _observation(
        self, counters: Mapping[str, float], op: OperatingPoint, seconds: float
    ) -> ModelingDataset:
        missing = [n for n in self._counter_names if n not in counters]
        if missing:
            raise ValueError(
                f"profile is missing {len(missing)} counters of the "
                f"{self.gpu.name} set (e.g. {missing[:3]})"
            )
        obs = Observation(
            benchmark="<query>",
            suite="<query>",
            scale=1.0,
            op=op,
            counters=dict(counters),
            exec_seconds=seconds,
            avg_power_w=0.0,
            energy_j=1.0,
        )
        return ModelingDataset(
            gpu=self.gpu,
            counter_names=self._counter_names,
            counter_domains=self._domains,
            observations=(obs,),
        )

    def predict(
        self, counters: Mapping[str, float], op: OperatingPoint
    ) -> Prediction:
        """Predict one workload's behaviour at one operating point.

        Parameters
        ----------
        counters:
            Counter *totals* from one profiled run (any clocks — the
            models fold frequency into their features).
        op:
            Target operating point of this predictor's GPU.
        """
        # Stage 1: time from totals (Eq. 2 features need no time).
        seconds = float(
            self.performance_model.predict(
                self._observation(counters, op, seconds=1.0)
            )[0]
        )
        seconds = max(seconds, 1e-3)
        # Stage 2: power from rates derived with the predicted time.
        watts = float(
            self.power_model.predict(
                self._observation(counters, op, seconds=seconds)
            )[0]
        )
        watts = max(watts, 1.0)
        return Prediction(op=op, seconds=seconds, watts=watts)

    def predict_all_pairs(
        self, counters: Mapping[str, float]
    ) -> dict[str, Prediction]:
        """Predictions at every configurable pair, keyed by pair name."""
        return {
            op.key: self.predict(counters, op)
            for op in self.gpu.operating_points()
        }

    def best_pair(
        self, counters: Mapping[str, float], max_slowdown: float | None = None
    ) -> Prediction:
        """Energy-minimal predicted pair, optionally perf-constrained."""
        predictions = self.predict_all_pairs(counters)
        candidates = list(predictions.values())
        if max_slowdown is not None:
            if max_slowdown < 1.0:
                raise ValueError(
                    f"max_slowdown must be >= 1.0, got {max_slowdown}"
                )
            fastest = min(p.seconds for p in candidates)
            candidates = [
                p for p in candidates if p.seconds <= fastest * max_slowdown
            ]
        return min(candidates, key=lambda p: p.energy_j)
