"""Counter-based workload classification.

A runtime DVFS manager must decide, from counters alone, whether a
workload is compute-bound, memory-bound or balanced — that decision is
implicit in every best-pair of Table IV (compute-bound kernels tolerate
Mem-L; memory-bound kernels tolerate Core-M).  This module classifies a
profiled run from architecture-appropriate counter ratios, without any
knowledge of the kernel's ground truth, and is validated against the
roofline classification in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.arch.specs import GPUSpec


class WorkloadClass(enum.Enum):
    """Boundedness classes a runtime manager acts on."""

    COMPUTE_BOUND = "compute"
    MEMORY_BOUND = "memory"
    BALANCED = "balanced"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one profiled run."""

    workload_class: WorkloadClass
    #: Memory pressure score in [0, 1]: 0 = pure compute, 1 = pure memory.
    memory_pressure: float
    #: The counter-derived evidence used (for auditability).
    evidence: dict[str, float]


def _ratio(counters: Mapping[str, float], num: str, den: str) -> float:
    d = counters.get(den, 0.0)
    return counters.get(num, 0.0) / d if d > 0 else 0.0


def _dram_bytes(counters: Mapping[str, float], spec: GPUSpec) -> float:
    """Estimate DRAM traffic (bytes) from the architecture's counters."""
    set_name = spec.traits.counter_set
    if set_name == "tesla":
        # No frame-buffer counters on Tesla: fall back to request
        # transactions at 128B granularity (over-estimates for cached
        # architectures, but Tesla has no cache).
        transactions = sum(
            counters.get(name, 0.0)
            for name in ("gld_32b", "gld_64b", "gld_128b",
                         "gst_32b", "gst_64b", "gst_128b")
        )
        return transactions * 128.0
    if set_name == "gcn":
        return (
            counters.get("FetchSize", 0.0) + counters.get("WriteSize", 0.0)
        ) * 1024.0
    # Fermi/Kepler: frame-buffer sector counters (32B each).
    sectors = sum(
        value
        for name, value in counters.items()
        if name.startswith("fb_subp") and name.endswith("_sectors")
    )
    return sectors * 32.0


def _instructions(counters: Mapping[str, float], spec: GPUSpec) -> float:
    set_name = spec.traits.counter_set
    if set_name == "tesla":
        return counters.get("instructions", 0.0)
    if set_name == "gcn":
        return counters.get("SQ_INSTS", 0.0)
    return counters.get("inst_executed", 0.0)


def classify_counters(
    counters: Mapping[str, float],
    spec: GPUSpec,
    balanced_band: tuple[float, float] = (0.35, 0.65),
) -> Classification:
    """Classify a profiled run from its counter totals.

    The memory-pressure score compares the run's DRAM traffic against
    the traffic the card could sustain in the time its instructions take
    to issue — a counter-only estimate of ``t_memory / (t_compute +
    t_memory)``.
    """
    if not 0.0 <= balanced_band[0] < balanced_band[1] <= 1.0:
        raise ValueError(f"invalid balanced band {balanced_band}")
    instructions = _instructions(counters, spec)
    dram = _dram_bytes(counters, spec)
    if instructions <= 0:
        raise ValueError("profile carries no instruction counter")

    # Issue-time proxy: instructions over peak issue rate; memory-time
    # proxy: DRAM bytes over peak bandwidth.  Both at the H-H clocks the
    # profile was taken at; only their *ratio* matters.
    hh = spec.default_point()
    t_compute = instructions * 2.0 / spec.peak_flops(hh)
    t_memory = dram / spec.peak_bandwidth(hh)
    pressure = t_memory / (t_memory + t_compute)

    if pressure < balanced_band[0]:
        workload_class = WorkloadClass.COMPUTE_BOUND
    elif pressure > balanced_band[1]:
        workload_class = WorkloadClass.MEMORY_BOUND
    else:
        workload_class = WorkloadClass.BALANCED
    return Classification(
        workload_class=workload_class,
        memory_pressure=float(pressure),
        evidence={
            "instructions": float(instructions),
            "dram_bytes": float(dram),
            "t_compute_proxy": float(t_compute),
            "t_memory_proxy": float(t_memory),
        },
    )


def recommended_bias(classification: Classification) -> str:
    """The DVFS bias Table IV's structure implies for a class.

    Compute-bound workloads tolerate a lower memory clock; memory-bound
    ones tolerate a lower core clock; balanced workloads are the
    cases where only a fitted model (or a sweep) can decide.
    """
    return {
        WorkloadClass.COMPUTE_BOUND: "lower memory clock (Core-H, Mem-M/L)",
        WorkloadClass.MEMORY_BOUND: "lower core clock (Core-M, Mem-H)",
        WorkloadClass.BALANCED: "model-driven selection required",
    }[classification.workload_class]
