"""JSON serialization of datasets and fitted models.

A measurement campaign on real hardware is expensive; a real deployment
profiles once and reuses both the dataset and the fitted models.  This
module provides stable, versioned JSON round-trips for
:class:`~repro.core.dataset.ModelingDataset` and the unified models so
campaigns can be archived and models shipped.
"""

from __future__ import annotations

import json
from typing import Any, Type

import numpy as np

from repro.arch.specs import get_gpu
from repro.core.dataset import Exclusion, ModelingDataset, Observation
from repro.core.models import (
    UnifiedPerformanceModel,
    UnifiedPowerModel,
    _UnifiedModel,
)
from repro.core.regression import RegressionResult
from repro.core.selection import ForwardSelectionResult
from repro.engine.counters import CounterDomain
from repro.errors import ModelNotFittedError, ReproError

FORMAT_VERSION = 1

_MODEL_KINDS: dict[str, Type[_UnifiedModel]] = {
    "power": UnifiedPowerModel,
    "performance": UnifiedPerformanceModel,
}


class SerializationError(ReproError, ValueError):
    """A JSON document is not a valid serialized dataset/model."""


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------

def dataset_to_json(dataset: ModelingDataset) -> str:
    """Serialize a modeling dataset to a JSON string."""
    doc: dict[str, Any] = {
        "format": "repro.dataset",
        "version": FORMAT_VERSION,
        "gpu": dataset.gpu.name,
        "counter_names": list(dataset.counter_names),
        "counter_domains": {
            name: domain.value
            for name, domain in dataset.counter_domains.items()
        },
        "observations": [
            {
                "benchmark": o.benchmark,
                "suite": o.suite,
                "scale": o.scale,
                "pair": o.op.key,
                "counters": [o.counters[n] for n in dataset.counter_names],
                "exec_seconds": o.exec_seconds,
                "avg_power_w": o.avg_power_w,
                "energy_j": o.energy_j,
                "degraded": o.degraded,
            }
            for o in dataset.observations
        ],
        "exclusions": [e.document() for e in dataset.exclusions],
    }
    return json.dumps(doc)


def dataset_from_json(text: str) -> ModelingDataset:
    """Reconstruct a modeling dataset from its JSON form."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    if doc.get("format") != "repro.dataset":
        raise SerializationError("not a serialized repro dataset")
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported dataset format version {doc.get('version')}"
        )
    gpu = get_gpu(doc["gpu"])
    counter_names = tuple(doc["counter_names"])
    domains = {
        name: CounterDomain(value)
        for name, value in doc["counter_domains"].items()
    }
    observations = []
    for entry in doc["observations"]:
        op = gpu.operating_point(entry["pair"])
        observations.append(
            Observation(
                benchmark=entry["benchmark"],
                suite=entry["suite"],
                scale=float(entry["scale"]),
                op=op,
                counters=dict(zip(counter_names, entry["counters"])),
                exec_seconds=float(entry["exec_seconds"]),
                avg_power_w=float(entry["avg_power_w"]),
                energy_j=float(entry["energy_j"]),
                degraded=bool(entry.get("degraded", False)),
            )
        )
    exclusions = tuple(
        Exclusion(
            benchmark=str(entry["benchmark"]),
            suite=str(entry["suite"]),
            scale=float(entry["scale"]),
            reason=str(entry["reason"]),
        )
        for entry in doc.get("exclusions", [])
    )
    return ModelingDataset(
        gpu=gpu,
        counter_names=counter_names,
        counter_domains=domains,
        observations=tuple(observations),
        exclusions=exclusions,
    )


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------

def model_to_json(model: _UnifiedModel) -> str:
    """Serialize a *fitted* unified model to a JSON string."""
    if not model.is_fitted:
        raise ModelNotFittedError("cannot serialize an unfitted model")
    kind = next(
        k for k, cls in _MODEL_KINDS.items() if isinstance(model, cls)
    )
    selection = model.selection
    doc = {
        "format": "repro.model",
        "version": FORMAT_VERSION,
        "kind": kind,
        "max_features": model.max_features,
        "selected": list(selection.selected),
        "selected_names": list(selection.selected_names),
        "history": list(selection.history),
        "coefficients": selection.model.coefficients.tolist(),
        "intercept": selection.model.intercept,
        "r2": selection.model.r2,
        "adjusted_r2": selection.model.adjusted_r2,
        "n_observations": selection.model.n_observations,
    }
    return json.dumps(doc)


def model_from_json(text: str) -> _UnifiedModel:
    """Reconstruct a fitted unified model from its JSON form."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    if doc.get("format") != "repro.model":
        raise SerializationError("not a serialized repro model")
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported model format version {doc.get('version')}"
        )
    try:
        model_cls = _MODEL_KINDS[doc["kind"]]
    except KeyError:
        raise SerializationError(f"unknown model kind {doc.get('kind')!r}")
    model = model_cls(max_features=int(doc["max_features"]))
    regression = RegressionResult(
        coefficients=np.asarray(doc["coefficients"], dtype=float),
        intercept=float(doc["intercept"]),
        r2=float(doc["r2"]),
        adjusted_r2=float(doc["adjusted_r2"]),
        n_observations=int(doc["n_observations"]),
    )
    model._selection = ForwardSelectionResult(
        selected=tuple(int(i) for i in doc["selected"]),
        selected_names=tuple(doc["selected_names"]),
        history=tuple(float(h) for h in doc["history"]),
        model=regression,
    )
    return model
