"""Residual diagnostics for the unified models.

Section IV-B of the paper spends several paragraphs interpreting its
R-bar-squared numbers: large target spreads inflate R², small ones
deflate it, and percentage errors concentrate on short runs.  This
module makes those arguments *measurable* on a fitted model:

* per-frequency-pair bias — does the unified model systematically over-
  or under-predict specific pairs (the structure Figs. 9/10 probe)?
* heteroscedasticity — how strongly does the absolute residual grow with
  the target magnitude (the paper's R̄²-vs-MAPE tension)?
* target dispersion — the spread statistics the paper's narrative
  invokes ("variations of power consumption are limited within 100 W",
  execution time "varies from hundreds of milliseconds to tens of
  seconds").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.core.models import _UnifiedModel


@dataclass(frozen=True)
class PairBias:
    """Signed relative bias of the model on one frequency pair."""

    pair: str
    #: Mean of (predicted - actual) / actual, in percent.
    mean_bias_pct: float
    #: Mean absolute percentage error on this pair.
    mape: float
    n: int


@dataclass(frozen=True)
class DiagnosticsReport:
    """Full residual diagnostics of one fitted model on one dataset."""

    per_pair: tuple[PairBias, ...]
    #: Pearson correlation of |residual| with the target magnitude.
    heteroscedasticity: float
    #: Ratio of the largest to the smallest target value.
    target_dynamic_range: float
    #: Coefficient of variation of the target.
    target_cv: float

    @property
    def worst_pair(self) -> PairBias:
        """The pair with the largest absolute mean bias."""
        return max(self.per_pair, key=lambda p: abs(p.mean_bias_pct))

    @property
    def max_abs_bias_pct(self) -> float:
        """Largest per-pair systematic bias."""
        return abs(self.worst_pair.mean_bias_pct)


def diagnose(model: _UnifiedModel, dataset: ModelingDataset) -> DiagnosticsReport:
    """Compute residual diagnostics for a fitted model."""
    predicted = np.asarray(model.predict(dataset), dtype=float)
    actual = np.asarray(model._target(dataset), dtype=float)
    residual = predicted - actual
    rel = residual / np.abs(actual)

    pair_keys = [o.op.key for o in dataset.observations]
    biases = []
    for key in dataset.pair_keys:
        mask = np.array([p == key for p in pair_keys])
        biases.append(
            PairBias(
                pair=key,
                mean_bias_pct=float(np.mean(rel[mask]) * 100.0),
                mape=float(np.mean(np.abs(rel[mask])) * 100.0),
                n=int(mask.sum()),
            )
        )

    abs_residual = np.abs(residual)
    if np.std(abs_residual) == 0.0 or np.std(actual) == 0.0:
        hetero = 0.0
    else:
        hetero = float(np.corrcoef(abs_residual, np.abs(actual))[0, 1])

    return DiagnosticsReport(
        per_pair=tuple(biases),
        heteroscedasticity=hetero,
        target_dynamic_range=float(np.max(actual) / np.min(actual)),
        target_cv=float(np.std(actual) / np.mean(actual)),
    )
