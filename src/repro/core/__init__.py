"""The paper's contribution: unified statistical power/performance models.

Implements Section IV — multiple linear regression with counter features
classified as core-events or memory-events, frequency folded into the
features (Eq. 1 for power, Eq. 2 for execution time), and forward
selection maximizing adjusted R-squared with at most 10 variables.
"""

from repro.core.regression import RegressionResult, fit_ols
from repro.core.selection import ForwardSelectionResult, forward_select
from repro.core.features import (
    performance_feature_matrix,
    power_feature_matrix,
)
from repro.core.dataset import ModelingDataset, Observation, build_dataset
from repro.core.models import (
    UnifiedPerformanceModel,
    UnifiedPowerModel,
)
from repro.core.evaluate import (
    ErrorReport,
    evaluate_model,
    influence_breakdown,
)
from repro.core.online import (
    OnlinePerformanceModel,
    OnlinePowerModel,
    RecursiveLeastSquares,
)
from repro.core.predictor import PowerPerformancePredictor, Prediction
from repro.core.classify import (
    Classification,
    WorkloadClass,
    classify_counters,
    recommended_bias,
)

__all__ = [
    "RegressionResult",
    "fit_ols",
    "ForwardSelectionResult",
    "forward_select",
    "power_feature_matrix",
    "performance_feature_matrix",
    "ModelingDataset",
    "Observation",
    "build_dataset",
    "UnifiedPowerModel",
    "UnifiedPerformanceModel",
    "RecursiveLeastSquares",
    "OnlinePowerModel",
    "OnlinePerformanceModel",
    "ErrorReport",
    "evaluate_model",
    "influence_breakdown",
    "PowerPerformancePredictor",
    "Prediction",
    "Classification",
    "WorkloadClass",
    "classify_counters",
    "recommended_bias",
]
