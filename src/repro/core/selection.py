"""Forward selection of explanatory variables.

The paper: *"We use the forward selection method to find an 'optimal'
model that maximizes the adjusted coefficient of determination by
allowing at most 10 independent variables to be used."*

Greedy algorithm: starting from the empty model, repeatedly add the
feature whose inclusion yields the highest adjusted R-bar-squared; stop
when no feature improves it or when the cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.regression import RegressionResult, fit_ols


@dataclass(frozen=True)
class ForwardSelectionResult:
    """Outcome of a forward-selection run."""

    #: Indices of the selected columns, in selection order.
    selected: tuple[int, ...]
    #: Names of the selected columns, in selection order.
    selected_names: tuple[str, ...]
    #: Adjusted R-bar-squared after each selection step.
    history: tuple[float, ...]
    #: Final fitted model over the selected columns.
    model: RegressionResult

    @property
    def adjusted_r2(self) -> float:
        """Adjusted R-bar-squared of the final model."""
        return self.model.adjusted_r2

    def design_matrix(self, X: np.ndarray) -> np.ndarray:
        """Project a full feature matrix onto the selected columns."""
        return np.asarray(X, dtype=float)[:, list(self.selected)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict from a *full* feature matrix (selection applied here)."""
        return self.model.predict(self.design_matrix(X))


def forward_select(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    max_features: int = 10,
) -> ForwardSelectionResult:
    """Greedy forward selection maximizing adjusted R-bar-squared.

    Parameters
    ----------
    X:
        Full feature matrix, shape (n_obs, n_features).
    y:
        Target vector.
    feature_names:
        One name per column of ``X`` (used for reporting).
    max_features:
        The paper's cap on explanatory variables (10; Figs. 7-8 sweep
        5-20).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[1] != len(feature_names):
        raise ValueError(
            f"{X.shape[1]} columns but {len(feature_names)} feature names"
        )
    if max_features < 1:
        raise ValueError(f"max_features must be >= 1, got {max_features}")

    selected: list[int] = []
    history: list[float] = []
    best_model: RegressionResult | None = None
    best_score = float("-inf")
    remaining = set(range(X.shape[1]))

    while remaining and len(selected) < max_features:
        step_best: tuple[float, int, RegressionResult] | None = None
        for j in sorted(remaining):
            candidate = X[:, selected + [j]]
            # Skip degenerate candidates (constant column adds nothing).
            if np.ptp(X[:, j]) == 0.0:
                continue
            model = fit_ols(candidate, y)
            if step_best is None or model.adjusted_r2 > step_best[0]:
                step_best = (model.adjusted_r2, j, model)
        if step_best is None:
            break
        score, j, model = step_best
        if score <= best_score:
            break  # no improvement: stop early as the paper's method does
        selected.append(j)
        remaining.discard(j)
        history.append(score)
        best_model = model
        best_score = score

    if best_model is None:
        # All features degenerate: fall back to the intercept-only model
        # expressed over the first column (coefficient will be ~0).
        selected = [0]
        best_model = fit_ols(X[:, [0]], y)
        history = [best_model.adjusted_r2]

    return ForwardSelectionResult(
        selected=tuple(selected),
        selected_names=tuple(feature_names[j] for j in selected),
        history=tuple(history),
        model=best_model,
    )
