"""Online (recursive) least squares: streaming Eq. 1 / Eq. 2 models.

The paper fits its unified models *offline*, from a completed
114-sample dataset.  The related run-time power-modeling work
(Nunez-Yanez et al.; Wang & Chu) updates the model *while the campaign
runs*, so a DVFS governor can re-plan from live data.  This module
provides that substrate:

* :class:`RecursiveLeastSquares` — the numerical core: rank-1
  Sherman–Morrison updates of the inverse information matrix, optional
  exponential forgetting, an exact *downdate* (sample removal) path for
  incremental cross-validation, and a fault policy (skip-update with
  covariance inflation) that keeps the estimator finite and
  well-conditioned under meter dropout and profiler failures.
* :class:`OnlinePowerModel` / :class:`OnlinePerformanceModel` — the
  streaming counterparts of the offline unified models: they ingest
  :class:`~repro.core.dataset.Observation` values one at a time and
  expose the same ``predict(dataset)`` interface, so a governor can
  swap a live model in wherever a batch fit was expected.

With ``forgetting == 1.0`` the recursion converges to the batch
ordinary-least-squares solution of :func:`repro.core.regression.fit_ols`
up to the (tiny) ridge bias of the prior: after ``n`` accepted samples
the estimate is exactly ``(X'X + I/prior_scale)^-1 X'y``, which for the
default ``prior_scale`` of 1e8 agrees with ``numpy.linalg.lstsq`` to
better than 1e-8 on well-conditioned streams — the property the test
battery in ``tests/test_online.py`` pins down.  With ``forgetting < 1``
sample ``i`` of ``n`` carries weight ``forgetting**(n-1-i)``: recent
samples count monotonically more, which is what lets a governor track a
drifting thermal or workload regime.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import ModelingDataset, Observation
from repro.core.regression import RegressionResult, adjusted_r_squared
from repro.engine.counters import CounterDomain
from repro.errors import ModelNotFittedError


class RecursiveLeastSquares:
    """Exact recursive least squares over rank-1 updates.

    Maintains the inverse (scaled) information matrix ``P`` and the
    coefficient vector ``theta`` of the affine model ``y ~ x @ coef +
    intercept`` (the intercept is an internally-augmented constant
    column).  One :meth:`update` costs O(d^2); no sample is ever
    stored.

    Parameters
    ----------
    n_features:
        Number of explanatory variables (excluding the intercept).
    forgetting:
        Exponential forgetting factor in (0, 1]; 1.0 weights all
        samples equally and converges to the batch OLS solution.
    prior_scale:
        Initial covariance ``P = prior_scale * I``.  Acts as an inverse
        ridge penalty ``1/prior_scale``; large values make the prior
        vanish against the data.
    inflation:
        Covariance multiplier applied when a sample is rejected
        (non-finite input, degenerate update): the estimator becomes
        *less* certain rather than silently wrong, and the covariance
        is re-capped at ``prior_scale`` so repeated faults cannot
        overflow it.
    """

    def __init__(
        self,
        n_features: int,
        forgetting: float = 1.0,
        prior_scale: float = 1e8,
        inflation: float = 2.0,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting must be in (0, 1], got {forgetting}")
        if prior_scale <= 0.0:
            raise ValueError(f"prior_scale must be > 0, got {prior_scale}")
        if inflation < 1.0:
            raise ValueError(f"inflation must be >= 1, got {inflation}")
        self.n_features = n_features
        self.forgetting = float(forgetting)
        self.prior_scale = float(prior_scale)
        self.inflation = float(inflation)
        d = n_features + 1  # + intercept column
        self._theta = np.zeros(d)
        self._P = np.eye(d) * prior_scale
        #: Weighted sufficient statistics (for goodness-of-fit only; the
        #: coefficients come from the recursion, never from these).
        self._syy = 0.0
        self._sy = 0.0
        self._b = np.zeros(d)
        self._weight = 0.0
        self.n_updates = 0
        self.n_skipped = 0

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether at least one sample has been accepted."""
        return self.n_updates > 0

    @property
    def coefficients(self) -> np.ndarray:
        """Per-feature coefficients of the current estimate."""
        return self._theta[:-1].copy()

    @property
    def intercept(self) -> float:
        """Intercept of the current estimate."""
        return float(self._theta[-1])

    @property
    def covariance(self) -> np.ndarray:
        """The (symmetric PSD) scaled inverse information matrix."""
        return self._P.copy()

    def clone(self) -> "RecursiveLeastSquares":
        """An independent copy of the full estimator state."""
        twin = RecursiveLeastSquares(
            self.n_features,
            forgetting=self.forgetting,
            prior_scale=self.prior_scale,
            inflation=self.inflation,
        )
        twin._theta = self._theta.copy()
        twin._P = self._P.copy()
        twin._syy, twin._sy = self._syy, self._sy
        twin._b = self._b.copy()
        twin._weight = self._weight
        twin.n_updates = self.n_updates
        twin.n_skipped = self.n_skipped
        return twin

    # ------------------------------------------------------------------
    # the recursion
    # ------------------------------------------------------------------

    def _augment(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.size != self.n_features:
            raise ValueError(
                f"sample must have {self.n_features} features, got {x.size}"
            )
        return np.append(x, 1.0)

    def _inflate(self) -> None:
        """Grow uncertainty after a rejected sample, capped at the prior.

        The cap rescales the whole matrix (never clips elements), so
        symmetry and positive-semidefiniteness survive arbitrarily long
        fault bursts.
        """
        peak = float(np.max(np.diag(self._P)))
        factor = self.inflation
        if peak * factor > self.prior_scale:
            factor = max(1.0, self.prior_scale / peak)
        self._P *= factor

    def _skip(self) -> bool:
        self.n_skipped += 1
        self._inflate()
        return False

    def update(self, x: np.ndarray, y: float) -> bool:
        """Ingest one sample; returns whether it was accepted.

        Rejected samples (non-finite features or target, or a
        numerically degenerate gain) leave the coefficients untouched
        and inflate the covariance — the estimator never goes NaN, it
        only gets less confident.
        """
        z = self._augment(x)
        y = float(y)
        if not (np.all(np.isfinite(z)) and np.isfinite(y)):
            return self._skip()
        lam = self.forgetting
        Pz = self._P @ z
        denom = lam + float(z @ Pz)
        if not np.isfinite(denom) or denom <= 0.0:
            return self._skip()
        gain = Pz / denom
        error = y - float(z @ self._theta)
        theta = self._theta + gain * error
        # Joseph-form covariance update: algebraically equal to
        # (P - gain Pz') / lam but quadratic in the gain, so round-off
        # cannot drive P indefinite even on badly collinear streams
        # (74 hardware counters share a handful of directions).
        M = self._P - np.outer(gain, Pz)
        P = (M - np.outer(M @ z, gain) + lam * np.outer(gain, gain)) / lam
        if not (np.all(np.isfinite(theta)) and np.all(np.isfinite(P))):
            return self._skip()
        self._theta = theta
        self._P = 0.5 * (P + P.T)  # keep exactly symmetric
        # forgetting-weighted sufficient statistics (goodness of fit)
        self._syy = lam * self._syy + y * y
        self._sy = lam * self._sy + y
        self._b = lam * self._b + z * y
        self._weight = lam * self._weight + 1.0
        self.n_updates += 1
        return True

    def downdate(self, x: np.ndarray, y: float) -> None:
        """Remove a previously-ingested sample (forgetting == 1 only).

        The exact inverse of :meth:`update` (up to floating-point
        round-off): the Sherman–Morrison rank-1 *removal* of the
        sample's contribution to the information matrix.  This is what
        makes leave-one-out style cross-validation incremental — O(d^2)
        per removed sample instead of a from-scratch refit.
        """
        if self.forgetting != 1.0:
            raise ValueError(
                "downdate is only exact without forgetting "
                f"(forgetting={self.forgetting})"
            )
        if self.n_updates < 1:
            raise ValueError("no samples to downdate")
        z = self._augment(x)
        y = float(y)
        if not (np.all(np.isfinite(z)) and np.isfinite(y)):
            raise ValueError("cannot downdate a non-finite sample")
        Pz = self._P @ z
        s = float(z @ Pz)
        if s >= 1.0:
            raise ValueError(
                "downdate would make the information matrix singular "
                "(sample carries the remaining information in its direction)"
            )
        error = y - float(z @ self._theta)
        self._theta = self._theta - (Pz / (1.0 - s)) * error
        P = self._P + np.outer(Pz, Pz) / (1.0 - s)
        self._P = 0.5 * (P + P.T)
        self._syy -= y * y
        self._sy -= y
        self._b -= z * y
        self._weight -= 1.0
        self.n_updates -= 1

    # ------------------------------------------------------------------
    # the offline-compatible readout
    # ------------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix (n_obs, n_features)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"feature matrix must be (n, {self.n_features}), got {X.shape}"
            )
        return X @ self._theta[:-1] + self._theta[-1]

    def result(self) -> RegressionResult:
        """The current estimate as an offline-style regression result.

        Goodness of fit comes from the forgetting-weighted sufficient
        statistics — no sample is stored, yet the R² is exact for the
        weighted stream the estimator saw.
        """
        if not self.is_fitted:
            raise ModelNotFittedError(
                "RecursiveLeastSquares has not accepted any sample yet"
            )
        # SSE = sum w (y - z.theta)^2 = syy - 2 theta.b + theta' A theta;
        # A theta is reconstructed through P's definition only when the
        # prior is negligible, so use the numerically direct form
        # instead: residual sum via b and the model's self-consistency.
        theta = self._theta
        sse = self._syy - 2.0 * float(theta @ self._b) + float(
            theta @ self._information() @ theta
        )
        mean = self._sy / self._weight if self._weight > 0 else 0.0
        sst = self._syy - self._weight * mean * mean
        sse = max(sse, 0.0)
        sst = max(sst, 0.0)
        if sst == 0.0:
            r2 = 1.0 if sse == 0.0 else 0.0
        else:
            r2 = 1.0 - sse / sst
        return RegressionResult(
            coefficients=self.coefficients,
            intercept=self.intercept,
            r2=r2,
            adjusted_r2=adjusted_r_squared(
                r2, self.n_updates, self.n_features
            ),
            n_observations=self.n_updates,
        )

    def _information(self) -> np.ndarray:
        """The weighted information matrix implied by the recursion.

        ``P = (A + I/prior_scale)^-1`` exactly when forgetting is 1;
        inverting once for a fit statistic is O(d^3) but only happens
        in :meth:`result`, never on the streaming path.
        """
        d = self.n_features + 1
        A = np.linalg.pinv(self._P, hermitian=True)
        return A - np.eye(d) * (
            self.forgetting**self.n_updates / self.prior_scale
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RecursiveLeastSquares d={self.n_features} "
            f"forgetting={self.forgetting} updates={self.n_updates} "
            f"skipped={self.n_skipped}>"
        )


# ----------------------------------------------------------------------
# streaming unified models
# ----------------------------------------------------------------------


class _OnlineUnifiedModel:
    """Shared streaming machinery of the two online unified models.

    Mirrors :class:`repro.core.models._UnifiedModel`'s prediction
    interface (``predict(dataset)``, ``is_fitted``) but is fed one
    :class:`~repro.core.dataset.Observation` at a time instead of a
    completed dataset.  Features are rescaled by the magnitudes of the
    first accepted sample so the shared ``prior_scale`` is meaningful
    across counters spanning many orders of magnitude (the same
    conditioning concern :func:`repro.core.regression.fit_ols` solves
    with column equilibration).
    """

    target_name: str = ""

    def __init__(
        self,
        counter_names: tuple[str, ...],
        counter_domains: dict[str, CounterDomain],
        forgetting: float = 1.0,
        prior_scale: float = 1e8,
        inflation: float = 2.0,
    ) -> None:
        if not counter_names:
            raise ValueError("need at least one counter feature")
        missing = [n for n in counter_names if n not in counter_domains]
        if missing:
            raise ValueError(f"counters without a domain: {missing}")
        self.counter_names = tuple(counter_names)
        self.counter_domains = dict(counter_domains)
        self._is_core = np.array(
            [
                counter_domains[name] is CounterDomain.CORE
                for name in self.counter_names
            ]
        )
        self.rls = RecursiveLeastSquares(
            len(self.counter_names),
            forgetting=forgetting,
            prior_scale=prior_scale,
            inflation=inflation,
        )
        self._scale: np.ndarray | None = None
        self._scale_set: np.ndarray | None = None

    # -- subclass interface ------------------------------------------------

    def _feature_row(
        self, counters: dict[str, float], exec_seconds: float, op
    ) -> np.ndarray:
        raise NotImplementedError

    def _target(self, observation: Observation) -> float:
        raise NotImplementedError

    # -- streaming ingestion ----------------------------------------------

    def _domain_freq(self, op) -> np.ndarray:
        return np.where(self._is_core, op.core_mhz, op.mem_mhz)

    def _scaled(self, row: np.ndarray) -> np.ndarray:
        # Each coordinate's scale is frozen at its first nonzero value.
        # Freezing keeps the recursion linear (rescaling mid-stream
        # would re-weight history), and waiting for a nonzero value is
        # safe because every earlier value in that coordinate was
        # exactly 0 — 0 divided by any scale is still 0.
        if self._scale is None:
            self._scale = np.ones_like(row)
            self._scale_set = np.zeros(row.shape, dtype=bool)
        fresh = ~self._scale_set & np.isfinite(row) & (row != 0.0)
        if np.any(fresh):
            self._scale = np.where(fresh, np.abs(row), self._scale)
            self._scale_set = self._scale_set | fresh
        return row / self._scale

    def observe(self, observation: Observation) -> bool:
        """Ingest one streaming observation; returns acceptance.

        Degraded measurements (meter-quorum violations under fault
        injection) are rejected through the estimator's skip-update
        policy: the model never trains on readings the instrument
        itself flagged, but its covariance inflates so the uncertainty
        is recorded.
        """
        target = self._target(observation)
        row = self._feature_row(
            observation.counters, observation.exec_seconds, observation.op
        )
        if observation.degraded or not np.isfinite(target):
            return self.rls._skip()
        if not np.all(np.isfinite(row)):
            return self.rls._skip()
        return self.rls.update(self._scaled(row), target)

    # -- the offline-compatible interface ---------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether any sample has been accepted."""
        return self.rls.is_fitted

    @property
    def n_updates(self) -> int:
        """Accepted streaming samples."""
        return self.rls.n_updates

    @property
    def n_skipped(self) -> int:
        """Rejected streaming samples (fault policy engagements)."""
        return self.rls.n_skipped

    def predict(self, dataset: ModelingDataset) -> np.ndarray:
        """Predict the target for every observation of a dataset."""
        if not self.is_fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} has not accepted any sample yet"
            )
        rows = np.array(
            [
                self._feature_row(o.counters, o.exec_seconds, o.op)
                for o in dataset.observations
            ],
            dtype=float,
        )
        return self.rls.predict(rows / self._scale)

    def predict_rows(self, rows: np.ndarray) -> np.ndarray:
        """Predict from raw (unscaled) Eq. 1/Eq. 2 feature rows."""
        if not self.is_fitted:
            raise ModelNotFittedError(
                f"{type(self).__name__} has not accepted any sample yet"
            )
        rows = np.asarray(rows, dtype=float)
        return self.rls.predict(rows / self._scale)

    def feature_row(
        self, counters: dict[str, float], exec_seconds: float, op
    ) -> np.ndarray:
        """The raw Eq. 1/Eq. 2 feature row of one hypothetical run."""
        return self._feature_row(counters, exec_seconds, op)

    def clone(self) -> "_OnlineUnifiedModel":
        """An independent copy (state included)."""
        twin = type(self)(
            self.counter_names,
            self.counter_domains,
            forgetting=self.rls.forgetting,
            prior_scale=self.rls.prior_scale,
            inflation=self.rls.inflation,
        )
        twin.rls = self.rls.clone()
        twin._scale = None if self._scale is None else self._scale.copy()
        twin._scale_set = (
            None if self._scale_set is None else self._scale_set.copy()
        )
        return twin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} updates={self.n_updates} "
            f"skipped={self.n_skipped}>"
        )


class OnlinePowerModel(_OnlineUnifiedModel):
    """Streaming Eq. 1: average power from counter rates x frequency."""

    target_name = "average power [W]"

    def _feature_row(
        self, counters: dict[str, float], exec_seconds: float, op
    ) -> np.ndarray:
        totals = np.array(
            [counters[name] for name in self.counter_names], dtype=float
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = totals / exec_seconds
        return rates * self._domain_freq(op)

    def _target(self, observation: Observation) -> float:
        return observation.avg_power_w


class OnlinePerformanceModel(_OnlineUnifiedModel):
    """Streaming Eq. 2: execution time from counter totals / frequency."""

    target_name = "execution time [s]"

    def _feature_row(
        self, counters: dict[str, float], exec_seconds: float, op
    ) -> np.ndarray:
        totals = np.array(
            [counters[name] for name in self.counter_names], dtype=float
        )
        return totals / self._domain_freq(op)

    def _target(self, observation: Observation) -> float:
        return observation.exec_seconds
