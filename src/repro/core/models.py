"""The unified power and performance models (Section IV).

Both models share the same machinery — Eq. 1 / Eq. 2 feature
construction followed by forward selection capped at 10 variables — and
differ only in the feature transform and the target.  A single fitted
model covers *every* configurable frequency pair of a GPU; that unification
is the paper's claimed novelty over per-frequency prior work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.core.features import performance_feature_matrix, power_feature_matrix
from repro.core.selection import ForwardSelectionResult, forward_select
from repro.errors import ModelNotFittedError

FeatureFn = Callable[[ModelingDataset], tuple[np.ndarray, tuple[str, ...]]]


class _UnifiedModel:
    """Shared fit/predict machinery of the two unified models."""

    #: Human-readable target name (subclasses set this).
    target_name: str = ""

    def __init__(self, max_features: int = 10) -> None:
        if max_features < 1:
            raise ValueError(f"max_features must be >= 1, got {max_features}")
        self.max_features = max_features
        self._selection: ForwardSelectionResult | None = None

    # -- subclass interface ------------------------------------------------

    def _features(self, dataset: ModelingDataset) -> tuple[np.ndarray, tuple[str, ...]]:
        raise NotImplementedError

    def _target(self, dataset: ModelingDataset) -> np.ndarray:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    @property
    def selection(self) -> ForwardSelectionResult:
        """The forward-selection outcome (after :meth:`fit`)."""
        if self._selection is None:
            raise ModelNotFittedError(
                f"{type(self).__name__} has not been fitted yet"
            )
        return self._selection

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._selection is not None

    @property
    def adjusted_r2(self) -> float:
        """R-bar-squared of the fitted model (Tables V and VI)."""
        return self.selection.adjusted_r2

    @property
    def selected_counters(self) -> tuple[str, ...]:
        """Names of the selected explanatory variables."""
        return self.selection.selected_names

    def fit(self, dataset: ModelingDataset) -> "_UnifiedModel":
        """Fit on a modeling dataset; returns self for chaining."""
        if dataset.n_observations < 2:
            raise ValueError("dataset must contain at least two observations")
        X, names = self._features(dataset)
        y = self._target(dataset)
        self._selection = forward_select(
            X, y, names, max_features=self.max_features
        )
        return self

    def predict(self, dataset: ModelingDataset) -> np.ndarray:
        """Predict the target for every observation of a dataset."""
        X, _ = self._features(dataset)
        return self.selection.predict(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"fitted, R̄²={self.adjusted_r2:.3f}, "
            f"{len(self.selected_counters)} variables"
            if self.is_fitted
            else "unfitted"
        )
        return f"<{type(self).__name__} ({state})>"


class UnifiedPowerModel(_UnifiedModel):
    """Eq. 1: average system power from counter rates x frequency."""

    target_name = "average power [W]"

    def _features(self, dataset: ModelingDataset) -> tuple[np.ndarray, tuple[str, ...]]:
        return power_feature_matrix(dataset)

    def _target(self, dataset: ModelingDataset) -> np.ndarray:
        return dataset.avg_power_w()


class UnifiedPerformanceModel(_UnifiedModel):
    """Eq. 2: execution time from counter totals / frequency."""

    target_name = "execution time [s]"

    def _features(self, dataset: ModelingDataset) -> tuple[np.ndarray, tuple[str, ...]]:
        return performance_feature_matrix(dataset)

    def _target(self, dataset: ModelingDataset) -> np.ndarray:
        return dataset.exec_seconds()
