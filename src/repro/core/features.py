"""Feature construction for the unified models (Eqs. 1 and 2).

The paper's key modeling idea: fold the operating frequency into the
features so a *single* model covers every frequency pair.

* **Power (Eq. 1)** — each counter is converted to a per-second rate and
  multiplied by the frequency of its domain: the faster the clock, the
  more energy each event costs per unit time::

      power = sum_i x_i * (c_i_rate * corefreq)
            + sum_j y_j * (m_j_rate * memfreq) + z

* **Performance (Eq. 2)** — each counter total is divided by the
  frequency of its domain: the faster the clock, the shorter the latency
  of each event::

      exectime = sum_i x_i * (c_i / corefreq)
               + sum_j y_j * (m_j / memfreq) + z
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import ModelingDataset
from repro.engine.counters import CounterDomain


def _domain_frequencies(dataset: ModelingDataset) -> np.ndarray:
    """Per-(observation, counter) domain frequency in MHz."""
    core = np.array([o.op.core_mhz for o in dataset.observations])
    mem = np.array([o.op.mem_mhz for o in dataset.observations])
    is_core = np.array(
        [
            dataset.counter_domains[name] is CounterDomain.CORE
            for name in dataset.counter_names
        ]
    )
    # (n_obs, n_counters): core frequency where the counter is a
    # core-event, memory frequency otherwise.
    return np.where(is_core[None, :], core[:, None], mem[:, None])


def power_feature_matrix(
    dataset: ModelingDataset,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Eq. 1 design matrix: per-second counter rates x domain frequency.

    Returns the matrix (n_observations, n_counters) and feature names.
    """
    totals = dataset.counter_matrix()
    seconds = dataset.exec_seconds()[:, None]
    rates = totals / seconds
    X = rates * _domain_frequencies(dataset)
    names = tuple(f"{n}*freq" for n in dataset.counter_names)
    return X, names


def performance_feature_matrix(
    dataset: ModelingDataset,
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Eq. 2 design matrix: counter totals / domain frequency."""
    totals = dataset.counter_matrix()
    X = totals / _domain_frequencies(dataset)
    names = tuple(f"{n}/freq" for n in dataset.counter_names)
    return X, names
