"""Modeling dataset construction (Section IV-A).

The paper builds its regression dataset from all Table II benchmarks the
CUDA Profiler can analyze (33 of 37), each at several input sizes — 114
(benchmark, size) samples in total — measured at *every* configurable
frequency pair.  One dataset observation is therefore a
(benchmark, size, operating point) triple carrying:

* the counter totals collected by the profiler (once per benchmark/size,
  at the default (H-H) clocks — counters describe the workload, not the
  clocks), and
* the execution time and average wall power measured at that pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.arch.dvfs import OperatingPoint
from repro.arch.specs import GPUSpec
from repro.engine.counters import CounterDomain, counter_set
from repro.execution.engine import ExecutionConfig, ExecutionStats, run_units
from repro.execution.units import dataset_units
from repro.faults.plan import FaultPlan
from repro.instruments.profiler import CudaProfiler
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import modeling_benchmarks
from repro.session.context import RunContext, legacy_context
from repro.telemetry.runtime import Telemetry


@dataclass(frozen=True)
class Exclusion:
    """One (benchmark, size) sample that contributed no observations.

    Mirrors the paper's accounting: the 4 benchmarks its profiler
    failed on are *excluded with a reason*, not silently dropped.
    Under fault injection the same applies to crashed or failed work
    units.
    """

    benchmark: str
    suite: str
    scale: float
    reason: str

    def document(self) -> dict[str, object]:
        """Canonical JSON-able form (manifests, health reports)."""
        return {
            "benchmark": self.benchmark,
            "suite": self.suite,
            "scale": self.scale,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Observation:
    """One (benchmark, size, operating point) measurement."""

    benchmark: str
    suite: str
    scale: float
    op: OperatingPoint
    #: Profiler counter totals for the (benchmark, size) workload.
    counters: dict[str, float]
    #: Measured execution time at this operating point (s).
    exec_seconds: float
    #: Measured average wall power at this operating point (W).
    avg_power_w: float
    #: Measured wall energy of one run (J).
    energy_j: float
    #: Whether the meter's sample quorum was violated for this
    #: measurement (fault injection; never True on a healthy meter).
    degraded: bool = False

    @property
    def sample_key(self) -> tuple[str, float]:
        """Identity of the workload sample this observation measures."""
        return (self.benchmark, self.scale)


@dataclass(frozen=True)
class ModelingDataset:
    """The full regression dataset for one GPU."""

    gpu: GPUSpec
    counter_names: tuple[str, ...]
    counter_domains: dict[str, CounterDomain]
    observations: tuple[Observation, ...]
    #: (benchmark, size) samples that contributed no observations,
    #: with reasons (profiler failures, crashed units, ...).
    exclusions: tuple[Exclusion, ...] = ()

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------

    @property
    def n_observations(self) -> int:
        """Total (benchmark, size, pair) observations."""
        return len(self.observations)

    @property
    def n_samples(self) -> int:
        """Distinct (benchmark, size) workload samples (paper: 114)."""
        return len({o.sample_key for o in self.observations})

    @property
    def benchmarks(self) -> tuple[str, ...]:
        """Benchmark names present, in first-appearance order."""
        seen: dict[str, None] = {}
        for o in self.observations:
            seen.setdefault(o.benchmark, None)
        return tuple(seen)

    @property
    def pair_keys(self) -> tuple[str, ...]:
        """Operating-point keys present, in first-appearance order."""
        seen: dict[str, None] = {}
        for o in self.observations:
            seen.setdefault(o.op.key, None)
        return tuple(seen)

    def counter_matrix(self) -> np.ndarray:
        """Counter totals, shape (n_observations, n_counters)."""
        return np.array(
            [[o.counters[name] for name in self.counter_names]
             for o in self.observations],
            dtype=float,
        )

    def exec_seconds(self) -> np.ndarray:
        """Measured execution times (the performance target)."""
        return np.array([o.exec_seconds for o in self.observations])

    def avg_power_w(self) -> np.ndarray:
        """Measured average wall power (the power target)."""
        return np.array([o.avg_power_w for o in self.observations])

    # ------------------------------------------------------------------
    # subsetting
    # ------------------------------------------------------------------

    def _subset(self, keep: Iterable[bool]) -> "ModelingDataset":
        kept = tuple(o for o, k in zip(self.observations, keep) if k)
        return ModelingDataset(
            gpu=self.gpu,
            counter_names=self.counter_names,
            counter_domains=self.counter_domains,
            observations=kept,
            exclusions=self.exclusions,
        )

    def for_pair(self, pair_key: str) -> "ModelingDataset":
        """Observations of a single frequency pair (per-pair baselines)."""
        return self._subset(o.op.key == pair_key for o in self.observations)

    def without_benchmark(self, name: str) -> "ModelingDataset":
        """Leave-one-benchmark-out subset (for cross-validation)."""
        return self._subset(o.benchmark != name for o in self.observations)

    def only_benchmark(self, name: str) -> "ModelingDataset":
        """Observations of one benchmark."""
        return self._subset(o.benchmark == name for o in self.observations)


def build_dataset(
    gpu: GPUSpec,
    benchmarks: Sequence[KernelSpec] | None = None,
    pairs: Sequence[str] | None = None,
    ctx: RunContext | None = None,
    stats: ExecutionStats | None = None,
    *,
    seed: int | None = None,
    profiler: CudaProfiler | None = None,
    execution: ExecutionConfig | None = None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> ModelingDataset:
    """Measure and profile the full modeling dataset for one GPU.

    The build decomposes into one work unit per (benchmark, input size)
    sample and runs on the campaign execution engine; serial and
    parallel executions assemble byte-identical datasets because unit
    order, not completion order, dictates observation order.

    Parameters
    ----------
    gpu:
        Card to build the dataset for.
    benchmarks:
        Workloads to include; defaults to the 33 profiler-compatible
        benchmarks (yielding the paper's 114 samples through their
        per-benchmark input scales).
    pairs:
        Frequency-pair keys to measure; defaults to every configurable
        pair of the card (Table III).
    ctx:
        The :class:`~repro.session.RunContext` the build runs under —
        seed, executor/cache selection, fault plan, telemetry and
        profiler override in one normalized value.  Defaults to a plain
        context (serial, uncached, fault-free).  When the context
        carries a fault plan, execution runs in graceful degradation
        (``on_error="degrade"``): failed units become recorded
        :class:`Exclusion` entries instead of aborting the build.  When
        it carries telemetry, the build reports into it (a
        ``dataset-build`` phase span over the unit batch, plus
        observation/exclusion counters).
    stats:
        Optional accumulator the build's execution statistics (units,
        cache hits, retries, wall time) are merged into.
    seed, profiler, execution, faults, telemetry:
        Deprecated kwarg bundle; pass a ``ctx`` instead.  Kept as a
        compatibility shim for one release.
    """
    legacy = legacy_context(
        "build_dataset",
        ctx=ctx,
        seed=seed,
        profiler=profiler,
        execution=execution,
        faults=faults,
        telemetry=telemetry,
    )
    if legacy is not None:
        ctx = legacy
    elif ctx is None:
        ctx = RunContext.resolve()

    if benchmarks is None:
        benchmarks = modeling_benchmarks()
    counters = counter_set(gpu.traits.counter_set)
    counter_names = tuple(c.name for c in counters)
    domains = {c.name: c.domain for c in counters}

    if pairs is not None:
        wanted = set(pairs)
        ops = [op for op in gpu.operating_points() if op.key in wanted]
        if not ops:
            raise ValueError(f"no configurable pair among {sorted(wanted)}")

    telemetry = ctx.telemetry
    units = dataset_units(gpu, benchmarks, pairs=pairs, ctx=ctx)
    if telemetry is not None:
        bus = getattr(telemetry, "bus", None)
        if bus is not None:
            bus.phase_start(f"dataset:{gpu.name}", units=len(units))
        with telemetry.tracer.span(
            "dataset-build", kind="phase", gpu=gpu.name, units=len(units)
        ):
            outcome = run_units(units, ctx)
    else:
        outcome = run_units(units, ctx)
    if stats is not None:
        stats.merge(outcome.stats)

    failed = {f.index: f for f in outcome.failures}
    observations: list[Observation] = []
    exclusions: list[Exclusion] = []
    for index, (unit, payload) in enumerate(zip(units, outcome.payloads)):
        if payload is None:
            # Degrade mode: the unit failed past its retry budget (or
            # permanently); its sample is excluded with the reason.
            failure = failed.get(index)
            reason = failure.describe() if failure else "unit failed"
            exclusions.append(
                Exclusion(
                    benchmark=unit.kernel.name,
                    suite=unit.kernel.suite,
                    scale=unit.scale,
                    reason=reason,
                )
            )
            continue
        if not payload["profiled"]:
            # Mirrors the paper: benchmarks the profiler cannot analyze
            # contribute no modeling samples.
            exclusions.append(
                Exclusion(
                    benchmark=unit.kernel.name,
                    suite=unit.kernel.suite,
                    scale=unit.scale,
                    reason=str(
                        payload.get("reason", "profiler analysis failure")
                    ),
                )
            )
            continue
        totals = dict(payload["counters"])
        for entry in payload["measurements"]:
            observations.append(
                Observation(
                    benchmark=unit.kernel.name,
                    suite=unit.kernel.suite,
                    scale=unit.scale,
                    op=gpu.operating_point(entry["pair"]),
                    counters=totals,
                    exec_seconds=entry["exec_seconds"],
                    avg_power_w=entry["avg_power_w"],
                    energy_j=entry["energy_j"],
                    degraded=bool(entry.get("degraded", False)),
                )
            )
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.inc("dataset.observations", len(observations))
        metrics.inc("dataset.exclusions", len(exclusions))
        metrics.inc(
            "dataset.samples",
            len({(o.benchmark, o.scale) for o in observations}),
        )
        if outcome.stats.quarantined:
            metrics.inc("dataset.quarantined", outcome.stats.quarantined)
    return ModelingDataset(
        gpu=gpu,
        counter_names=counter_names,
        counter_domains=domains,
        observations=tuple(observations),
        exclusions=tuple(exclusions),
    )
