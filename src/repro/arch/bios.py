"""Synthetic VBIOS image format and patcher.

The paper's system software provides *no* interface to scale GPU clocks;
the authors instead modify the BIOS image embedded in the driver binary so
the card boots at the chosen performance level (the open "Gdev" method).
This module reproduces that path with a small synthetic firmware format:

============ ======= =====================================================
offset       size    field
============ ======= =====================================================
0            4       magic ``b"RVBS"``
4            2       format version (little-endian u16, currently 1)
6            24      GPU name, UTF-8, NUL padded
30           1       boot core level (0=L, 1=M, 2=H)
31           1       boot memory level
32           1       number of clock-table entries
33           1       reserved (0)
34           8*n     clock table entries (see :class:`ClockEntry`)
34 + 8*n     1       checksum byte: total byte sum must be 0 mod 256
============ ======= =====================================================

Each clock-table entry is ``domain u8 | level u8 | freq_khz u32 |
voltage_mv u16`` (little endian).  The simulator refuses to boot an image
whose checksum or clock table is inconsistent, and
:func:`patch_boot_levels` refuses combinations outside Table III — the
same guard rails the real method has.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.dvfs import ClockDomain, ClockLevel, OperatingPoint
from repro.errors import BIOSFormatError, InvalidOperatingPointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.specs import GPUSpec

MAGIC = b"RVBS"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sH24sBBBB")
_ENTRY = struct.Struct("<BBIH")

_LEVEL_CODES = {ClockLevel.L: 0, ClockLevel.M: 1, ClockLevel.H: 2}
_CODE_LEVELS = {v: k for k, v in _LEVEL_CODES.items()}
_DOMAIN_CODES = {ClockDomain.CORE: 0, ClockDomain.MEMORY: 1}
_CODE_DOMAINS = {v: k for k, v in _DOMAIN_CODES.items()}


@dataclass(frozen=True)
class ClockEntry:
    """One row of the VBIOS clock/voltage table."""

    domain: ClockDomain
    level: ClockLevel
    freq_khz: int
    voltage_mv: int

    def pack(self) -> bytes:
        """Serialize to the 8-byte on-disk representation."""
        return _ENTRY.pack(
            _DOMAIN_CODES[self.domain],
            _LEVEL_CODES[self.level],
            self.freq_khz,
            self.voltage_mv,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "ClockEntry":
        """Deserialize from the 8-byte on-disk representation."""
        domain_code, level_code, freq_khz, voltage_mv = _ENTRY.unpack(raw)
        try:
            return cls(
                domain=_CODE_DOMAINS[domain_code],
                level=_CODE_LEVELS[level_code],
                freq_khz=freq_khz,
                voltage_mv=voltage_mv,
            )
        except KeyError as exc:
            raise BIOSFormatError(f"bad clock entry encoding: {raw!r}") from exc


@dataclass(frozen=True)
class BiosImage:
    """Parsed view of a VBIOS image."""

    gpu_name: str
    version: int
    boot_core_level: ClockLevel
    boot_mem_level: ClockLevel
    entries: tuple[ClockEntry, ...]

    def clock_khz(self, domain: ClockDomain, level: ClockLevel) -> int:
        """Look up the programmed frequency of a (domain, level) slot."""
        for entry in self.entries:
            if entry.domain is domain and entry.level is level:
                return entry.freq_khz
        raise BIOSFormatError(
            f"clock table has no entry for {domain.value}/{level.value}"
        )

    def voltage_mv(self, domain: ClockDomain, level: ClockLevel) -> int:
        """Look up the programmed voltage of a (domain, level) slot."""
        for entry in self.entries:
            if entry.domain is domain and entry.level is level:
                return entry.voltage_mv
        raise BIOSFormatError(
            f"clock table has no entry for {domain.value}/{level.value}"
        )

    def boot_point(self, spec: "GPUSpec") -> OperatingPoint:
        """Resolve the boot levels against a GPU spec.

        Cross-checks that the image's clock table matches the card (a
        mismatched flash would brick a real board; we raise instead).
        """
        if self.gpu_name != spec.name:
            raise BIOSFormatError(
                f"image is for {self.gpu_name!r}, not {spec.name!r}"
            )
        for level in ClockLevel:
            for domain, table in (
                (ClockDomain.CORE, spec.core_mhz),
                (ClockDomain.MEMORY, spec.mem_mhz),
            ):
                expected = round(table[level] * 1000)
                found = self.clock_khz(domain, level)
                if found != expected:
                    raise BIOSFormatError(
                        f"{domain.value}/{level.value} clock mismatch: image "
                        f"has {found} kHz, spec says {expected} kHz"
                    )
        return spec.operating_point(self.boot_core_level, self.boot_mem_level)


def _checksum(body: bytes) -> int:
    """Value of the final byte that makes the total sum 0 mod 256."""
    return (-sum(body)) % 256


def build_image(
    spec: "GPUSpec",
    core_level: ClockLevel = ClockLevel.H,
    mem_level: ClockLevel = ClockLevel.H,
) -> bytes:
    """Build a factory VBIOS image for a card, booting at given levels."""
    if not spec.is_configurable(core_level, mem_level):
        raise InvalidOperatingPointError(
            f"{spec.name} cannot boot at ({core_level.value}-{mem_level.value})"
        )
    entries: list[ClockEntry] = []
    for level in (ClockLevel.L, ClockLevel.M, ClockLevel.H):
        entries.append(
            ClockEntry(
                ClockDomain.CORE,
                level,
                round(spec.core_mhz[level] * 1000),
                round(spec.core_vdd.at(level) * 1000),
            )
        )
        entries.append(
            ClockEntry(
                ClockDomain.MEMORY,
                level,
                round(spec.mem_mhz[level] * 1000),
                round(spec.mem_vdd.at(level) * 1000),
            )
        )
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        spec.name.encode("utf-8").ljust(24, b"\x00"),
        _LEVEL_CODES[core_level],
        _LEVEL_CODES[mem_level],
        len(entries),
        0,
    )
    body = header + b"".join(e.pack() for e in entries)
    return body + bytes([_checksum(body)])


def parse_image(data: bytes) -> BiosImage:
    """Parse and validate a VBIOS image.

    Raises
    ------
    BIOSFormatError
        On bad magic, truncation, unsupported version, or bad checksum.
    """
    if len(data) < _HEADER.size + 1:
        raise BIOSFormatError(f"image truncated: {len(data)} bytes")
    if sum(data) % 256 != 0:
        raise BIOSFormatError("checksum mismatch")
    magic, version, name_raw, core_code, mem_code, count, reserved = _HEADER.unpack(
        data[: _HEADER.size]
    )
    if magic != MAGIC:
        raise BIOSFormatError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise BIOSFormatError(f"unsupported format version {version}")
    if reserved != 0:
        raise BIOSFormatError("reserved header byte is not zero")
    expected_len = _HEADER.size + count * _ENTRY.size + 1
    if len(data) != expected_len:
        raise BIOSFormatError(
            f"length mismatch: {len(data)} bytes, expected {expected_len}"
        )
    try:
        core_level = _CODE_LEVELS[core_code]
        mem_level = _CODE_LEVELS[mem_code]
    except KeyError as exc:
        raise BIOSFormatError("bad boot level encoding") from exc
    entries = tuple(
        ClockEntry.unpack(
            data[_HEADER.size + i * _ENTRY.size : _HEADER.size + (i + 1) * _ENTRY.size]
        )
        for i in range(count)
    )
    return BiosImage(
        gpu_name=name_raw.rstrip(b"\x00").decode("utf-8"),
        version=version,
        boot_core_level=core_level,
        boot_mem_level=mem_level,
        entries=entries,
    )


def patch_boot_levels(
    data: bytes,
    spec: "GPUSpec",
    core_level: ClockLevel,
    mem_level: ClockLevel,
) -> bytes:
    """Rewrite the boot levels of an existing image (the Gdev method).

    Validates the input image, checks the requested pair against the
    card's Table III column, and recomputes the checksum.
    """
    image = parse_image(data)
    if image.gpu_name != spec.name:
        raise BIOSFormatError(
            f"image is for {image.gpu_name!r}, not {spec.name!r}"
        )
    if not spec.is_configurable(core_level, mem_level):
        raise InvalidOperatingPointError(
            f"{spec.name} does not expose ({core_level.value}-{mem_level.value})"
        )
    patched = bytearray(data[:-1])
    patched[30] = _LEVEL_CODES[core_level]
    patched[31] = _LEVEL_CODES[mem_level]
    return bytes(patched) + bytes([_checksum(bytes(patched))])
