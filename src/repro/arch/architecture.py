"""GPU architecture generations and their microarchitectural traits.

The paper studies three NVIDIA generations — Tesla, Fermi, Kepler — and
attributes its cross-generation findings to a handful of architectural
mechanisms: cache hierarchy (absent on Tesla), scheduler efficiency,
compute/memory overlap, and how aggressively voltage scales with
frequency.  :class:`ArchTraits` captures exactly those mechanisms so that
the characterization results *emerge* from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Architecture(enum.Enum):
    """GPU generation.

    Tesla/Fermi/Kepler are the NVIDIA generations studied in the paper;
    GCN (AMD's Graphics Core Next) implements the paper's stated future
    work — "validate the proposed power performance models by targeting
    multiple GPU microarchitectures as NVIDIA's Kepler and AMD's Radeon".
    """

    TESLA = "tesla"
    FERMI = "fermi"
    KEPLER = "kepler"
    GCN = "gcn"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self is Architecture.GCN:
            return "GCN"
        return self.value.capitalize()


@dataclass(frozen=True)
class ArchTraits:
    """Per-generation microarchitectural parameters.

    Attributes
    ----------
    cache_factor:
        Fraction of *perfectly local* traffic that the on-chip cache
        hierarchy can filter from DRAM.  Tesla has no L1/L2 data caches,
        so its factor is 0; Fermi introduced them; Kepler enlarged L2 and
        improved replacement.
    issue_efficiency:
        Fraction of the theoretical issue bandwidth achieved by the warp
        scheduler on a well-behaved kernel (before occupancy/divergence
        penalties).  Kepler's quad-scheduler with dual issue is modeled
        as more efficient than Tesla's single scalar issue.
    divergence_penalty:
        Multiplier on compute time per unit of branch divergence;
        serialization hurts most on Tesla (warp_serialize was a
        first-class counter there).
    overlap_exponent:
        Exponent ``p`` of the generalized-mean combination of compute and
        memory time, ``t = (t_c^p + t_m^p)^(1/p)``.  ``p -> inf`` is
        perfect overlap (``max``); ``p = 1`` is no overlap (sum).  Newer
        generations hide memory latency better.
    launch_overhead_s:
        Driver + hardware cost of one kernel launch, in seconds.
    timing_jitter_cv:
        Coefficient of variation of run-to-run execution-time jitter;
        older generations are modeled as noisier (the paper observes
        "unpredictable behaviors present in old GPUs").
    unmodeled_power_cv:
        Magnitude of per-benchmark power structure that is *not*
        explained by performance counters (data-dependent toggling,
        board-level regulation).  This is what bounds the attainable
        R-squared of the paper's power model.
    pcie_gb_s:
        Effective host-device transfer bandwidth of the card's bus
        generation (GB/s).  Transfer time scales with *neither* clock
        domain and is invisible to kernel-level counters — a major
        irreducible error source for the paper's performance model,
        especially on older buses.
    unmodeled_cpi_cv:
        Per-benchmark throughput idiosyncrasy (partition camping, replay
        storms, TLB behaviour) that no counter captures; a fixed
        multiplicative effect on kernel time.  Larger on older
        generations — the paper attributes its shrinking performance-
        model errors to "enhanced microarchitecture [removing]
        unpredictable behaviors present in old GPUs".
    driver_overhead_s:
        Median one-time driver/context/allocation overhead per program
        run; varies widely between benchmarks, scales with neither
        clock, and dominates the *percentage* error of short runs while
        barely moving R-squared (the paper's Table VIII vs Table VI
        tension).
    counter_set:
        Name of the performance-counter set exposed by the profiler for
        this generation (Section IV: 32 / 74 / 108 counters).
    """

    cache_factor: float
    issue_efficiency: float
    divergence_penalty: float
    overlap_exponent: float
    launch_overhead_s: float
    timing_jitter_cv: float
    unmodeled_power_cv: float
    pcie_gb_s: float
    unmodeled_cpi_cv: float
    driver_overhead_s: float
    counter_set: str


#: Trait table, one entry per generation.
TRAITS: dict[Architecture, ArchTraits] = {
    Architecture.TESLA: ArchTraits(
        cache_factor=0.0,
        issue_efficiency=0.62,
        divergence_penalty=1.00,
        overlap_exponent=2.2,
        launch_overhead_s=12e-6,
        timing_jitter_cv=0.035,
        unmodeled_power_cv=0.550,
        pcie_gb_s=2.5,
        unmodeled_cpi_cv=0.30,
        driver_overhead_s=1.60,
        counter_set="tesla",
    ),
    Architecture.FERMI: ArchTraits(
        cache_factor=0.72,
        issue_efficiency=0.74,
        divergence_penalty=0.62,
        overlap_exponent=3.5,
        launch_overhead_s=7e-6,
        timing_jitter_cv=0.030,
        unmodeled_power_cv=0.400,
        pcie_gb_s=3.2,
        unmodeled_cpi_cv=0.28,
        driver_overhead_s=0.50,
        counter_set="fermi",
    ),
    Architecture.KEPLER: ArchTraits(
        cache_factor=0.84,
        issue_efficiency=0.80,
        divergence_penalty=0.50,
        overlap_exponent=5.0,
        launch_overhead_s=5e-6,
        timing_jitter_cv=0.020,
        unmodeled_power_cv=1.000,
        pcie_gb_s=5.5,
        unmodeled_cpi_cv=0.15,
        driver_overhead_s=0.18,
        counter_set="kepler",
    ),
    # Extension architecture (paper future work): AMD GCN.  Read/write
    # L1 + large L2, four-SIMD compute units, PowerTune-era voltage
    # binning between Fermi's and Kepler's in steepness.
    Architecture.GCN: ArchTraits(
        cache_factor=0.80,
        issue_efficiency=0.76,
        divergence_penalty=0.55,
        overlap_exponent=4.5,
        launch_overhead_s=6e-6,
        timing_jitter_cv=0.025,
        unmodeled_power_cv=0.350,
        pcie_gb_s=5.5,
        unmodeled_cpi_cv=0.14,
        driver_overhead_s=0.35,
        counter_set="gcn",
    ),
}


def traits_of(arch: Architecture) -> ArchTraits:
    """Return the trait record for a generation."""
    return TRAITS[arch]
