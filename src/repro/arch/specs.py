"""Specifications of the four evaluated GPUs (Table I) plus the physical
power coefficients used by the simulator.

Table I of the paper provides the public specification (cores, peak
GFLOPS, bandwidth, TDP, clock levels).  The :class:`PowerCoefficients`
block is *our* substitution for the physical silicon: it decomposes the
TDP-scale power budget into a static/board component, a core-domain
dynamic component, a memory-domain background component and a per-access
DRAM energy.  The values are calibrated (see ``repro/calibration.py``)
so that the characterization results of Section III re-emerge with the
paper's shape — e.g. Fermi's large memory-background power is what makes
(H-L) pairs win ~40% on compute-bound kernels, and Kepler's steep V-f
curve is what makes (M-*) pairs win up to ~75%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.architecture import Architecture, ArchTraits, traits_of
from repro.arch.dvfs import ClockLevel, OperatingPoint, coerce_levels, parse_pair_key
from repro.arch.voltage import VoltageTable
from repro.errors import InvalidOperatingPointError, UnknownGPUError

#: Default DVFS reconfiguration cost (VBIOS reflash + reboot) charged by
#: the scheduler when a card is not told otherwise.  Section V of the
#: paper motivates a non-trivial switch cost; these values match the
#: original ``optimize/scheduler`` constants so existing schedules are
#: byte-identical.
DEFAULT_RECONFIGURE_SECONDS = 8.0
DEFAULT_RECONFIGURE_POWER_W = 95.0


@dataclass(frozen=True)
class PowerCoefficients:
    """Physical power decomposition of one card (DC side, Watts).

    Attributes
    ----------
    board_static_w:
        Leakage + board overhead with the card booted at the High core
        voltage, independent of activity.  Scales with core voltage as
        ``V**leakage_exponent``.
    core_dyn_w:
        Core-domain dynamic power at 100% compute utilization at the
        (H, H) point.  Scales as ``(V/V_H)**2 * (f/f_H) * utilization``.
    mem_background_w:
        Memory-domain background power (DRAM interface clocking, memory
        controller) at the Mem-H level, independent of traffic.  Scales
        as ``(Vm/Vm_H)**2 * (fm/fm_H)``.
    dram_access_j_per_gb:
        Energy per gigabyte of DRAM traffic (Joules/GB); traffic-
        proportional power that does *not* scale with memory frequency —
        moving a byte costs the same charge regardless of clock.
    leakage_exponent:
        Super-linear voltage dependence of the static component.
    """

    board_static_w: float
    core_dyn_w: float
    mem_background_w: float
    dram_access_j_per_gb: float
    leakage_exponent: float = 2.0


@dataclass(frozen=True)
class GPUSpec:
    """One evaluated graphics card (a row-set of Table I)."""

    name: str
    architecture: Architecture
    num_cores: int
    num_sms: int
    peak_gflops: float
    mem_bandwidth_gbs: float
    tdp_w: float
    core_mhz: dict[ClockLevel, float]
    mem_mhz: dict[ClockLevel, float]
    core_vdd: VoltageTable
    mem_vdd: VoltageTable
    allowed_pairs: frozenset[tuple[ClockLevel, ClockLevel]]
    power: PowerCoefficients
    #: Wall-clock cost of one DVFS reconfiguration (VBIOS reflash and
    #: reboot) and the board power drawn while it happens.  Per-card so
    #: heterogeneous fleets can charge realistic switch costs; defaults
    #: keep the paper cards' schedules byte-identical.
    reconfigure_seconds: float = DEFAULT_RECONFIGURE_SECONDS
    reconfigure_power_w: float = DEFAULT_RECONFIGURE_POWER_W

    def __post_init__(self) -> None:
        self.core_vdd.validate()
        self.mem_vdd.validate()
        for table, label in ((self.core_mhz, "core"), (self.mem_mhz, "memory")):
            if set(table) != {ClockLevel.L, ClockLevel.M, ClockLevel.H}:
                raise ValueError(f"{label} clock table must define L, M and H")
            if not (table[ClockLevel.L] <= table[ClockLevel.M] <= table[ClockLevel.H]):
                raise ValueError(f"{label} clocks must be ordered L <= M <= H")
        if (ClockLevel.H, ClockLevel.H) not in self.allowed_pairs:
            raise ValueError("the default (H-H) pair must always be configurable")

    # ------------------------------------------------------------------
    # traits and clocks
    # ------------------------------------------------------------------

    @property
    def traits(self) -> ArchTraits:
        """Microarchitectural traits of this card's generation."""
        return traits_of(self.architecture)

    def core_freq(self, level: ClockLevel) -> float:
        """Core clock in MHz at a level."""
        return self.core_mhz[level]

    def mem_freq(self, level: ClockLevel) -> float:
        """Memory clock in MHz at a level."""
        return self.mem_mhz[level]

    # ------------------------------------------------------------------
    # operating points (Table III)
    # ------------------------------------------------------------------

    def is_configurable(self, core: ClockLevel, mem: ClockLevel) -> bool:
        """Whether the BIOS exposes this (core, mem) pair (Table III)."""
        return (core, mem) in self.allowed_pairs

    def operating_point(
        self, core: ClockLevel | str, mem: ClockLevel | str | None = None
    ) -> OperatingPoint:
        """Resolve a configurable (core, mem) pair into an operating point.

        Accepts either two :class:`ClockLevel` values or a single
        ``"H-L"`` style key.

        Raises
        ------
        InvalidOperatingPointError
            If the pair is not in the card's Table III column.
        """
        core, mem = coerce_levels(core, mem)
        # Operating points are pure functions of the (frozen) spec, and
        # the batch hot path resolves them once per cached payload —
        # memoize per instance.  The memo lives outside the declared
        # fields (repr/eq see only fields) and is dropped from pickles
        # (__getstate__), so serialized specs stay content-stable.
        memo = self.__dict__.get("_op_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_op_memo", memo)
        op = memo.get((core, mem))
        if op is not None:
            return op
        if not self.is_configurable(core, mem):
            raise InvalidOperatingPointError(
                f"{self.name} does not expose the ({core.value}-{mem.value}) pair"
            )
        op = OperatingPoint(
            core_level=core,
            mem_level=mem,
            core_mhz=self.core_mhz[core],
            mem_mhz=self.mem_mhz[mem],
            core_voltage=self.core_vdd.at(core),
            mem_voltage=self.mem_vdd.at(mem),
        )
        memo[(core, mem)] = op
        return op

    def operating_points(self) -> list[OperatingPoint]:
        """All configurable operating points, highest clocks first."""
        ops = self.__dict__.get("_ops_memo")
        if ops is None:
            pairs = sorted(
                self.allowed_pairs,
                key=lambda cm: (-cm[0].rank, -cm[1].rank),
            )
            ops = tuple(self.operating_point(c, m) for c, m in pairs)
            object.__setattr__(self, "_ops_memo", ops)
        return list(ops)

    def __getstate__(self) -> dict:
        """Pickle the declared fields only (memos are process-local)."""
        state = dict(self.__dict__)
        state.pop("_op_memo", None)
        state.pop("_ops_memo", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def default_point(self) -> OperatingPoint:
        """The (H-H) factory default the paper compares against."""
        return self.operating_point(ClockLevel.H, ClockLevel.H)

    @property
    def reconfigure_energy_j(self) -> float:
        """Energy charged per DVFS switch (seconds x power)."""
        return self.reconfigure_seconds * self.reconfigure_power_w

    # ------------------------------------------------------------------
    # derived peak rates
    # ------------------------------------------------------------------

    def peak_flops(self, op: OperatingPoint) -> float:
        """Peak FLOP/s at an operating point (scales with core clock)."""
        scale = op.core_mhz / self.core_mhz[ClockLevel.H]
        return self.peak_gflops * 1e9 * scale

    def peak_bandwidth(self, op: OperatingPoint) -> float:
        """Peak DRAM bandwidth in bytes/s at an operating point."""
        scale = op.mem_mhz / self.mem_mhz[ClockLevel.H]
        return self.mem_bandwidth_gbs * 1e9 * scale

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.architecture})"


def _pairs(*keys: str) -> frozenset[tuple[ClockLevel, ClockLevel]]:
    return frozenset(parse_pair_key(k) for k in keys)


_COMMON_PAIRS = ("H-H", "H-M", "H-L", "M-H", "M-M", "M-L")

GTX_285 = GPUSpec(
    name="GTX 285",
    architecture=Architecture.TESLA,
    num_cores=240,
    num_sms=30,
    peak_gflops=933.0,
    mem_bandwidth_gbs=159.0,
    tdp_w=183.0,
    core_mhz={ClockLevel.L: 600.0, ClockLevel.M: 800.0, ClockLevel.H: 1296.0},
    mem_mhz={ClockLevel.L: 100.0, ClockLevel.M: 300.0, ClockLevel.H: 1284.0},
    # Tesla-era binning: core voltage nearly flat across the clock range,
    # GDDR3 voltage fixed -> down-clocking saves almost only the f term.
    core_vdd=VoltageTable(low=1.08, medium=1.12, high=1.18),
    mem_vdd=VoltageTable(low=1.85, medium=1.85, high=1.85),
    allowed_pairs=_pairs(*_COMMON_PAIRS, "L-H", "L-M"),
    power=PowerCoefficients(
        board_static_w=58.0,
        core_dyn_w=95.0,
        mem_background_w=38.0,
        dram_access_j_per_gb=0.45,
        leakage_exponent=2.0,
    ),
)

GTX_460 = GPUSpec(
    name="GTX 460",
    architecture=Architecture.FERMI,
    num_cores=336,
    num_sms=7,
    peak_gflops=907.0,
    mem_bandwidth_gbs=115.2,
    tdp_w=160.0,
    core_mhz={ClockLevel.L: 100.0, ClockLevel.M: 810.0, ClockLevel.H: 1350.0},
    mem_mhz={ClockLevel.L: 135.0, ClockLevel.M: 324.0, ClockLevel.H: 1800.0},
    core_vdd=VoltageTable(low=0.875, medium=0.962, high=1.025),
    # GDDR5 at 1.8 GHz: the interface is a large, voltage-scaled power sink.
    mem_vdd=VoltageTable(low=1.35, medium=1.45, high=1.60),
    allowed_pairs=_pairs(*_COMMON_PAIRS, "L-L"),
    power=PowerCoefficients(
        board_static_w=36.0,
        core_dyn_w=70.0,
        mem_background_w=62.0,
        dram_access_j_per_gb=0.30,
        leakage_exponent=2.0,
    ),
)

GTX_480 = GPUSpec(
    name="GTX 480",
    architecture=Architecture.FERMI,
    num_cores=480,
    num_sms=15,
    peak_gflops=1350.0,
    mem_bandwidth_gbs=177.0,
    tdp_w=250.0,
    core_mhz={ClockLevel.L: 100.0, ClockLevel.M: 810.0, ClockLevel.H: 1400.0},
    mem_mhz={ClockLevel.L: 135.0, ClockLevel.M: 324.0, ClockLevel.H: 1848.0},
    core_vdd=VoltageTable(low=0.875, medium=0.962, high=1.062),
    mem_vdd=VoltageTable(low=1.35, medium=1.45, high=1.62),
    allowed_pairs=_pairs(*_COMMON_PAIRS, "L-L"),
    power=PowerCoefficients(
        board_static_w=62.0,
        core_dyn_w=118.0,
        mem_background_w=72.0,
        dram_access_j_per_gb=0.30,
        leakage_exponent=2.0,
    ),
)

GTX_680 = GPUSpec(
    name="GTX 680",
    architecture=Architecture.KEPLER,
    num_cores=1536,
    num_sms=8,
    peak_gflops=3090.0,
    mem_bandwidth_gbs=192.2,
    tdp_w=195.0,
    core_mhz={ClockLevel.L: 648.0, ClockLevel.M: 1080.0, ClockLevel.H: 1411.0},
    mem_mhz={ClockLevel.L: 324.0, ClockLevel.M: 810.0, ClockLevel.H: 3004.0},
    # Boost-era binning: the top state carries a disproportionate voltage,
    # so stepping down to M cuts dynamic power superlinearly.
    core_vdd=VoltageTable(low=0.850, medium=0.875, high=1.212),
    mem_vdd=VoltageTable(low=1.35, medium=1.45, high=1.60),
    allowed_pairs=_pairs(*_COMMON_PAIRS, "L-H"),
    power=PowerCoefficients(
        board_static_w=25.0,
        core_dyn_w=125.0,
        mem_background_w=48.0,
        dram_access_j_per_gb=0.25,
        leakage_exponent=3.0,
    ),
)

# ----------------------------------------------------------------------
# Extension card (paper future work): AMD Radeon HD 7970, GCN generation.
# Not part of the paper's evaluation; exercised by the ext_radeon
# experiment to validate that the modeling pipeline generalizes to a
# non-NVIDIA microarchitecture, as the authors propose.
# ----------------------------------------------------------------------

RADEON_HD_7970 = GPUSpec(
    name="Radeon HD 7970",
    architecture=Architecture.GCN,
    num_cores=2048,
    num_sms=32,
    peak_gflops=3789.0,
    mem_bandwidth_gbs=264.0,
    tdp_w=250.0,
    core_mhz={ClockLevel.L: 300.0, ClockLevel.M: 501.0, ClockLevel.H: 925.0},
    mem_mhz={ClockLevel.L: 150.0, ClockLevel.M: 685.0, ClockLevel.H: 1375.0},
    core_vdd=VoltageTable(low=0.850, medium=0.950, high=1.175),
    mem_vdd=VoltageTable(low=1.35, medium=1.50, high=1.60),
    allowed_pairs=_pairs(*_COMMON_PAIRS, "L-L"),
    power=PowerCoefficients(
        board_static_w=42.0,
        core_dyn_w=150.0,
        mem_background_w=55.0,
        dram_access_j_per_gb=0.25,
        leakage_exponent=2.5,
    ),
)

#: Evaluation order used throughout the paper (oldest generation first).
GPU_NAMES: tuple[str, ...] = ("GTX 285", "GTX 460", "GTX 480", "GTX 680")

#: Extension cards beyond the paper's evaluation.
EXTENSION_GPU_NAMES: tuple[str, ...] = ("Radeon HD 7970",)

_REGISTRY: dict[str, GPUSpec] = {
    g.name: g
    for g in (GTX_285, GTX_460, GTX_480, GTX_680, RADEON_HD_7970)
}


def _normalize(name: str) -> str:
    text = name.strip().lower()
    for token in ("geforce", "gtx", "radeon", "hd"):
        text = text.replace(token, "")
    return text.replace(" ", "")


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by name or device id.

    Accepts the canonical cards in any spelling (``"GTX 480"``,
    ``"gtx480"``), plus the name (``"GTX 480 #00042"``) or content
    id (``"gpu-..."``) of any device the fleet registry has synthesized
    in this process.
    """
    normalized = _normalize(name)
    for spec in _REGISTRY.values():
        if _normalize(spec.name) == normalized:
            return spec
    # Synthesized fleet devices live in the instance table of
    # repro.arch.registry (imported lazily: registry builds on specs).
    from repro.arch import registry

    instance = registry.lookup_instance(name)
    if instance is not None:
        return instance
    raise UnknownGPUError.for_name(
        name,
        canonical=(*GPU_NAMES, *EXTENSION_GPU_NAMES),
        instances=registry.registered_instances(),
    )


def all_gpus(include_extensions: bool = False) -> list[GPUSpec]:
    """The paper's four GPUs (plus extension cards if requested)."""
    names = GPU_NAMES + EXTENSION_GPU_NAMES if include_extensions else GPU_NAMES
    return [_REGISTRY[n] for n in names]
