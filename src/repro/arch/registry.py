"""Device registry: deterministic GPUSpec instances from card templates.

The paper evaluates four discrete cards; a fleet campaign needs
thousands.  This module splits the device layer into *templates* (the
four canonical Table I cards, plus the extension card — byte-identical
module constants in :mod:`repro.arch.specs`) and *instances*
(synthesized variants of a template with seeded parameter jitter,
modeling silicon lottery and binning spread across a procurement batch).

Synthesis is a pure function of ``(template, index, seed, jitter_pct)``
via the coordinate-keyed RNG streams of :mod:`repro.rng`, so a fleet
inventory is bit-reproducible at any ``--jobs`` level and across
processes.  Every synthesized instance gets a stable *content-derived*
device id (a hash of its full specification), and the process-local
instance table makes :func:`repro.arch.specs.get_gpu` resolve synthesized
names and device ids after a fleet has been built.

What jitters and what does not: clock tables, voltage tables, power
coefficients and reconfiguration costs vary per instance (the quantities
binning actually spreads); die-level facts — core/SM counts, peak
GFLOPS, bandwidth, TDP class, the Table III pair set — are template
properties and stay fixed.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Iterator, Sequence

import numpy as np

from repro import rng
from repro.arch.dvfs import ClockLevel
from repro.arch.specs import (
    EXTENSION_GPU_NAMES,
    GPU_NAMES,
    GPUSpec,
    PowerCoefficients,
    get_gpu,
)
from repro.arch.voltage import VoltageTable
from repro.errors import UnknownGPUError

#: The four paper cards are the canonical architecture templates.
TEMPLATE_NAMES: tuple[str, ...] = GPU_NAMES

#: Default relative spread (+-) applied to jittered parameters.
DEFAULT_JITTER_PCT = 0.05

#: Instance-table capacity; synthesized specs beyond this evict the
#: oldest entries (the table only serves name/id lookup, synthesis
#: itself is stateless).
_INSTANCE_CAP = 16384

_LEVELS = (ClockLevel.L, ClockLevel.M, ClockLevel.H)


def template(name: str) -> GPUSpec:
    """The canonical (paper Table I) instance of a template by name."""
    spec = get_gpu(name)
    if spec.name not in TEMPLATE_NAMES + EXTENSION_GPU_NAMES:
        raise UnknownGPUError(f"{name!r} is not an architecture template")
    return spec


def device_id(spec: GPUSpec) -> str:
    """Stable content-derived device id of a spec.

    A hash over the complete specification document, so two devices with
    identical parameters share an id and any parameter change produces a
    new one — the same content-addressing idea as the result cache.
    """
    document = {
        "name": spec.name,
        "architecture": spec.architecture.value,
        "num_cores": spec.num_cores,
        "num_sms": spec.num_sms,
        "peak_gflops": spec.peak_gflops,
        "mem_bandwidth_gbs": spec.mem_bandwidth_gbs,
        "tdp_w": spec.tdp_w,
        "core_mhz": {lv.value: spec.core_mhz[lv] for lv in _LEVELS},
        "mem_mhz": {lv.value: spec.mem_mhz[lv] for lv in _LEVELS},
        "core_vdd": [spec.core_vdd.low, spec.core_vdd.medium, spec.core_vdd.high],
        "mem_vdd": [spec.mem_vdd.low, spec.mem_vdd.medium, spec.mem_vdd.high],
        "pairs": sorted(
            f"{c.value}-{m.value}" for c, m in spec.allowed_pairs
        ),
        "power": [
            spec.power.board_static_w,
            spec.power.core_dyn_w,
            spec.power.mem_background_w,
            spec.power.dram_access_j_per_gb,
            spec.power.leakage_exponent,
        ],
        "reconfigure": [spec.reconfigure_seconds, spec.reconfigure_power_w],
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return "gpu-" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def _sorted_factors(generator: np.random.Generator, n: int, pct: float) -> list[float]:
    """``n`` ascending multiplicative jitter factors in ``1 +- pct``.

    Sorting keeps jittered L/M/H tables monotone: for ascending bases
    ``a <= b`` and ascending positive factors ``f1 <= f2``,
    ``a*f1 <= b*f2`` always holds (including flat tables such as the
    GTX 285 GDDR3 voltage).
    """
    return sorted(float(f) for f in 1.0 + generator.uniform(-pct, pct, size=n))


def synthesize(
    template_name: str,
    index: int,
    seed: int | None = None,
    jitter_pct: float = DEFAULT_JITTER_PCT,
) -> GPUSpec:
    """One deterministic device instance of a template.

    The draw order below is part of the contract — reordering it would
    re-roll every fleet ever synthesized.
    """
    base = template(template_name)
    if index < 0:
        raise ValueError(f"device index must be >= 0, got {index}")
    if not 0.0 <= jitter_pct < 0.5:
        raise ValueError(f"jitter_pct must be in [0, 0.5), got {jitter_pct}")
    generator = rng.stream(
        "fleet-device", base.name, index, jitter_pct, seed=seed
    )
    core_f = _sorted_factors(generator, 3, jitter_pct)
    mem_f = _sorted_factors(generator, 3, jitter_pct)
    core_v = _sorted_factors(generator, 3, jitter_pct)
    mem_v = _sorted_factors(generator, 3, jitter_pct)
    power_f = [
        float(f) for f in 1.0 + generator.uniform(-jitter_pct, jitter_pct, size=4)
    ]
    reconf_f = [
        float(f) for f in 1.0 + generator.uniform(-jitter_pct, jitter_pct, size=2)
    ]
    spec = GPUSpec(
        name=f"{base.name} #{index:05d}",
        architecture=base.architecture,
        num_cores=base.num_cores,
        num_sms=base.num_sms,
        peak_gflops=base.peak_gflops,
        mem_bandwidth_gbs=base.mem_bandwidth_gbs,
        tdp_w=base.tdp_w,
        core_mhz={
            lv: round(base.core_mhz[lv] * f, 3)
            for lv, f in zip(_LEVELS, core_f)
        },
        mem_mhz={
            lv: round(base.mem_mhz[lv] * f, 3)
            for lv, f in zip(_LEVELS, mem_f)
        },
        core_vdd=VoltageTable(
            low=round(base.core_vdd.low * core_v[0], 4),
            medium=round(base.core_vdd.medium * core_v[1], 4),
            high=round(base.core_vdd.high * core_v[2], 4),
        ),
        mem_vdd=VoltageTable(
            low=round(base.mem_vdd.low * mem_v[0], 4),
            medium=round(base.mem_vdd.medium * mem_v[1], 4),
            high=round(base.mem_vdd.high * mem_v[2], 4),
        ),
        allowed_pairs=base.allowed_pairs,
        power=PowerCoefficients(
            board_static_w=round(base.power.board_static_w * power_f[0], 3),
            core_dyn_w=round(base.power.core_dyn_w * power_f[1], 3),
            mem_background_w=round(base.power.mem_background_w * power_f[2], 3),
            dram_access_j_per_gb=round(
                base.power.dram_access_j_per_gb * power_f[3], 4
            ),
            leakage_exponent=base.power.leakage_exponent,
        ),
        reconfigure_seconds=round(base.reconfigure_seconds * reconf_f[0], 3),
        reconfigure_power_w=round(base.reconfigure_power_w * reconf_f[1], 3),
    )
    register_instance(spec)
    return spec


def synthesize_inventory(
    templates: Sequence[str],
    count: int,
    seed: int | None = None,
    jitter_pct: float = DEFAULT_JITTER_PCT,
) -> tuple[GPUSpec, ...]:
    """``count`` devices cycling round-robin through ``templates``.

    Device ``i`` is instance ``i // len(templates)`` of template
    ``templates[i % len(templates)]`` — so growing the fleet appends
    devices without re-rolling existing ones.
    """
    if count < 1:
        raise ValueError(f"inventory count must be >= 1, got {count}")
    if not templates:
        raise ValueError("at least one template name is required")
    canonical = [template(name).name for name in templates]
    return tuple(
        synthesize(
            canonical[i % len(canonical)],
            i // len(canonical),
            seed=seed,
            jitter_pct=jitter_pct,
        )
        for i in range(count)
    )


# ----------------------------------------------------------------------
# process-local instance table (name/id lookup)
# ----------------------------------------------------------------------

_INSTANCES: "OrderedDict[str, GPUSpec]" = OrderedDict()


def register_instance(spec: GPUSpec) -> str:
    """Make a synthesized spec resolvable by name and device id.

    Returns the device id.  The table is process-local and capped; it
    exists for diagnostics (``get_gpu`` on a journal entry's device
    name) — synthesis itself never consults it.
    """
    did = device_id(spec)
    for key in (did, spec.name.strip().lower()):
        _INSTANCES.pop(key, None)
        _INSTANCES[key] = spec
    while len(_INSTANCES) > _INSTANCE_CAP:
        _INSTANCES.popitem(last=False)
    return did


def lookup_instance(name: str) -> GPUSpec | None:
    """Resolve a synthesized device by name or device id, if registered."""
    return _INSTANCES.get(name.strip().lower()) or _INSTANCES.get(name.strip())


def registered_instances() -> Iterator[tuple[str, GPUSpec]]:
    """Registered ``(device id, spec)`` pairs, oldest first."""
    for key, spec in _INSTANCES.items():
        if key.startswith("gpu-"):
            yield key, spec


def clear_instances() -> None:
    """Drop the instance table (tests)."""
    _INSTANCES.clear()
