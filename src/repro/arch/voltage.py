"""Voltage/frequency curves per clock domain.

The paper's BIOS-patching method selects pre-defined performance levels
where "voltage is implicitly adjusted with frequency changes".  The key
cross-generation difference the characterization exposes is *how steep*
that adjustment is: Tesla-era cards run nearly flat voltage across their
clock range (so down-clocking saves little energy), while Kepler's
boost-era binning drops voltage sharply below the top state (so (M-*)
pairs cut power superlinearly — the mechanism behind the 75% headline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dvfs import ClockLevel


@dataclass(frozen=True)
class VoltageTable:
    """Per-level supply voltage of one clock domain, in volts."""

    low: float
    medium: float
    high: float

    def at(self, level: ClockLevel) -> float:
        """Voltage at a symbolic level."""
        return {
            ClockLevel.L: self.low,
            ClockLevel.M: self.medium,
            ClockLevel.H: self.high,
        }[level]

    def relative(self, level: ClockLevel) -> float:
        """Voltage normalized to the High level (used by the power model)."""
        return self.at(level) / self.high

    def validate(self) -> None:
        """Check physical sanity: positive and monotonically non-decreasing."""
        if not (0.0 < self.low <= self.medium <= self.high):
            raise ValueError(
                f"voltage table must satisfy 0 < L <= M <= H, got "
                f"({self.low}, {self.medium}, {self.high})"
            )
