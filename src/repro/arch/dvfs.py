"""DVFS operating points: clock domains, levels, and frequency pairs.

The paper scales the *processing core* and *memory* clock domains
independently among three pre-defined levels each (High / Medium / Low,
Table I), restricted to the combinations the card's BIOS actually exposes
(Table III).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ClockDomain(enum.Enum):
    """A separately-scalable clock domain of the GPU."""

    CORE = "core"
    MEMORY = "memory"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ClockLevel(enum.Enum):
    """Named frequency level within a domain (Table I columns)."""

    L = "L"
    M = "M"
    H = "H"

    @property
    def rank(self) -> int:
        """Ordering rank: L < M < H."""
        return {"L": 0, "M": 1, "H": 2}[self.value]

    def __lt__(self, other: "ClockLevel") -> bool:
        if not isinstance(other, ClockLevel):
            return NotImplemented
        return self.rank < other.rank

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=False)
class OperatingPoint:
    """A fully-resolved (core, memory) DVFS configuration.

    Combines the symbolic levels with the physical frequencies and the
    supply voltages implied by the card's V-f curve (the paper's method
    adjusts voltage implicitly with frequency).
    """

    core_level: ClockLevel
    mem_level: ClockLevel
    core_mhz: float
    mem_mhz: float
    core_voltage: float
    mem_voltage: float

    @property
    def key(self) -> str:
        """Compact name matching the paper's notation, e.g. ``"H-L"``."""
        return f"{self.core_level.value}-{self.mem_level.value}"

    @property
    def levels(self) -> tuple[ClockLevel, ClockLevel]:
        """The ``(core, memory)`` level pair."""
        return (self.core_level, self.mem_level)

    @property
    def core_hz(self) -> float:
        """Core frequency in Hz."""
        return self.core_mhz * 1e6

    @property
    def mem_hz(self) -> float:
        """Memory frequency in Hz."""
        return self.mem_mhz * 1e6

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"({self.key}: core {self.core_mhz:.0f} MHz @ "
            f"{self.core_voltage:.3f} V, mem {self.mem_mhz:.0f} MHz @ "
            f"{self.mem_voltage:.3f} V)"
        )


def parse_pair_key(key: str) -> tuple[ClockLevel, ClockLevel]:
    """Parse a ``"H-L"`` style pair name into levels.

    >>> parse_pair_key("H-L")
    (<ClockLevel.H: 'H'>, <ClockLevel.L: 'L'>)
    """
    try:
        core_s, mem_s = key.strip().upper().split("-")
        return (ClockLevel(core_s), ClockLevel(mem_s))
    except (ValueError, KeyError) as exc:
        raise ValueError(f"not a valid frequency-pair key: {key!r}") from exc


def coerce_levels(
    core: ClockLevel | str, mem: ClockLevel | str | None = None
) -> tuple[ClockLevel, ClockLevel]:
    """Coerce any accepted (core, mem) spelling into a level pair.

    The one place the ``"H-L"`` / ``("h", "l")`` / ``(ClockLevel.H,
    ClockLevel.L)`` spellings accepted across the public API are
    normalized — spec lookup, simulator and testbed ``set_clocks`` and
    the scheduler all funnel through here.

    >>> coerce_levels("H-L")
    (<ClockLevel.H: 'H'>, <ClockLevel.L: 'L'>)
    >>> coerce_levels("m", "h")
    (<ClockLevel.M: 'M'>, <ClockLevel.H: 'H'>)
    """
    if isinstance(core, str) and mem is None:
        return parse_pair_key(core)
    if mem is None:
        raise TypeError("memory level missing")
    if isinstance(core, str):
        core = ClockLevel(core.strip().upper())
    if isinstance(mem, str):
        mem = ClockLevel(mem.strip().upper())
    return (core, mem)


def pair_key(core: ClockLevel | str, mem: ClockLevel | str | None = None) -> str:
    """The canonical ``"H-L"`` key for any accepted pair spelling."""
    core_level, mem_level = coerce_levels(core, mem)
    return f"{core_level.value}-{mem_level.value}"


#: The default configuration the paper compares against everywhere.
DEFAULT_PAIR: tuple[ClockLevel, ClockLevel] = (ClockLevel.H, ClockLevel.H)
