"""GPU architecture substrate.

Models the four GeForce cards of the paper (Table I), their legal DVFS
operating points (Table III), per-generation voltage/frequency curves and
the synthetic VBIOS format through which clocks are programmed.
"""

from repro.arch.architecture import Architecture, ArchTraits
from repro.arch.dvfs import (
    ClockDomain,
    ClockLevel,
    OperatingPoint,
    coerce_levels,
    pair_key,
)
from repro.arch.specs import GPUSpec, PowerCoefficients, all_gpus, get_gpu, GPU_NAMES
from repro.arch.registry import (
    TEMPLATE_NAMES,
    device_id,
    synthesize,
    synthesize_inventory,
)
from repro.arch.voltage import VoltageTable
from repro.arch.bios import (
    BiosImage,
    ClockEntry,
    build_image,
    parse_image,
    patch_boot_levels,
)

__all__ = [
    "Architecture",
    "ArchTraits",
    "ClockDomain",
    "ClockLevel",
    "OperatingPoint",
    "GPUSpec",
    "PowerCoefficients",
    "VoltageTable",
    "all_gpus",
    "coerce_levels",
    "device_id",
    "get_gpu",
    "pair_key",
    "synthesize",
    "synthesize_inventory",
    "GPU_NAMES",
    "TEMPLATE_NAMES",
    "BiosImage",
    "ClockEntry",
    "build_image",
    "parse_image",
    "patch_boot_levels",
]
