"""Report generation: render experiment suites to files.

Provides the machinery behind ``python -m repro report``: run any set of
experiments and write their rendered outputs (plus an index) into a
directory — the shape of artifact a reviewer or CI job consumes.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Sequence

from repro._version import __version__
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run


@dataclass(frozen=True)
class ReportEntry:
    """One rendered experiment in a report."""

    experiment_id: str
    title: str
    path: pathlib.Path


def render_experiments(
    directory: str | pathlib.Path,
    experiment_ids: Sequence[str] | None = None,
    seed: int | None = None,
    include_extensions: bool = True,
) -> list[ReportEntry]:
    """Run experiments and write one text file each plus an index.

    Parameters
    ----------
    directory:
        Output directory (created if needed).
    experiment_ids:
        Which experiments to render; defaults to all paper artifacts,
        plus the extensions when ``include_extensions`` is set.
    seed:
        Noise-seed override passed to every experiment.
    """
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    if experiment_ids is None:
        experiment_ids = [
            eid
            for eid in EXPERIMENTS
            if include_extensions or not eid.startswith("ext_")
        ]
    entries: list[ReportEntry] = []
    for eid in experiment_ids:
        result: ExperimentResult = run(eid, seed=seed)
        path = out / f"{eid}.txt"
        path.write_text(result.to_text() + "\n", encoding="utf-8")
        entries.append(
            ReportEntry(experiment_id=eid, title=result.title, path=path)
        )
    index_lines = [
        f"repro {__version__} experiment report",
        f"seed: {'default' if seed is None else seed}",
        "",
    ]
    index_lines += [
        f"{entry.experiment_id:14s} {entry.title}" for entry in entries
    ]
    (out / "INDEX.txt").write_text(
        "\n".join(index_lines) + "\n", encoding="utf-8"
    )
    return entries
