"""Declarative campaign specifications (TOML/JSON experiment artifacts).

A :class:`CampaignSpec` is the frozen, versioned description of *one
whole measurement campaign*: which cards and workloads to measure
(``gpus``, ``benchmarks``, ``pairs``) and under which session settings
(``seed``, ``jobs``, ``cache``, ``faults``, ``trace``).  DVFS
measurement surveys treat exactly this document as a first-class
experiment artifact — a campaign should be reproducible from its spec
alone — so the resolved spec is echoed into the campaign manifest and
an archive fully describes how to regenerate itself.

Specs load from TOML (preferred; ``tomllib`` on Python >= 3.11, with a
dependency-free fallback parser for the flat subset the schema needs on
3.10) or JSON, normalize eagerly (fault plans resolved, null plans
collapsed, sequences frozen) and re-emit canonically through
:meth:`CampaignSpec.document`, so load -> resolve -> re-emit is a fixed
point whatever the source syntax was.

Schema (version 1, all keys optional)::

    format = "repro.campaign-spec"   # optional guard
    version = 1
    gpus = ["GTX 460", "GTX 680"]    # default: the paper's four
    benchmarks = ["sgemm", "lbm"]    # default: all profiler-compatible
    pairs = ["H-H", "L-L"]           # default: every configurable pair
    seed = 7                         # noise-seed override
    jobs = 4                         # worker processes
    cache = true                     # true | false | explicit directory
    trace = true                     # true | false | explicit JSONL path
    live = true                      # stream repro.events NDJSON (or a path)
    flight_recorder = true           # crash ring -> flight.json (or a path)
    unit_timeout_s = 30.0            # per-unit watchdog budget (seconds)
    breaker_threshold = 3            # circuit-breaker quarantine threshold
    faults = "aggressive"            # preset/plan-file name, or a table:
    # [faults]
    # crash_rate = 0.1
    governor = "online"              # governor mode, or a table:
    # [governor]
    # mode = "online"
    # forgetting = 0.995
    # [fleet]                        # fleet campaign (omit for single-card)
    # devices = 1000
    # jobs_total = 100000
    # cap_fraction = 0.6
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ReproError
from repro.faults.plan import FaultPlan, resolve_plan

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 only
    tomllib = None

SPEC_FORMAT = "repro.campaign-spec"
SPEC_VERSION = 1


class SpecError(ReproError, ValueError):
    """A campaign-spec document or file is malformed."""


# ----------------------------------------------------------------------
# minimal TOML support (3.10 fallback)
# ----------------------------------------------------------------------

def _split_unquoted(text: str, separator: str) -> list[str]:
    """Split on a separator that is not inside a basic string."""
    parts: list[str] = []
    current: list[str] = []
    in_string = False
    escaped = False
    for char in text:
        if in_string:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            current.append(char)
        elif char == separator:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _strip_comment(line: str) -> str:
    return _split_unquoted(line, "#")[0].strip()


def _parse_scalar(text: str):
    text = text.strip()
    if text.startswith('"'):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"bad string literal {text!r}: {exc}") from exc
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("[") and text.endswith("]"):
        body = text[1:-1].strip()
        if not body:
            return []
        return [
            _parse_scalar(item)
            for item in _split_unquoted(body, ",")
            if item.strip()
        ]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SpecError(f"unsupported TOML value {text!r}") from None


def _mini_toml(text: str) -> dict[str, Any]:
    """Parse the flat TOML subset the spec schema uses.

    Supports comments, one level of ``[table]`` nesting, basic strings,
    integers, floats, booleans and (possibly multi-line) arrays — enough
    for every campaign spec, on interpreters without ``tomllib``.
    """
    document: dict[str, Any] = {}
    current = document
    pending = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if not line:
            continue
        pending = f"{pending} {line}".strip() if pending else line
        if pending.count("[") > pending.count("]"):
            continue  # unterminated array: keep accumulating lines
        line, pending = pending, ""
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name or "." in name:
                raise SpecError(f"unsupported TOML table {line!r}")
            current = document.setdefault(name, {})
            if not isinstance(current, dict):
                raise SpecError(f"duplicate key {name!r}")
            continue
        parts = _split_unquoted(line, "=")
        if len(parts) < 2:
            raise SpecError(f"bad TOML line {line!r}")
        key = parts[0].strip()
        value = "=".join(parts[1:]).strip()
        if not key or not value:
            raise SpecError(f"bad TOML line {line!r}")
        current[key] = _parse_scalar(value)
    if pending:
        raise SpecError(f"unterminated TOML value {pending!r}")
    return document


def _load_toml(text: str) -> dict[str, Any]:
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"spec is not valid TOML: {exc}") from exc
    return _mini_toml(text)


# ----------------------------------------------------------------------
# governor spec
# ----------------------------------------------------------------------

GOVERNOR_FORMAT = "repro.governor-spec"

#: Accepted governor modes: ``offline`` decides once from the batch
#: models; ``online`` re-plans from the live recursive estimator.
GOVERNOR_MODES = ("offline", "online")


@dataclass(frozen=True)
class GovernorSpec:
    """Declarative DVFS-governor configuration of a campaign.

    Science, not mechanics: the governor's mode and tuning change which
    frequency pairs a campaign selects, so the spec participates in the
    campaign manifest (unlike ``jobs``/``cache``, which cannot change
    any result).
    """

    #: ``offline`` (one decision from the batch fit) or ``online``
    #: (per-phase re-planning from the recursive estimator).
    mode: str = "offline"
    #: Exponential forgetting factor of the online estimator; 1.0
    #: weights all samples equally (and converges to the batch fit).
    forgetting: float = 1.0
    #: Maximum allowed predicted slowdown vs the fastest pair
    #: (1.10 = at most 10% slower); ``None`` disables the constraint.
    max_slowdown: float | None = None
    #: Accepted samples the online estimator needs before its decisions
    #: are trusted; below this the governor holds the (H-H) default.
    min_observations: int = 8
    #: Predicted-energy improvement (percent) a re-plan must promise
    #: before the governor switches pairs — the hysteresis that bounds
    #: oscillation under noisy streams.
    hysteresis_pct: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in GOVERNOR_MODES:
            raise SpecError(
                f"governor mode must be one of {GOVERNOR_MODES}, "
                f"got {self.mode!r}"
            )
        if (
            not isinstance(self.forgetting, (int, float))
            or isinstance(self.forgetting, bool)
            or not 0.0 < self.forgetting <= 1.0
        ):
            raise SpecError(
                f"governor forgetting must be in (0, 1], got {self.forgetting!r}"
            )
        if self.max_slowdown is not None and (
            not isinstance(self.max_slowdown, (int, float))
            or isinstance(self.max_slowdown, bool)
            or self.max_slowdown < 1.0
        ):
            raise SpecError(
                f"governor max_slowdown must be >= 1.0 or null, "
                f"got {self.max_slowdown!r}"
            )
        if (
            not isinstance(self.min_observations, int)
            or isinstance(self.min_observations, bool)
            or self.min_observations < 1
        ):
            raise SpecError(
                f"governor min_observations must be an integer >= 1, "
                f"got {self.min_observations!r}"
            )
        if (
            not isinstance(self.hysteresis_pct, (int, float))
            or isinstance(self.hysteresis_pct, bool)
            or self.hysteresis_pct < 0.0
        ):
            raise SpecError(
                f"governor hysteresis_pct must be >= 0, "
                f"got {self.hysteresis_pct!r}"
            )

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (manifests, regret tables)."""
        return {
            "format": GOVERNOR_FORMAT,
            "mode": self.mode,
            "forgetting": self.forgetting,
            "max_slowdown": self.max_slowdown,
            "min_observations": self.min_observations,
            "hysteresis_pct": self.hysteresis_pct,
        }

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "GovernorSpec":
        """Build a governor spec from a parsed table, validating it."""
        if not isinstance(doc, dict):
            raise SpecError(f"governor spec must be a table, got {type(doc)}")
        body = dict(doc)
        declared = body.pop("format", GOVERNOR_FORMAT)
        if declared != GOVERNOR_FORMAT:
            raise SpecError(f"not a governor spec: format={declared!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SpecError(
                f"unknown governor-spec fields: {', '.join(unknown)}"
            )
        return cls(**body)


def _resolve_governor(spec) -> "GovernorSpec | None":
    """Normalize any accepted governor field into a spec or ``None``."""
    if spec is None or isinstance(spec, GovernorSpec):
        return spec
    if isinstance(spec, str):
        if spec not in GOVERNOR_MODES:
            raise SpecError(
                f"governor must be a mode ({', '.join(GOVERNOR_MODES)}) "
                f"or a table, got {spec!r}"
            )
        return GovernorSpec(mode=spec)
    if isinstance(spec, dict):
        return GovernorSpec.from_document(spec)
    raise SpecError(
        f"governor must be a mode name, table or GovernorSpec, got {spec!r}"
    )


# ----------------------------------------------------------------------
# fleet spec
# ----------------------------------------------------------------------

FLEET_FORMAT = "repro.fleet-spec"

#: Default workload-class mix of a fleet job stream (the governor
#: experiments' evaluation set, so regret columns stay comparable).
FLEET_WORKLOADS = ("kmeans", "hotspot", "lbm", "sgemm", "spmv", "stencil", "MAdd")

#: Default architecture templates (the paper's four cards).
FLEET_TEMPLATES = ("GTX 285", "GTX 460", "GTX 480", "GTX 680")


@dataclass(frozen=True)
class FleetSpec:
    """Declarative fleet-campaign configuration (the ``[fleet]`` table).

    Describes a synthesized datacenter: how many devices, drawn from
    which architecture templates with how much parameter spread, the
    facility power cap, and the job stream to place.  Everything here
    is science — it changes which devices exist and what the placement
    report says — so the spec participates in campaign manifests.
    """

    #: Inventory size (devices cycle round-robin through the templates).
    devices: int = 1000
    #: Architecture templates devices are synthesized from.
    templates: tuple[str, ...] = FLEET_TEMPLATES
    #: Explicit facility power cap in watts; ``None`` derives it from
    #: ``cap_fraction``.
    power_cap_w: float | None = None
    #: Fraction of the fleet's summed TDP allowed when no explicit cap
    #: is given.
    cap_fraction: float = 0.6
    #: Total jobs in the placed stream.
    jobs_total: int = 100000
    #: Workload classes of the stream, at one input scale.
    workloads: tuple[str, ...] = FLEET_WORKLOADS
    scale: float = 0.25
    #: Devices evaluated per shard work unit.
    shard_devices: int = 64
    #: Synthesis parameter spread (see :mod:`repro.arch.registry`).
    jitter_pct: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "templates", _frozen_names(self.templates, "fleet templates")
        )
        object.__setattr__(
            self, "workloads", _frozen_names(self.workloads, "fleet workloads")
        )
        if not self.templates:
            raise SpecError("fleet templates must name at least one card")
        if not self.workloads:
            raise SpecError("fleet workloads must name at least one class")
        for field, minimum in (
            ("devices", 1),
            ("jobs_total", 1),
            ("shard_devices", 1),
        ):
            value = getattr(self, field)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < minimum
            ):
                raise SpecError(
                    f"fleet {field} must be an integer >= {minimum}, "
                    f"got {value!r}"
                )
        if self.power_cap_w is not None and (
            not isinstance(self.power_cap_w, (int, float))
            or isinstance(self.power_cap_w, bool)
            or self.power_cap_w <= 0
        ):
            raise SpecError(
                f"fleet power_cap_w must be a number > 0 or null, "
                f"got {self.power_cap_w!r}"
            )
        if (
            not isinstance(self.cap_fraction, (int, float))
            or isinstance(self.cap_fraction, bool)
            or not 0.0 < self.cap_fraction <= 1.0
        ):
            raise SpecError(
                f"fleet cap_fraction must be in (0, 1], "
                f"got {self.cap_fraction!r}"
            )
        if (
            not isinstance(self.scale, (int, float))
            or isinstance(self.scale, bool)
            or not 0.0 < self.scale <= 1.0
        ):
            raise SpecError(
                f"fleet scale must be in (0, 1], got {self.scale!r}"
            )
        if (
            not isinstance(self.jitter_pct, (int, float))
            or isinstance(self.jitter_pct, bool)
            or not 0.0 <= self.jitter_pct < 0.5
        ):
            raise SpecError(
                f"fleet jitter_pct must be in [0, 0.5), "
                f"got {self.jitter_pct!r}"
            )

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form (manifests, placement reports)."""
        return {
            "format": FLEET_FORMAT,
            "devices": self.devices,
            "templates": list(self.templates),
            "power_cap_w": self.power_cap_w,
            "cap_fraction": self.cap_fraction,
            "jobs_total": self.jobs_total,
            "workloads": list(self.workloads),
            "scale": self.scale,
            "shard_devices": self.shard_devices,
            "jitter_pct": self.jitter_pct,
        }

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "FleetSpec":
        """Build a fleet spec from a parsed table, validating it."""
        if not isinstance(doc, dict):
            raise SpecError(f"fleet spec must be a table, got {type(doc)}")
        body = dict(doc)
        declared = body.pop("format", FLEET_FORMAT)
        if declared != FLEET_FORMAT:
            raise SpecError(f"not a fleet spec: format={declared!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SpecError(f"unknown fleet-spec fields: {', '.join(unknown)}")
        return cls(**body)


def _resolve_fleet(spec) -> "FleetSpec | None":
    """Normalize any accepted fleet field into a spec or ``None``."""
    if spec is None or isinstance(spec, FleetSpec):
        return spec
    if isinstance(spec, dict):
        return FleetSpec.from_document(spec)
    raise SpecError(f"fleet must be a table or FleetSpec, got {spec!r}")


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------

def _frozen_names(value, field: str) -> tuple[str, ...] | None:
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise SpecError(f"{field} must be an array of names, got {value!r}")
    names = tuple(value)
    for name in names:
        if not isinstance(name, str):
            raise SpecError(f"{field} entries must be strings, got {name!r}")
    return names


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, declaratively: workload shape + session settings.

    Construction normalizes eagerly — fault specifications (preset
    names, plan files, inline tables or :class:`FaultPlan` instances)
    resolve to a plan or ``None`` (null plans collapse), name sequences
    freeze into tuples — so two specs describing the same campaign
    compare equal and emit byte-identical documents.
    """

    #: Cards to measure; ``None`` means the paper's four.
    gpus: tuple[str, ...] | None = None
    #: Workloads; ``None`` means every profiler-compatible benchmark.
    benchmarks: tuple[str, ...] | None = None
    #: Frequency-pair keys; ``None`` means every configurable pair.
    pairs: tuple[str, ...] | None = None
    #: Noise-seed override threaded through every layer.
    seed: int | None = None
    #: Worker processes for the measurement work.
    jobs: int = 1
    #: ``True`` caches under the campaign directory, ``False`` disables
    #: the result cache, a string is an explicit cache directory.
    cache: bool | str = True
    #: Deterministic fault plan (already resolved; never a null plan).
    faults: FaultPlan | None = None
    #: ``True`` streams the JSONL event log to the default path under
    #: the campaign directory, a string is an explicit path.
    trace: bool | str = False
    #: ``True`` streams the live ``repro.events`` NDJSON envelope feed
    #: to ``events.ndjson`` under the campaign directory, a string is an
    #: explicit path.  Observe-only mechanics: tailable progress, never
    #: a result change.
    live: bool | str = False
    #: ``True`` keeps a crash ring dumped to ``flight.json`` under the
    #: campaign directory on watchdog/breaker/pool/SIGTERM incidents, a
    #: string is an explicit path.  Observe-only mechanics.
    flight_recorder: bool | str = False
    #: Per-unit wall-clock budget in seconds (``None`` disables the
    #: watchdog).  Execution mechanics: never changes what is measured.
    unit_timeout_s: float | None = None
    #: Permanent failures of one (GPU, benchmark) fault class before its
    #: circuit breaker opens and the remaining units are quarantined as
    #: deterministic exclusions (``None`` disables breakers).  Part of
    #: the science: changes which observations the campaign keeps.
    breaker_threshold: int | None = None
    #: DVFS-governor configuration (already resolved): a mode name
    #: ("offline"/"online"), an inline table, or a
    #: :class:`GovernorSpec`; ``None`` means no governor runs.
    governor: GovernorSpec | None = None
    #: Fleet-campaign configuration (already resolved): an inline
    #: ``[fleet]`` table or a :class:`FleetSpec`; ``None`` means the
    #: campaign is a plain single-card study.
    fleet: FleetSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "gpus", _frozen_names(self.gpus, "gpus"))
        object.__setattr__(
            self, "benchmarks", _frozen_names(self.benchmarks, "benchmarks")
        )
        object.__setattr__(self, "pairs", _frozen_names(self.pairs, "pairs"))
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise SpecError(f"jobs must be an integer >= 1, got {self.jobs!r}")
        if not isinstance(self.cache, (bool, str)):
            raise SpecError(
                f"cache must be true, false or a directory, got {self.cache!r}"
            )
        if not isinstance(self.trace, (bool, str)):
            raise SpecError(
                f"trace must be true, false or a path, got {self.trace!r}"
            )
        if not isinstance(self.live, (bool, str)):
            raise SpecError(
                f"live must be true, false or a path, got {self.live!r}"
            )
        if not isinstance(self.flight_recorder, (bool, str)):
            raise SpecError(
                f"flight_recorder must be true, false or a path, "
                f"got {self.flight_recorder!r}"
            )
        if self.unit_timeout_s is not None and (
            not isinstance(self.unit_timeout_s, (int, float))
            or isinstance(self.unit_timeout_s, bool)
            or self.unit_timeout_s <= 0
        ):
            raise SpecError(
                f"unit_timeout_s must be a number > 0 or null, "
                f"got {self.unit_timeout_s!r}"
            )
        if self.breaker_threshold is not None and (
            not isinstance(self.breaker_threshold, int)
            or isinstance(self.breaker_threshold, bool)
            or self.breaker_threshold < 1
        ):
            raise SpecError(
                f"breaker_threshold must be an integer >= 1 or null, "
                f"got {self.breaker_threshold!r}"
            )
        object.__setattr__(self, "faults", _resolve_faults(self.faults))
        object.__setattr__(self, "governor", _resolve_governor(self.governor))
        object.__setattr__(self, "fleet", _resolve_fleet(self.fleet))

    # ------------------------------------------------------------------
    # canonical form
    # ------------------------------------------------------------------

    def document(self) -> dict[str, Any]:
        """Canonical resolved JSON-able form (manifest embedding).

        Deliberately directory-independent: defaulted locations stay
        ``true`` rather than expanding to concrete paths, so campaigns
        regenerated into different directories embed identical specs.
        """
        doc: dict[str, Any] = {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "gpus": list(self.gpus) if self.gpus is not None else None,
            "benchmarks": (
                list(self.benchmarks) if self.benchmarks is not None else None
            ),
            "pairs": list(self.pairs) if self.pairs is not None else None,
            "seed": self.seed,
            "jobs": self.jobs,
            "cache": self.cache,
            "faults": (
                self.faults.document() if self.faults is not None else None
            ),
            "trace": self.trace,
            "unit_timeout_s": self.unit_timeout_s,
            "breaker_threshold": self.breaker_threshold,
            "governor": (
                self.governor.document() if self.governor is not None else None
            ),
        }
        # Emitted only when configured: plain single-card campaigns keep
        # their historical document shape (and golden bytes) unchanged.
        if self.live is not False:
            doc["live"] = self.live
        if self.flight_recorder is not False:
            doc["flight_recorder"] = self.flight_recorder
        if self.fleet is not None:
            doc["fleet"] = self.fleet.document()
        return doc

    def to_json(self) -> str:
        """Serialize the canonical document to JSON."""
        return json.dumps(self.document(), indent=2)

    def override(self, **changes: Any) -> "CampaignSpec":
        """A copy with some fields replaced (CLI flags over a file)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, doc: dict[str, Any]) -> "CampaignSpec":
        """Build a spec from a parsed TOML/JSON document, validating it."""
        if not isinstance(doc, dict):
            raise SpecError(f"campaign spec must be a table, got {type(doc)}")
        body = dict(doc)
        declared_format = body.pop("format", SPEC_FORMAT)
        if declared_format != SPEC_FORMAT:
            raise SpecError(
                f"not a campaign spec: format={declared_format!r}"
            )
        version = body.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"unsupported campaign-spec version {version!r} "
                f"(this release reads version {SPEC_VERSION})"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SpecError(
                f"unknown campaign-spec fields: {', '.join(unknown)}"
            )
        return cls(**body)

    @classmethod
    def from_text(cls, text: str, fmt: str = "toml") -> "CampaignSpec":
        """Parse a spec from TOML (default) or JSON text."""
        if fmt == "json":
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise SpecError(f"spec is not valid JSON: {exc}") from exc
        elif fmt == "toml":
            doc = _load_toml(text)
        else:
            raise SpecError(f"unknown spec format {fmt!r}")
        return cls.from_document(doc)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "CampaignSpec":
        """Load a spec file; the suffix picks TOML (default) or JSON."""
        path = pathlib.Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read campaign spec {path}: {exc}") from exc
        fmt = "json" if path.suffix.lower() == ".json" else "toml"
        return cls.from_text(text, fmt=fmt)


def _resolve_faults(spec) -> FaultPlan | None:
    """Normalize any accepted fault field into a plan or ``None``."""
    if spec is None or isinstance(spec, (FaultPlan, str)):
        return resolve_plan(spec)
    if isinstance(spec, dict):
        plan = FaultPlan.from_document(spec)
        return None if plan.is_null else plan
    raise SpecError(
        f"faults must be a preset name, plan file, table or plan, got {spec!r}"
    )


def load_spec(path: str | pathlib.Path) -> CampaignSpec:
    """Load a campaign spec from a TOML or JSON file."""
    return CampaignSpec.load(path)
