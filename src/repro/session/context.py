"""The unified run context: one session object instead of five kwargs.

Before this layer existed, every cross-cutting campaign concern — noise
seed, executor/cache selection, fault plan, telemetry, profiler
overrides — was hand-threaded as separate keyword arguments through
``Campaign``, ``FrequencySweep``, ``build_dataset`` and the CLI, and
the same normalization (null fault plans collapsing to ``None``,
telemetry merging into the :class:`ExecutionConfig`) was re-implemented
in each of them.  A :class:`RunContext` performs that normalization
exactly once, at construction, and rides through every layer as a
single frozen value:

* :meth:`RunContext.resolve` builds a context from loose ingredients
  and establishes the invariants every consumer may rely on;
* :meth:`RunContext.from_spec` builds one from a declarative
  :class:`~repro.session.spec.CampaignSpec` (TOML/JSON file);
* :func:`merge_execution` / :func:`normalize_faults` are the shared
  helpers the old per-layer copies collapsed into.

Invariants of a resolved context:

* ``faults`` is never a null plan (null plans collapse to ``None``, so
  they cannot split the result cache);
* ``execution`` is always a concrete :class:`ExecutionConfig`, with
  ``on_error="degrade"`` whenever a fault plan is active;
* ``telemetry`` and ``execution.telemetry`` are the same object (or
  both ``None``) — there is a single telemetry source of truth.

Contexts deliberately stop at the process boundary: work units stay
frozen picklable value objects carrying (seed, faults) as plain data,
because a context holds live resources (telemetry sinks) that must not
leak into cache keys or worker pickles.
"""

from __future__ import annotations

import dataclasses
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.execution.engine import ExecutionConfig
from repro.faults.plan import FaultPlan
from repro.instruments.profiler import CudaProfiler
from repro.session.spec import CampaignSpec, FleetSpec, GovernorSpec
from repro.telemetry.runtime import Telemetry

#: Subdirectory of a campaign directory holding the work-unit cache.
CACHE_DIR_NAME = "cache"

#: Telemetry artifacts of a traced campaign.
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.json"

#: Live-observability artifacts (``--live`` / ``--flight-recorder``).
LIVE_NAME = "events.ndjson"
FLIGHT_NAME = "flight.json"


def normalize_faults(faults: FaultPlan | None) -> FaultPlan | None:
    """Collapse null fault plans to ``None``.

    The single home of the check previously re-implemented by
    ``Campaign``, ``FrequencySweep`` and ``build_dataset``: a plan that
    injects nothing must not reach work units, where it would split the
    content-addressed result cache for no behavioral difference.
    """
    if faults is None or faults.is_null:
        return None
    return faults


def merge_execution(
    execution: ExecutionConfig | None,
    faults: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[ExecutionConfig, Telemetry | None]:
    """Layer faults and telemetry onto an execution config, once.

    Returns the normalized ``(execution, telemetry)`` pair: an active
    fault plan upgrades ``on_error`` to graceful degradation, an
    explicit telemetry context wins over the config's own, and an
    absent one is adopted *from* the config.  All caller-supplied
    fields survive — the merge is a single :func:`dataclasses.replace`
    pass, never a fresh default config layered over the caller's.
    """
    if execution is None:
        execution = ExecutionConfig()
    if telemetry is None:
        telemetry = execution.telemetry
    updates: dict[str, Any] = {}
    if faults is not None and execution.on_error != "degrade":
        updates["on_error"] = "degrade"
    if telemetry is not execution.telemetry:
        updates["telemetry"] = telemetry
    if updates:
        execution = dataclasses.replace(execution, **updates)
    return execution, telemetry


def _as_path(value: str | pathlib.Path | None) -> pathlib.Path | None:
    return pathlib.Path(value) if value is not None else None


@dataclass(frozen=True, eq=False)
class RunContext:
    """Frozen session settings shared by every layer of one run.

    Build one with :meth:`resolve` (loose ingredients) or
    :meth:`from_spec` (declarative spec file) rather than directly —
    the constructors establish the normalization invariants documented
    in the module docstring.
    """

    #: Noise-seed override threaded into every keyed RNG stream.
    seed: int | None = None
    #: Executor/cache/retry selection for the measurement work.
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Deterministic fault plan; never a null plan after ``resolve``.
    faults: FaultPlan | None = None
    #: Telemetry context (span tree + metrics); identical to
    #: ``execution.telemetry`` after ``resolve``.
    telemetry: Telemetry | None = None
    #: Profiler-fidelity override for dataset builds.
    profiler: CudaProfiler | None = None
    #: Campaign directory the run archives into, when there is one.
    artifact_dir: pathlib.Path | None = None
    #: Where the aggregated ``metrics.json`` artifact goes.
    metrics_path: pathlib.Path | None = None
    #: Where the JSONL event log streams, when tracing.
    trace_path: pathlib.Path | None = None
    #: Where the live ``repro.events`` NDJSON stream goes, when live
    #: observability is on.
    live_path: pathlib.Path | None = None
    #: Where the flight recorder dumps its crash ring, when attached.
    flight_path: pathlib.Path | None = None
    #: DVFS-governor configuration the run plans frequencies under,
    #: when the campaign closes the loop (``repro governor``).
    governor: GovernorSpec | None = None
    #: Fleet configuration, when the campaign places a job stream
    #: across a synthesized device inventory (``repro fleet``).
    fleet: FleetSpec | None = None
    #: The declarative spec this context was resolved from, if any.
    spec: CampaignSpec | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def resolve(
        cls,
        seed: int | None = None,
        execution: ExecutionConfig | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        profiler: CudaProfiler | None = None,
        artifact_dir: str | pathlib.Path | None = None,
        metrics_path: str | pathlib.Path | None = None,
        trace_path: str | pathlib.Path | None = None,
        live_path: str | pathlib.Path | None = None,
        flight_path: str | pathlib.Path | None = None,
        governor: GovernorSpec | None = None,
        fleet: FleetSpec | None = None,
        spec: CampaignSpec | None = None,
    ) -> "RunContext":
        """Normalize loose session ingredients into one context.

        This is the single normalization point the per-layer copies
        collapsed into.  When no execution config is given, a default
        one is built — cached under ``artifact_dir/cache`` when the run
        has an artifact directory, uncached otherwise.  ``resolve`` is
        idempotent: re-resolving a resolved context's fields is a
        no-op.
        """
        artifact_dir = _as_path(artifact_dir)
        if execution is None:
            cache_dir = (
                artifact_dir / CACHE_DIR_NAME
                if artifact_dir is not None
                else None
            )
            execution = ExecutionConfig(cache_dir=cache_dir)
        faults = normalize_faults(faults)
        execution, telemetry = merge_execution(
            execution, faults=faults, telemetry=telemetry
        )
        metrics_path = _as_path(metrics_path)
        if (
            metrics_path is None
            and telemetry is not None
            and artifact_dir is not None
        ):
            metrics_path = artifact_dir / METRICS_NAME
        return cls(
            seed=seed,
            execution=execution,
            faults=faults,
            telemetry=telemetry,
            profiler=profiler,
            artifact_dir=artifact_dir,
            metrics_path=metrics_path,
            trace_path=_as_path(trace_path),
            live_path=_as_path(live_path),
            flight_path=_as_path(flight_path),
            governor=governor,
            fleet=fleet,
            spec=spec,
        )

    @classmethod
    def from_spec(
        cls,
        spec: CampaignSpec | str | pathlib.Path,
        base_dir: str | pathlib.Path | None = None,
        metrics_path: str | pathlib.Path | None = None,
    ) -> "RunContext":
        """Resolve a declarative campaign spec into a live context.

        ``base_dir`` roots the spec's defaulted locations (result
        cache, event log, metrics artifact) — pass the campaign
        directory.  A tracing spec opens a JSONL sink; the caller owns
        :meth:`close`.
        """
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.load(spec)
        base_dir = _as_path(base_dir)

        if spec.cache is False:
            cache_dir = None
        elif spec.cache is True:
            cache_dir = (
                base_dir / CACHE_DIR_NAME if base_dir is not None else None
            )
        else:
            cache_dir = pathlib.Path(spec.cache)
        execution = ExecutionConfig(
            jobs=spec.jobs,
            cache_dir=cache_dir,
            unit_timeout_s=spec.unit_timeout_s,
            breaker_threshold=spec.breaker_threshold,
        )

        def _setting_path(
            setting: bool | str, default_name: str
        ) -> pathlib.Path | None:
            if setting is False:
                return None
            if setting is True:
                return (
                    base_dir / default_name
                    if base_dir is not None
                    else pathlib.Path(default_name)
                )
            return pathlib.Path(setting)

        trace_path = _setting_path(spec.trace, EVENTS_NAME)
        live_path = _setting_path(spec.live, LIVE_NAME)
        flight_path = _setting_path(spec.flight_recorder, FLIGHT_NAME)

        # Live observability rides the same telemetry object: the bus
        # joins the tracer's sinks and the engine publishes progress /
        # incident envelopes through ``telemetry.bus``.  Observe-only —
        # enabling it must not change any deterministic artifact.
        bus = None
        if live_path is not None or flight_path is not None:
            from repro.telemetry.bus import EventBus

            bus = EventBus()
            if live_path is not None:
                bus.attach_writer(live_path)
            if flight_path is not None:
                bus.attach_flight_recorder(flight_path)

        telemetry: Telemetry | None = None
        if trace_path is not None:
            from repro.telemetry.sinks import JsonlSink

            telemetry = Telemetry(sinks=[JsonlSink(trace_path)], bus=bus)
        elif metrics_path is not None or bus is not None:
            telemetry = Telemetry(bus=bus)

        return cls.resolve(
            seed=spec.seed,
            execution=execution,
            faults=spec.faults,
            telemetry=telemetry,
            artifact_dir=base_dir,
            metrics_path=metrics_path,
            trace_path=trace_path,
            live_path=live_path,
            flight_path=flight_path,
            governor=spec.governor,
            fleet=spec.fleet,
            spec=spec,
        )

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def derive(self, **changes: Any) -> "RunContext":
        """A re-resolved copy with some ingredients replaced."""
        ingredients: dict[str, Any] = {
            "seed": self.seed,
            "execution": self.execution,
            "faults": self.faults,
            "telemetry": self.telemetry,
            "profiler": self.profiler,
            "artifact_dir": self.artifact_dir,
            "metrics_path": self.metrics_path,
            "trace_path": self.trace_path,
            "live_path": self.live_path,
            "flight_path": self.flight_path,
            "governor": self.governor,
            "fleet": self.fleet,
            "spec": self.spec,
        }
        unknown = sorted(set(changes) - set(ingredients))
        if unknown:
            raise TypeError(f"unknown RunContext fields: {', '.join(unknown)}")
        ingredients.update(changes)
        return RunContext.resolve(**ingredients)

    def rooted(self, directory: str | pathlib.Path) -> "RunContext":
        """Root an un-rooted context under a campaign directory.

        Fills in the artifact directory and the locations that default
        under it (result cache, metrics artifact).  A context that
        already has an artifact directory is returned unchanged — its
        locations were chosen deliberately.
        """
        if self.artifact_dir is not None:
            return self
        directory = pathlib.Path(directory)
        execution = self.execution
        if execution.cache_dir is None:
            execution = dataclasses.replace(
                execution, cache_dir=directory / CACHE_DIR_NAME
            )
        metrics_path = self.metrics_path
        if metrics_path is None and self.telemetry is not None:
            metrics_path = directory / METRICS_NAME
        return dataclasses.replace(
            self,
            execution=execution,
            artifact_dir=directory,
            metrics_path=metrics_path,
        )

    # ------------------------------------------------------------------
    # manifest embedding
    # ------------------------------------------------------------------

    #: Spec fields that select execution mechanics rather than science.
    #: By the determinism contract they cannot change any result, so the
    #: campaign manifest omits them: serial/parallel and cached/uncached
    #: runs of one campaign stay byte-identical (mechanics are accounted
    #: in ``health.json`` instead).
    _MECHANICS_KEYS = (
        "jobs",
        "cache",
        "trace",
        "live",
        "flight_recorder",
        "unit_timeout_s",
    )

    def spec_document(
        self,
        gpus: tuple[str, ...] | None = None,
        benchmarks: tuple[str, ...] | None = None,
        pairs: tuple[str, ...] | None = None,
    ) -> dict[str, Any]:
        """The resolved spec document a campaign embeds in its manifest.

        Contexts resolved from a spec echo its deterministic slice —
        what was measured (gpus/benchmarks/pairs), under which seed and
        fault plan; programmatic contexts synthesize the equivalent
        document from their own settings (plus the campaign shape
        passed in).  Either way an archive describes how to regenerate
        itself whatever path built it.  Execution mechanics
        (:attr:`_MECHANICS_KEYS`) are omitted — they cannot change the
        archived results.
        """
        if self.spec is not None:
            spec = self.spec
            if gpus is not None and spec.gpus is None:
                spec = spec.override(gpus=gpus)
        else:
            spec = CampaignSpec(
                gpus=gpus,
                benchmarks=benchmarks,
                pairs=pairs,
                seed=self.seed,
                faults=self.faults,
                breaker_threshold=self.execution.breaker_threshold,
                governor=self.governor,
                fleet=self.fleet,
            )
        document = spec.document()
        for key in self._MECHANICS_KEYS:
            document.pop(key, None)
        return document

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the telemetry sinks this context opened, if any."""
        if self.telemetry is not None:
            self.telemetry.close()

    def __repr__(self) -> str:  # compact: the dataclass default drags
        parts = [f"seed={self.seed}", f"jobs={self.execution.jobs}"]
        if self.faults is not None:
            parts.append(f"faults={self.faults.name!r}")
        if self.telemetry is not None:
            parts.append("telemetry=on")
        if self.artifact_dir is not None:
            parts.append(f"artifact_dir={str(self.artifact_dir)!r}")
        return f"RunContext({', '.join(parts)})"


# ----------------------------------------------------------------------
# deprecated-kwarg compatibility shim
# ----------------------------------------------------------------------

def legacy_context(
    api: str,
    ctx: RunContext | None = None,
    **legacy: Any,
) -> RunContext | None:
    """Resolve a deprecated kwarg bundle into a context, warning once.

    The public shim keeping pre-session signatures alive for one
    release: entry points pass their old kwargs here; if any is set, a
    :class:`DeprecationWarning` is issued (attributed to the caller's
    caller, so the test suite can escalate it to an error for
    ``repro.*`` internal modules) and an equivalent context is
    resolved.  Returns ``None`` when no legacy kwarg was used.
    """
    used = {name: value for name, value in legacy.items() if value is not None}
    if not used:
        return None
    if ctx is not None:
        raise TypeError(
            f"{api}: pass either ctx or the deprecated "
            f"{'/'.join(sorted(used))} kwargs, not both"
        )
    warnings.warn(
        f"{api}: passing {'/'.join(sorted(used))} as separate keyword "
        f"arguments is deprecated; pass a single RunContext instead "
        f"(ctx=RunContext.resolve(...), see docs/ARCHITECTURE.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    return RunContext.resolve(**legacy)
