"""Unified session layer: one RunContext instead of five kwargs.

A :class:`RunContext` bundles every cross-cutting concern of a
measurement campaign — noise seed, executor/cache selection, fault
plan, telemetry, profiler overrides, artifact locations — into one
frozen, normalized value that rides through every layer (campaign →
sweep/dataset → engine → instruments).  A
:class:`CampaignSpec` is its declarative file form: a versioned
TOML/JSON document that fully describes a campaign, loads via
:meth:`RunContext.from_spec`, and is echoed into the campaign manifest
so an archive describes how to regenerate itself.

See docs/ARCHITECTURE.md for the layering and the spec schema.
"""

from repro.session.context import (
    CACHE_DIR_NAME,
    EVENTS_NAME,
    METRICS_NAME,
    RunContext,
    legacy_context,
    merge_execution,
    normalize_faults,
)
from repro.session.spec import (
    FLEET_FORMAT,
    GOVERNOR_FORMAT,
    SPEC_FORMAT,
    SPEC_VERSION,
    CampaignSpec,
    FleetSpec,
    GovernorSpec,
    SpecError,
    load_spec,
)

__all__ = [
    "CACHE_DIR_NAME",
    "CampaignSpec",
    "EVENTS_NAME",
    "FLEET_FORMAT",
    "FleetSpec",
    "GOVERNOR_FORMAT",
    "GovernorSpec",
    "METRICS_NAME",
    "RunContext",
    "SPEC_FORMAT",
    "SPEC_VERSION",
    "SpecError",
    "legacy_context",
    "load_spec",
    "merge_execution",
    "normalize_faults",
]
