"""Measurement-campaign orchestration with on-disk persistence.

A full Section III + Section IV campaign — sweeps and modeling datasets
for every GPU — is the expensive part of the study (weeks of wall-meter
time on real hardware).  ``Campaign`` orchestrates it with resumable
JSON persistence: datasets are archived per GPU under a campaign
directory and reloaded instead of re-measured on subsequent runs, which
is how one would actually manage the paper's experiment data.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro._version import __version__
from repro.arch.specs import GPU_NAMES, GPUSpec, get_gpu
from repro.core.dataset import ModelingDataset, build_dataset
from repro.core.evaluate import evaluate_model
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.core.serialize import (
    dataset_from_json,
    dataset_to_json,
    model_from_json,
    model_to_json,
)

MANIFEST_NAME = "campaign.json"


@dataclass
class CampaignSummary:
    """Per-GPU model quality of a completed campaign."""

    gpu: str
    power_r2: float
    power_err_pct: float
    power_err_w: float
    perf_r2: float
    perf_err_pct: float


class Campaign:
    """Resumable measurement + modeling campaign over a set of GPUs.

    Parameters
    ----------
    directory:
        Where datasets, fitted models and the manifest are stored.
    gpus:
        GPU names to include; defaults to the paper's four.
    seed:
        Optional noise-seed override, recorded in the manifest.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        gpus: Sequence[str] | None = None,
        seed: int | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.gpu_names = tuple(gpus) if gpus is not None else GPU_NAMES
        self.seed = seed
        # Validate the names eagerly (raises UnknownGPUError).
        self._specs: dict[str, GPUSpec] = {
            name: get_gpu(name) for name in self.gpu_names
        }

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _slug(self, gpu_name: str) -> str:
        return gpu_name.lower().replace(" ", "_")

    def dataset_path(self, gpu_name: str) -> pathlib.Path:
        """Where a GPU's dataset is archived."""
        return self.directory / f"dataset_{self._slug(gpu_name)}.json"

    def model_path(self, gpu_name: str, kind: str) -> pathlib.Path:
        """Where a GPU's fitted model is archived."""
        return self.directory / f"model_{kind}_{self._slug(gpu_name)}.json"

    @property
    def manifest_path(self) -> pathlib.Path:
        """The campaign manifest file."""
        return self.directory / MANIFEST_NAME

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def dataset(self, gpu_name: str, refresh: bool = False) -> ModelingDataset:
        """Load the archived dataset for one GPU, measuring if absent."""
        spec = self._specs[gpu_name]
        path = self.dataset_path(gpu_name)
        if path.exists() and not refresh:
            return dataset_from_json(path.read_text(encoding="utf-8"))
        dataset = build_dataset(spec, seed=self.seed)
        self.directory.mkdir(parents=True, exist_ok=True)
        path.write_text(dataset_to_json(dataset), encoding="utf-8")
        return dataset

    def run(self, refresh: bool = False) -> list[CampaignSummary]:
        """Measure (or reload) every GPU, fit and archive both models.

        Returns the per-GPU quality summary and writes the manifest.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        summaries: list[CampaignSummary] = []
        for name in self.gpu_names:
            ds = self.dataset(name, refresh=refresh)
            power = UnifiedPowerModel().fit(ds)
            perf = UnifiedPerformanceModel().fit(ds)
            self.model_path(name, "power").write_text(
                model_to_json(power), encoding="utf-8"
            )
            self.model_path(name, "performance").write_text(
                model_to_json(perf), encoding="utf-8"
            )
            power_report = evaluate_model(power, ds)
            perf_report = evaluate_model(perf, ds)
            summaries.append(
                CampaignSummary(
                    gpu=name,
                    power_r2=power.adjusted_r2,
                    power_err_pct=power_report.mean_pct_error,
                    power_err_w=power_report.mean_abs_error,
                    perf_r2=perf.adjusted_r2,
                    perf_err_pct=perf_report.mean_pct_error,
                )
            )
        manifest = {
            "format": "repro.campaign",
            "version": __version__,
            "seed": self.seed,
            "gpus": list(self.gpu_names),
            "summaries": [vars(s) for s in summaries],
        }
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        return summaries

    def load_model(self, gpu_name: str, kind: str):
        """Reload an archived fitted model (``"power"``/``"performance"``)."""
        path = self.model_path(gpu_name, kind)
        if not path.exists():
            raise FileNotFoundError(
                f"no archived {kind} model for {gpu_name}; run the campaign"
            )
        return model_from_json(path.read_text(encoding="utf-8"))

    @property
    def is_complete(self) -> bool:
        """Whether every GPU's dataset and models are archived."""
        return all(
            self.dataset_path(n).exists()
            and self.model_path(n, "power").exists()
            and self.model_path(n, "performance").exists()
            for n in self.gpu_names
        )
