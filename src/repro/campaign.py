"""Measurement-campaign orchestration with on-disk persistence.

A full Section III + Section IV campaign — sweeps and modeling datasets
for every GPU — is the expensive part of the study (weeks of wall-meter
time on real hardware).  ``Campaign`` orchestrates it on the parallel
execution engine (``repro.execution``): the work decomposes into
(GPU, benchmark, input size) units that run across worker processes and
memoize into a content-addressed result cache, so an interrupted or
repeated campaign resumes at work-unit granularity.  Finished datasets
and fitted models are archived per GPU under the campaign directory —
written atomically (temp file + rename) so a killed run can never leave
a half-written archive that later loads as valid JSON.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Sequence

from repro._version import __version__
from repro.arch.specs import GPU_NAMES, GPUSpec, get_gpu
from repro.core.dataset import ModelingDataset, build_dataset
from repro.core.evaluate import evaluate_model
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.core.serialize import (
    dataset_from_json,
    dataset_to_json,
    model_from_json,
    model_to_json,
)
from repro.execution.cache import atomic_write_text
from repro.execution.engine import ExecutionConfig, ExecutionStats
from repro.execution.journal import RunJournal
from repro.faults.health import CampaignHealth
from repro.faults.plan import FaultPlan
from repro.kernels.profile import KernelSpec
from repro.kernels.suites import get_benchmark
from repro.session.context import (
    CACHE_DIR_NAME,
    EVENTS_NAME,
    METRICS_NAME,
    RunContext,
    legacy_context,
)
from repro.telemetry.runtime import Telemetry
from repro.telemetry.sinks import metrics_document, write_metrics_json

MANIFEST_NAME = "campaign.json"

#: Machine-readable execution-health report written next to the manifest.
HEALTH_NAME = "health.json"

#: Write-ahead run journal (deliberately ``.jsonl``, so the byte-compare
#: globs over ``*.json`` artifacts never pick up this append-only log).
JOURNAL_NAME = "journal.jsonl"

__all__ = [
    "CACHE_DIR_NAME",
    "Campaign",
    "CampaignSummary",
    "EVENTS_NAME",
    "HEALTH_NAME",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "METRICS_NAME",
]


@dataclass
class CampaignSummary:
    """Per-GPU model quality of a completed campaign."""

    gpu: str
    power_r2: float
    power_err_pct: float
    power_err_w: float
    perf_r2: float
    perf_err_pct: float


class Campaign:
    """Resumable measurement + modeling campaign over a set of GPUs.

    Parameters
    ----------
    directory:
        Where datasets, fitted models and the manifest are stored.
    gpus:
        GPU names to include; defaults to the paper's four.
    benchmarks:
        Benchmark names to restrict the modeling datasets to; defaults
        to the full profiler-compatible set.
    pairs:
        Frequency-pair keys to restrict measurement to; defaults to
        every configurable pair of each card (Table III).
    ctx:
        The :class:`~repro.session.RunContext` the campaign runs under —
        seed, executor/cache selection, fault plan, telemetry and
        artifact locations in one normalized value.  Un-rooted contexts
        are rooted under ``directory`` (result cache at
        ``<directory>/cache``, metrics artifact at
        ``<directory>/metrics.json`` when telemetry is active).
        Defaults to a serial, fault-free context cached under the
        campaign directory.  When the context carries a fault plan,
        dataset builds degrade gracefully (failed units become recorded
        exclusions) and the run emits a machine-readable ``health.json``
        accounting for every loss.  When it carries telemetry,
        :meth:`run` produces the campaign span tree (campaign → per-GPU
        dataset/fit/evaluate phases → work units → attempts →
        instrument operations), streams events to the context's sinks,
        and writes the aggregated ``metrics.json`` artifact — whose
        counter section is byte-identical at any ``jobs`` value.
        Contexts resolved from a declarative spec
        (:meth:`RunContext.from_spec`) echo the spec into the campaign
        manifest.
    seed, execution, faults, telemetry, metrics_path:
        Deprecated kwarg bundle; pass a ``ctx`` instead.  Kept as a
        compatibility shim for one release.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        gpus: Sequence[str] | None = None,
        benchmarks: Sequence[str] | None = None,
        pairs: Sequence[str] | None = None,
        ctx: RunContext | None = None,
        *,
        seed: int | None = None,
        execution: ExecutionConfig | None = None,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        metrics_path: str | pathlib.Path | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.gpu_names = tuple(gpus) if gpus is not None else GPU_NAMES
        # Validate the names eagerly (raises UnknownGPUError).
        self._specs: dict[str, GPUSpec] = {
            name: get_gpu(name) for name in self.gpu_names
        }
        # Same for benchmark names (raises UnknownBenchmarkError).
        self._benchmarks: list[KernelSpec] | None = (
            [get_benchmark(name) for name in benchmarks]
            if benchmarks is not None
            else None
        )
        self._pairs: tuple[str, ...] | None = (
            tuple(pairs) if pairs is not None else None
        )
        legacy = legacy_context(
            "Campaign",
            ctx=ctx,
            seed=seed,
            execution=execution,
            faults=faults,
            telemetry=telemetry,
            metrics_path=metrics_path,
        )
        if legacy is not None:
            ctx = legacy
        elif ctx is None:
            ctx = RunContext.resolve()
        #: The session context every dataset build and run execute under.
        self.ctx = ctx.rooted(self.directory)
        #: Aggregated execution statistics of the most recent :meth:`run`.
        self.last_stats: ExecutionStats | None = None
        #: Health report of the most recent :meth:`run`.
        self.last_health: CampaignHealth | None = None

    # Convenience views onto the session context (stable public names).

    @property
    def seed(self) -> int | None:
        """The context's noise-seed override."""
        return self.ctx.seed

    @property
    def execution(self) -> ExecutionConfig:
        """The context's executor/cache selection."""
        return self.ctx.execution

    @property
    def faults(self) -> FaultPlan | None:
        """The context's fault plan (never a null plan)."""
        return self.ctx.faults

    @property
    def telemetry(self) -> Telemetry | None:
        """The context's telemetry, if any."""
        return self.ctx.telemetry

    @property
    def metrics_path(self) -> pathlib.Path | None:
        """Where the aggregated metrics artifact goes, if telemetry is on."""
        return self.ctx.metrics_path

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _slug(self, gpu_name: str) -> str:
        return gpu_name.lower().replace(" ", "_")

    def dataset_path(self, gpu_name: str) -> pathlib.Path:
        """Where a GPU's dataset is archived."""
        return self.directory / f"dataset_{self._slug(gpu_name)}.json"

    def model_path(self, gpu_name: str, kind: str) -> pathlib.Path:
        """Where a GPU's fitted model is archived."""
        return self.directory / f"model_{kind}_{self._slug(gpu_name)}.json"

    @property
    def manifest_path(self) -> pathlib.Path:
        """The campaign manifest file."""
        return self.directory / MANIFEST_NAME

    @property
    def health_path(self) -> pathlib.Path:
        """The campaign execution-health report."""
        return self.directory / HEALTH_NAME

    @property
    def journal_path(self) -> pathlib.Path:
        """The campaign's write-ahead run journal."""
        return self.directory / JOURNAL_NAME

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def dataset(
        self,
        gpu_name: str,
        refresh: bool = False,
        stats: ExecutionStats | None = None,
        *,
        ctx: RunContext | None = None,
        rebuild: bool = False,
    ) -> ModelingDataset:
        """Load the archived dataset for one GPU, measuring if absent.

        Measurement runs through the campaign's execution config: work
        units spread over workers and land in the result cache, so even
        a measurement interrupted before archival resumes at work-unit
        (not per-GPU-file) granularity.

        ``rebuild`` forces the build even when the archive exists —
        a resumed run replays the journal instead of trusting per-GPU
        archives, so the health account re-earns every number (the
        re-written archive is byte-identical by determinism).
        """
        spec = self._specs[gpu_name]
        path = self.dataset_path(gpu_name)
        if path.exists() and not refresh and not rebuild:
            return dataset_from_json(path.read_text(encoding="utf-8"))
        dataset = build_dataset(
            spec,
            benchmarks=self._benchmarks,
            pairs=self._pairs,
            ctx=ctx if ctx is not None else self.ctx,
            stats=stats,
        )
        atomic_write_text(path, dataset_to_json(dataset))
        return dataset

    def run(
        self, refresh: bool = False, resume: bool = False
    ) -> list[CampaignSummary]:
        """Measure (or reload) every GPU, fit and archive both models.

        Models are evaluated *before* anything is written, and every
        artifact is published atomically, so a failed fit or a killed
        run cannot leave a half-written archive behind.  Every unit
        outcome is journaled write-ahead to :attr:`journal_path`;
        ``resume=True`` replays a prior (possibly interrupted) journal
        — payloads from the result cache, failures and quarantines from
        the journal — producing artifacts byte-identical to an
        uninterrupted run without re-burning retry budgets.

        Returns the per-GPU quality summary and writes the manifest.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        bus = (
            getattr(self.telemetry, "bus", None)
            if self.telemetry is not None
            else None
        )
        journal = RunJournal(
            self.journal_path,
            resume=resume,
            # Durably appended records re-publish on the live bus; no
            # observer when observability is off (identical journal
            # bytes either way — the observer runs after the append).
            observer=bus.journal_observer() if bus is not None else None,
        )
        try:
            return self._run(journal, refresh=refresh, resume=resume)
        finally:
            journal.close()

    def _run(
        self, journal: RunJournal, refresh: bool, resume: bool
    ) -> list[CampaignSummary]:
        ctx = dataclasses.replace(
            self.ctx,
            execution=dataclasses.replace(
                self.ctx.execution, journal=journal
            ),
        )
        totals = ExecutionStats()
        health = CampaignHealth(
            seed=self.seed,
            fault_plan=(
                self.faults.document() if self.faults is not None else None
            ),
        )
        telemetry = self.telemetry
        bus = getattr(telemetry, "bus", None) if telemetry is not None else None
        summaries: list[CampaignSummary] = []
        archives: list[tuple[pathlib.Path, str]] = []
        campaign_span = (
            telemetry.tracer.span(
                "campaign",
                kind="campaign",
                gpus=list(self.gpu_names),
                seed=self.seed,
            )
            if telemetry is not None
            else contextlib.nullcontext()
        )
        with campaign_span:
            for name in self.gpu_names:
                gpu_stats = ExecutionStats()
                ds = self.dataset(
                    name,
                    refresh=refresh,
                    stats=gpu_stats,
                    ctx=ctx,
                    rebuild=resume,
                )
                totals.merge(gpu_stats)
                account = health.gpu(name)
                account.attempted = gpu_stats.total_units
                account.measured = gpu_stats.measured
                account.cache_hits = gpu_stats.cache_hits
                account.retried = gpu_stats.retries
                account.failed = gpu_stats.failed
                account.quarantined = gpu_stats.quarantined
                account.pool_rebuilds = gpu_stats.pool_rebuilds
                account.breakers = list(gpu_stats.breaker_events)
                account.degraded = sum(
                    1 for o in ds.observations if o.degraded
                )
                account.excluded = [e.document() for e in ds.exclusions]
                if telemetry is not None:
                    telemetry.metrics.inc("campaign.gpus")
                    if bus is not None:
                        # Unit-less phase: the fit has no work units,
                        # but the live view should show the campaign
                        # left the measurement phase.
                        bus.phase_start(f"fit:{name}", units=0)
                    fit_span = telemetry.tracer.span(
                        "model-fit", kind="phase", gpu=name
                    )
                else:
                    fit_span = contextlib.nullcontext()
                with fit_span as span:
                    power = UnifiedPowerModel().fit(ds)
                    perf = UnifiedPerformanceModel().fit(ds)
                    # Evaluate first: only campaigns whose models fit
                    # *and* evaluate get archived.
                    power_report = evaluate_model(power, ds)
                    perf_report = evaluate_model(perf, ds)
                if telemetry is not None:
                    telemetry.metrics.inc("campaign.models_fitted", 2)
                    telemetry.metrics.observe(
                        "phase.fit_seconds", span.duration_s
                    )
                archives.append(
                    (self.model_path(name, "power"), model_to_json(power))
                )
                archives.append(
                    (
                        self.model_path(name, "performance"),
                        model_to_json(perf),
                    )
                )
                summaries.append(
                    CampaignSummary(
                        gpu=name,
                        power_r2=power.adjusted_r2,
                        power_err_pct=power_report.mean_pct_error,
                        power_err_w=power_report.mean_abs_error,
                        perf_r2=perf.adjusted_r2,
                        perf_err_pct=perf_report.mean_pct_error,
                    )
                )
        for path, text in archives:
            atomic_write_text(path, text)
        manifest = {
            "format": "repro.campaign",
            "version": __version__,
            "seed": self.seed,
            "gpus": list(self.gpu_names),
            "faults": (
                self.faults.document() if self.faults is not None else None
            ),
            # The resolved declarative spec this campaign is equivalent
            # to — echoed verbatim when the run came from a spec file,
            # synthesized otherwise — so every archive describes how to
            # regenerate itself.
            "spec": self.ctx.spec_document(
                gpus=self.gpu_names,
                benchmarks=(
                    tuple(b.name for b in self._benchmarks)
                    if self._benchmarks is not None
                    else None
                ),
                pairs=self._pairs,
            ),
            # Per-GPU losses with reasons.  Deliberately only the
            # cache-state-independent slice of the health report:
            # exclusions and degraded counts are dataset properties, so
            # warm-cache re-runs keep the manifest byte-identical
            # (full execution counters live in health.json).
            "losses": {
                g.gpu: {"excluded": list(g.excluded), "degraded": g.degraded}
                for g in health.gpus
            },
            "summaries": [vars(s) for s in summaries],
        }
        atomic_write_text(self.manifest_path, json.dumps(manifest, indent=2))
        # Point downstream tooling at the live stream / crash dump
        # without globbing the run directory.  Relative names (when the
        # artifact lives inside the campaign directory) keep health.json
        # byte-comparable across run directories.
        health.events_path = self._artifact_name(
            self.ctx.live_path
            if self.ctx.live_path is not None
            else self.ctx.trace_path
        )
        health.flight_recorder_path = self._artifact_name(self.ctx.flight_path)
        atomic_write_text(self.health_path, health.to_json())
        if telemetry is not None:
            snapshot = telemetry.metrics.snapshot()
            # The final metrics snapshot rides in the event log too, so
            # ``repro trace summarize`` can print the counter section
            # without a second artifact.
            telemetry.tracer.emit(
                {"type": "metrics", **metrics_document(snapshot)}
            )
            if self.metrics_path is not None:
                write_metrics_json(self.metrics_path, snapshot)
        self.last_stats = totals
        self.last_health = health
        return summaries

    def _artifact_name(self, path: pathlib.Path | None) -> str | None:
        """A health-report pointer: relative inside the campaign dir."""
        if path is None:
            return None
        try:
            return str(pathlib.Path(path).relative_to(self.directory))
        except ValueError:
            return str(path)

    def load_model(self, gpu_name: str, kind: str):
        """Reload an archived fitted model (``"power"``/``"performance"``)."""
        path = self.model_path(gpu_name, kind)
        if not path.exists():
            raise FileNotFoundError(
                f"no archived {kind} model for {gpu_name}; run the campaign"
            )
        return model_from_json(path.read_text(encoding="utf-8"))

    @property
    def is_complete(self) -> bool:
        """Whether every GPU's dataset and models are archived."""
        return all(
            self.dataset_path(n).exists()
            and self.model_path(n, "power").exists()
            and self.model_path(n, "performance").exists()
            for n in self.gpu_names
        )
