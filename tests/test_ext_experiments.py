"""Extension-experiment registry and shape tests.

The heavier extension experiments (crossval over 33 benchmarks x 4 GPUs,
bootstrap with refits) are exercised end-to-end by the benchmark harness;
here we verify registration and run the cheaper ones.
"""

from __future__ import annotations


from repro.experiments.registry import EXPERIMENTS, all_experiments, run


class TestRegistration:
    def test_extensions_registered(self):
        ids = all_experiments()
        for ext in (
            "ext_crossval",
            "ext_transfer",
            "ext_radeon",
            "ext_governor",
            "ext_bootstrap",
            "ext_methods",
            "ext_roofline",
            "ext_synthetic",
            "ext_thermal",
            "ext_seeds",
            "ext_profiler",
            "ext_pareto",
            "ext_fleet",
        ):
            assert ext in ids

    def test_total_count(self):
        assert len(EXPERIMENTS) == 33  # 19 paper artifacts + 14 extensions

    def test_paper_artifacts_come_first(self):
        ids = all_experiments()
        first_ext = next(i for i, x in enumerate(ids) if x.startswith("ext_"))
        assert all(not x.startswith("ext_") for x in ids[:first_ext])


class TestExtensionRuns:
    def test_transfer_experiment(self):
        result = run("ext_transfer")
        assert len(result.rows) == 8  # 4 transfer pairs x 2 model families
        # Within-generation Fermi transfers share all 74 counters.
        fermi_rows = [r for r in result.rows if "460" in r[0] and "480" in r[0]]
        assert all(r[2] == 74 for r in fermi_rows)
        # Ported models always degrade.
        assert all(r[5] >= 1.0 for r in result.rows)

    def test_radeon_experiment(self):
        result = run("ext_radeon")
        values = {r[0]: r[1] for r in result.rows}
        assert values["counter set size"] == 75
        assert values["modeling samples"] == 114
        assert values["performance model R̄²"] > 0.85

    def test_governor_experiment(self):
        result = run("ext_governor")
        assert len(result.rows) == 4
        for row in result.rows:
            mean_rank = row[2]
            assert mean_rank < 4.5  # never worse than random
