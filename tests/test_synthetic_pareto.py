"""Synthetic workload generator, Pareto analysis and reporting tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.characterize.sweep import FrequencySweep
from repro.instruments.testbed import Testbed
from repro.kernels.synthetic import generate_kernel, generate_suite
from repro.optimize.pareto import frontier_pairs, knee_point, pareto_frontier


class TestSyntheticGenerator:
    def test_deterministic(self):
        assert generate_kernel(5).gflops_total == generate_kernel(5).gflops_total
        assert generate_kernel(5).name == "synth005"

    def test_distinct_indices_distinct_kernels(self):
        a, b = generate_kernel(1), generate_kernel(2)
        assert a.gflops_total != b.gflops_total

    def test_suite_generation(self):
        suite = generate_suite(10)
        assert len(suite) == 10
        assert len({k.name for k in suite}) == 10
        assert all(k.profiler_ok for k in suite)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_suite(0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_generated_kernels_are_valid_and_runnable(self, index):
        """Every generated kernel passes KernelSpec validation and runs
        through the whole measurement stack."""
        kernel = generate_kernel(index)
        assert 0.0 <= kernel.divergence <= 0.7
        assert 0.05 <= kernel.arithmetic_intensity <= 80.5
        work = kernel.work(0.05)
        assert work.flops > 0

    def test_generated_kernel_measurable(self, gtx480):
        testbed = Testbed(gtx480)
        m = testbed.measure(generate_kernel(7), 0.05)
        assert m.exec_seconds > 0
        assert m.energy_j > 0


class TestPareto:
    @pytest.fixture(scope="class")
    def measurements(self, gtx680):
        from repro.kernels.suites import get_benchmark

        return FrequencySweep(gtx680).run_benchmark(get_benchmark("backprop"))

    def test_frontier_nonempty(self, measurements):
        frontier = frontier_pairs(measurements)
        assert frontier
        assert len(frontier) <= len(measurements)

    def test_fastest_pair_always_on_frontier(self, measurements):
        fastest = min(measurements, key=lambda k: measurements[k].exec_seconds)
        assert fastest in frontier_pairs(measurements)

    def test_cheapest_pair_always_on_frontier(self, measurements):
        cheapest = min(measurements, key=lambda k: measurements[k].energy_j)
        assert cheapest in frontier_pairs(measurements)

    def test_dominated_points_flagged(self, measurements):
        points = pareto_frontier(measurements)
        by_pair = {p.pair: p for p in points}
        for p in points:
            if not p.optimal:
                assert any(
                    q.exec_seconds <= p.exec_seconds
                    and q.energy_j <= p.energy_j
                    and q.pair != p.pair
                    for q in points
                )

    def test_knee_is_on_frontier(self, measurements):
        knee = knee_point(measurements)
        assert knee.optimal
        assert knee.pair in frontier_pairs(measurements)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier({})


class TestReporting:
    def test_render_selected_experiments(self, tmp_path):
        from repro.reporting import render_experiments

        entries = render_experiments(
            tmp_path, experiment_ids=["table1", "table3"]
        )
        assert len(entries) == 2
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "INDEX.txt").exists()
        index = (tmp_path / "INDEX.txt").read_text()
        assert "table1" in index and "table3" in index

    def test_rendered_file_contains_result(self, tmp_path):
        from repro.reporting import render_experiments

        render_experiments(tmp_path, experiment_ids=["table1"])
        text = (tmp_path / "table1.txt").read_text()
        assert "GTX 680" in text


class TestPaperTable4Agreement:
    def test_pair_distance(self):
        from repro.experiments.paper_table4 import pair_distance

        assert pair_distance("H-H", "H-H") == 0
        assert pair_distance("H-H", "H-M") == 1
        assert pair_distance("H-L", "L-H") == 4

    def test_agreement_stats_computed(self):
        from repro.experiments.paper_table4 import (
            PAPER_TABLE4,
            agreement_stats,
        )

        # Perfect agreement when we echo the paper's own cells.
        ours = {
            gpu: {b: pairs[i] for b, pairs in PAPER_TABLE4.items()}
            for i, gpu in enumerate(
                ("GTX 285", "GTX 460", "GTX 480", "GTX 680")
            )
        }
        stats = agreement_stats(ours)
        for gpu_stats in stats.values():
            assert gpu_stats["exact"] == 1.0
            assert gpu_stats["mean_distance"] == 0.0

    def test_table_has_34_rows(self):
        from repro.experiments.paper_table4 import PAPER_TABLE4

        assert len(PAPER_TABLE4) == 34  # 33 paper rows + SRAD mapped twice
