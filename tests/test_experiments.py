"""Experiment registry and per-artifact smoke/shape tests.

These run every table and figure of the paper once (shared caches make
this affordable) and check structural properties of each output.
"""

from __future__ import annotations

import pytest

from repro.arch.specs import GPU_NAMES
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, all_experiments, get_experiment, run


class TestRegistry:
    def test_all_19_paper_artifacts_present(self):
        ids = all_experiments()
        paper = [i for i in ids if not i.startswith("ext_")]
        assert len(paper) == 19
        assert {f"table{i}" for i in range(1, 9)} <= set(ids)
        assert {f"fig{i}" for i in range(1, 12)} <= set(ids)

    def test_lookup_case_insensitive(self):
        title, _ = get_experiment("TABLE5")
        assert "power model" in title

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")


@pytest.fixture(scope="module")
def results():
    """Run every *paper* artifact once, sharing the context caches.

    The heavier extension experiments are covered by
    ``tests/test_ext_experiments.py`` and the benchmark harness.
    """
    return {
        experiment_id: run(experiment_id)
        for experiment_id in EXPERIMENTS
        if not experiment_id.startswith("ext_")
    }


class TestArtifacts:
    def test_every_result_renders(self, results):
        for experiment_id, result in results.items():
            assert isinstance(result, ExperimentResult)
            text = result.to_text()
            assert experiment_id in text
            assert len(text.splitlines()) >= 3

    def test_table1_matches_registry(self, results):
        rows = {r[0]: r[1:] for r in results["table1"].rows}
        assert rows["# of processing cores"] == [240, 336, 480, 1536]

    def test_table2_counts(self, results):
        counts = {r[0]: r[1] for r in results["table2"].rows}
        assert counts == {
            "Rodinia": 18,
            "Parboil": 10,
            "CUDA SDK": 6,
            "Matrix": 3,
        }

    def test_table3_marks(self, results):
        rows = {r[0]: r[1:] for r in results["table3"].rows}
        assert rows["Core-H, Mem-H"] == ["yes"] * 4
        assert rows["Core-L, Mem-L"] == ["-", "yes", "yes", "-"]

    def test_fig1_normalized_to_default(self, results):
        for row in results["fig1"].rows:
            gpu, mem, core, perf, eff = row
            if mem == "Mem-H" and core in ("1296", "1350", "1400", "1411"):
                assert perf == pytest.approx(1.0)
                assert eff == pytest.approx(1.0)

    def test_table4_has_all_benchmarks(self, results):
        assert len(results["table4"].rows) == 37

    def test_fig4_average_row(self, results):
        last = results["fig4"].rows[-1]
        assert last[0] == "AVERAGE"
        averages = last[1:]
        # Paper ordering: Tesla tiny, Kepler largest.
        assert averages[0] < averages[1]
        assert averages[3] == max(averages)

    def test_table5_r2_values(self, results):
        ours = results["table5"].rows[0][1:]
        assert all(0.0 < v < 1.0 for v in ours)

    def test_table6_r2_high(self, results):
        ours = results["table6"].rows[0][1:]
        assert all(v > 0.85 for v in ours)

    def test_table7_watt_errors_small(self, results):
        watt_row = [r for r in results["table7"].rows if r[0] == "Error[W] (ours)"][0]
        assert all(v < 30.0 for v in watt_row[1:])

    def test_table8_errors_decrease_by_generation(self, results):
        ours = [r for r in results["table8"].rows if r[0] == "Error[%] (ours)"][0][1:]
        assert ours[0] == max(ours)  # Tesla worst
        assert ours[3] <= ours[1]  # Kepler better than Fermi-460

    def test_fig5_and_fig6_cover_modeled_benchmarks(self, results):
        for experiment_id in ("fig5", "fig6"):
            assert len(results[experiment_id].rows) == 33

    def test_fig7_fig8_sweep_counts(self, results):
        for experiment_id in ("fig7", "fig8"):
            rows = results[experiment_id].rows
            assert len(rows) == 4 * 4  # 4 GPUs x 4 variable counts
            # R̄² never decreases when allowing more variables.
            for name in GPU_NAMES:
                r2s = [r[2] for r in rows if r[0] == name]
                assert r2s == sorted(r2s)

    def test_fig9_fig10_have_unified_rows(self, results):
        for experiment_id in ("fig9", "fig10"):
            models = {(r[0], r[1]) for r in results[experiment_id].rows}
            for name in GPU_NAMES:
                assert (name, "unified") in models

    def test_fig11_influences_normalized(self, results):
        rows = results["fig11"].rows
        for name in GPU_NAMES:
            for kind in ("power", "performance"):
                shares = [
                    r[4] for r in rows if r[0] == name and r[1] == kind
                ]
                assert sum(shares) == pytest.approx(100.0, abs=1.0)
                assert len(shares) <= 10
