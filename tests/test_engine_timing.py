"""Timing, occupancy and cache model tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.architecture import Architecture, traits_of
from repro.arch.dvfs import ClockLevel
from repro.engine.cache import simulate_cache
from repro.engine.occupancy import (
    divergence_efficiency,
    occupancy_efficiency,
    scheduler_efficiency,
)
from repro.engine.timing import compute_work_ops, simulate_timing
from repro.kernels.suites import all_benchmarks, get_benchmark


def _timing(gpu, bench_name, pair, scale=1.0):
    bench = get_benchmark(bench_name)
    work = bench.work(scale)
    cache = simulate_cache(work, gpu)
    return simulate_timing(work, cache, gpu, gpu.operating_point(pair))


class TestOccupancy:
    def test_full_occupancy_is_unity(self):
        assert occupancy_efficiency(1.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_occupancy_efficiency_bounded(self, occ):
        eff = occupancy_efficiency(occ)
        assert 0.0 < eff <= 1.0

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_occupancy_efficiency_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert occupancy_efficiency(lo) <= occupancy_efficiency(hi)

    def test_divergence_penalty_strongest_on_tesla(self):
        tesla = divergence_efficiency(0.5, traits_of(Architecture.TESLA))
        kepler = divergence_efficiency(0.5, traits_of(Architecture.KEPLER))
        assert tesla < kepler

    def test_no_divergence_no_penalty(self):
        assert divergence_efficiency(0.0, traits_of(Architecture.FERMI)) == 1.0

    def test_scheduler_efficiency_in_unit_interval(self):
        for arch in Architecture:
            eff = scheduler_efficiency(0.8, 0.2, traits_of(arch))
            assert 0.0 < eff < 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            occupancy_efficiency(0.0)
        with pytest.raises(ValueError):
            divergence_efficiency(1.5, traits_of(Architecture.FERMI))


class TestCache:
    def test_tesla_filters_nothing(self, gtx285):
        work = get_benchmark("hotspot").work(1.0)
        outcome = simulate_cache(work, gtx285)
        assert outcome.l1_hit_bytes == 0.0
        assert outcome.l2_hit_bytes == 0.0
        assert outcome.dram_bytes >= work.global_bytes  # only overfetch

    def test_fermi_filters_local_traffic(self, gtx480):
        work = get_benchmark("hotspot").work(1.0)  # locality 0.8
        outcome = simulate_cache(work, gtx480)
        assert outcome.dram_fraction < 0.7

    def test_kepler_filters_more_than_fermi(self, gtx480, gtx680):
        work = get_benchmark("hotspot").work(1.0)
        assert (
            simulate_cache(work, gtx680).dram_bytes
            < simulate_cache(work, gtx480).dram_bytes
        )

    def test_uncoalesced_overfetch(self, gtx480):
        work = get_benchmark("spmv").work(1.0)  # coalescing 0.4
        outcome = simulate_cache(work, gtx480)
        filtered = work.global_bytes * (
            1 - gtx480.traits.cache_factor * work.locality
        )
        assert outcome.dram_bytes == pytest.approx(filtered / work.coalescing)

    def test_byte_conservation(self, gpu):
        for bench in all_benchmarks()[:10]:
            work = bench.work(0.5)
            o = simulate_cache(work, gpu)
            assert o.l1_hit_bytes + o.l2_hit_bytes <= o.requested_bytes + 1e-6
            assert o.dram_read_bytes + o.dram_write_bytes == pytest.approx(
                o.dram_bytes
            )


class TestTiming:
    def test_compute_bound_scales_with_core_clock(self, gtx480):
        hh = _timing(gtx480, "backprop", "H-H")
        mh = _timing(gtx480, "backprop", "M-H")
        expected = gtx480.core_freq(ClockLevel.H) / gtx480.core_freq(ClockLevel.M)
        assert mh.t_compute / hh.t_compute == pytest.approx(expected)
        assert mh.t_kernel > hh.t_kernel

    def test_memory_bound_scales_with_mem_clock(self, gtx480):
        hh = _timing(gtx480, "streamcluster", "H-H")
        hm = _timing(gtx480, "streamcluster", "H-M")
        assert hm.t_memory > hh.t_memory
        assert hm.t_kernel > hh.t_kernel

    def test_combined_time_bounds(self, gpu):
        """Generalized-mean combination lies between max and sum."""
        for bench in ("backprop", "streamcluster", "gaussian"):
            t = _timing(gpu, bench, "H-H")
            assert t.t_kernel >= max(t.t_compute, t.t_memory) - 1e-12
            assert t.t_kernel <= t.t_compute + t.t_memory + 1e-12

    def test_utilizations_bounded(self, gpu):
        for bench in all_benchmarks()[:8]:
            work = bench.work(1.0)
            cache = simulate_cache(work, gpu)
            t = simulate_timing(work, cache, gpu, gpu.default_point())
            assert 0.0 < t.core_utilization <= 1.0
            assert 0.0 < t.memory_utilization <= 1.0

    def test_issue_limit_binds_memory_bound_at_low_core(self, gtx680):
        """Fig. 2 mechanism: memory-bound kernels slow down when the core
        clock drops, because the SMs cannot keep the DRAM saturated."""
        hh = _timing(gtx680, "streamcluster", "H-H")
        lh = _timing(gtx680, "streamcluster", "L-H")
        assert lh.t_memory > hh.t_memory * 1.3

    def test_transfer_time_independent_of_clocks(self, gtx680):
        hh = _timing(gtx680, "lbm", "H-H")
        ml = _timing(gtx680, "lbm", "M-L")
        assert hh.t_transfer == pytest.approx(ml.t_transfer)
        assert hh.t_transfer > 0

    def test_launch_overhead_scales_with_launches(self, gtx480):
        many = _timing(gtx480, "concurrentKernels", "H-H")
        few = _timing(gtx480, "nn", "H-H")
        assert many.t_launch > few.t_launch

    def test_total_is_sum_of_phases(self, gtx480):
        t = _timing(gtx480, "kmeans", "H-H")
        assert t.total == pytest.approx(
            t.t_kernel + t.t_launch + t.t_transfer + t.t_host
        )

    def test_compute_work_ops_weights(self):
        work = get_benchmark("mri-q").work(1.0)  # SFU heavy
        ops = compute_work_ops(work)
        assert ops > work.flops  # weights add work beyond raw FLOPs

    def test_backprop_faster_on_newer_gpus(self, gtx285, gtx480, gtx680):
        t285 = _timing(gtx285, "backprop", "H-H").t_kernel
        t480 = _timing(gtx480, "backprop", "H-H").t_kernel
        t680 = _timing(gtx680, "backprop", "H-H").t_kernel
        assert t680 < t480 < t285
