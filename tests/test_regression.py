"""OLS regression and goodness-of-fit tests (with property-based checks)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regression import (
    adjusted_r_squared,
    fit_ols,
    r_squared,
)


def _random_problem(draw_rows, n_features, rng):
    X = rng.normal(size=(draw_rows, n_features))
    coef = rng.normal(size=n_features)
    y = X @ coef + rng.normal(scale=0.1, size=draw_rows)
    return X, y


class TestFitOLS:
    def test_recovers_exact_linear_relation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        fit = fit_ols(X, y)
        np.testing.assert_allclose(fit.coefficients, [2.0, -1.0, 0.5], atol=1e-8)
        assert fit.intercept == pytest.approx(4.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_handles_constant_column(self):
        rng = np.random.default_rng(1)
        X = np.column_stack([rng.normal(size=30), np.full(30, 7.0)])
        y = 3.0 * X[:, 0] + 1.0
        fit = fit_ols(X, y)
        predicted = fit.predict(X)
        np.testing.assert_allclose(predicted, y, atol=1e-8)

    def test_handles_collinear_columns(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=40)
        X = np.column_stack([a, 2 * a])
        y = a + 0.5
        fit = fit_ols(X, y)
        np.testing.assert_allclose(fit.predict(X), y, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_ols(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            fit_ols(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            fit_ols(np.zeros((1, 2)), np.zeros(1))

    def test_predict_shape_validation(self):
        fit = fit_ols(np.random.default_rng(0).normal(size=(10, 2)), np.ones(10))
        with pytest.raises(ValueError):
            fit.predict(np.zeros((5, 3)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=1, max_value=4), st.integers(0, 2**32 - 1))
    def test_r2_in_unit_interval_with_intercept(self, n, p, seed):
        """With an intercept the training R² is always in [0, 1]."""
        rng = np.random.default_rng(seed)
        X, y = _random_problem(n, p, rng)
        fit = fit_ols(X, y)
        assert -1e-9 <= fit.r2 <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=8, max_value=50), st.integers(0, 2**32 - 1))
    def test_adding_feature_never_decreases_r2(self, n, seed):
        rng = np.random.default_rng(seed)
        X, y = _random_problem(n, 3, rng)
        r2_small = fit_ols(X[:, :2], y).r2
        r2_big = fit_ols(X, y).r2
        assert r2_big >= r2_small - 1e-9


class TestRSquared:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_target(self):
        y = np.full(5, 3.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y, y + 1) == 0.0


class TestAdjustedR2:
    def test_penalizes_features(self):
        assert adjusted_r_squared(0.9, 100, 10) < 0.9

    def test_matches_paper_definition(self):
        # 1 - (1-R2)(n-1)/(n-p-1)
        assert adjusted_r_squared(0.8, 50, 5) == pytest.approx(
            1 - 0.2 * 49 / 44
        )

    def test_no_dof_is_minus_inf(self):
        assert adjusted_r_squared(0.5, 5, 4) == float("-inf")

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=10, max_value=200),
        st.integers(min_value=1, max_value=8),
    )
    def test_never_exceeds_r2(self, r2, n, p):
        assert adjusted_r_squared(r2, n, p) <= r2 + 1e-12
