"""Direct tests of the shared experiment-helper modules."""

from __future__ import annotations

import pytest

from repro.experiments import context
from repro.experiments.errorfigs import error_distribution_figure
from repro.experiments.modeltables import model_reports, r2_table
from repro.experiments.varsweep import VARIABLE_COUNTS, prefix_metrics


class TestModelReports:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            model_reports("thermal")

    def test_reports_cover_all_gpus(self):
        reports = model_reports("power")
        assert set(reports) == {"GTX 285", "GTX 460", "GTX 480", "GTX 680"}
        for r2, report in reports.values():
            assert 0.0 < r2 < 1.0
            assert report.mean_pct_error > 0.0

    def test_r2_table_contains_paper_row(self):
        paper = {"GTX 285": 0.1, "GTX 460": 0.2, "GTX 480": 0.3, "GTX 680": 0.4}
        result = r2_table("x", "t", "power", paper)
        labels = [row[0] for row in result.rows]
        assert "R̄² (ours)" in labels
        assert "R̄² (paper)" in labels
        paper_row = result.rows[labels.index("R̄² (paper)")]
        assert paper_row[1:] == [0.1, 0.2, 0.3, 0.4]


class TestErrorFigureHelper:
    def test_rank_ordering_descending(self):
        result = error_distribution_figure("x", "t", "performance", {})
        # Errors for each GPU column are sorted descending by rank.
        for col in (2, 4, 6, 8):
            values = [row[col] for row in result.rows if row[col] != "-"]
            assert values == sorted(values, reverse=True)


class TestVariableSweepHelper:
    def test_prefix_metrics_monotone_r2(self):
        from repro.core.models import UnifiedPerformanceModel

        ds = context.dataset("GTX 460")
        model = UnifiedPerformanceModel(max_features=20).fit(ds)
        metrics = prefix_metrics(model, ds)
        assert set(metrics) == set(VARIABLE_COUNTS)
        r2s = [metrics[k][0] for k in sorted(metrics)]
        assert r2s == sorted(r2s)

    def test_prefix_of_selection_matches_smaller_cap(self):
        """The k-prefix of a cap-20 selection IS the cap-k model."""
        from repro.core.models import UnifiedPowerModel

        ds = context.dataset("GTX 460")
        big = UnifiedPowerModel(max_features=20).fit(ds)
        small = UnifiedPowerModel(max_features=5).fit(ds)
        assert big.selection.selected[:5] == small.selection.selected


class TestContextCaching:
    def test_sweep_table_memoized(self):
        a = context.sweep_table("GTX 460")
        b = context.sweep_table("GTX 460")
        assert a is b

    def test_models_memoized(self):
        a = context.power_model("GTX 460")
        b = context.power_model("GTX 460")
        assert a is b

    def test_clear_caches_resets(self):
        a = context.dataset("GTX 460")
        context.clear_caches()
        b = context.dataset("GTX 460")
        assert a is not b
        # Determinism: the rebuilt dataset is equal in content.
        assert a.exec_seconds().tolist() == b.exec_seconds().tolist()
