"""Thermal model tests (leakage feedback, ambient sensitivity)."""

from __future__ import annotations

import pytest

from repro.engine.simulator import GPUSimulator
from repro.engine.thermal import (
    T_AMBIENT_CAL,
    T_REF,
    T_THROTTLE,
    solve_thermal,
    thermal_resistance,
)
from repro.instruments.testbed import Testbed
from repro.kernels.suites import get_benchmark


class TestSolver:
    def test_converges(self, gtx480):
        state = solve_thermal(gtx480, dynamic_w=150.0, static_w=60.0)
        assert state.iterations < 50
        # Self-consistency: T = ambient + R * P(T).
        r = thermal_resistance(gtx480)
        assert state.die_c == pytest.approx(
            T_AMBIENT_CAL + r * state.power_w, abs=1e-3
        )

    def test_reference_point_is_neutral(self, gtx480):
        """At TDP in the calibration ambient, the die sits at T_REF and
        the leakage factor is exactly 1."""
        static = 60.0
        dynamic = gtx480.tdp_w - static
        state = solve_thermal(gtx480, dynamic_w=dynamic, static_w=static)
        assert state.die_c == pytest.approx(T_REF, abs=0.5)
        assert state.leakage_factor == pytest.approx(1.0, abs=0.01)

    def test_hotter_ambient_more_power(self, gtx480):
        cool = solve_thermal(gtx480, 150.0, 60.0, ambient_c=18.0)
        hot = solve_thermal(gtx480, 150.0, 60.0, ambient_c=40.0)
        assert hot.power_w > cool.power_w
        assert hot.die_c > cool.die_c

    def test_more_dynamic_power_hotter(self, gtx480):
        low = solve_thermal(gtx480, 80.0, 60.0)
        high = solve_thermal(gtx480, 200.0, 60.0)
        assert high.die_c > low.die_c

    def test_throttle_flag(self, gtx480):
        state = solve_thermal(gtx480, 400.0, 80.0, ambient_c=45.0)
        assert state.die_c > T_THROTTLE
        assert state.throttling

    def test_negative_power_rejected(self, gtx480):
        with pytest.raises(ValueError):
            solve_thermal(gtx480, -1.0, 10.0)

    def test_thermal_resistance_sized_to_tdp(self, gpu):
        r = thermal_resistance(gpu)
        assert (T_REF - T_AMBIENT_CAL) == pytest.approx(r * gpu.tdp_w)


class TestSimulatorIntegration:
    def test_run_records_temperature(self, gtx480):
        record = GPUSimulator(gtx480).run(get_benchmark("backprop"), 0.25)
        assert 30.0 < record.die_temp_c < T_THROTTLE
        assert not record.throttling

    def test_die_temperature_tracks_power(self, gtx480):
        sim = GPUSimulator(gtx480)
        runs = [
            sim.run(get_benchmark(name), 0.25)
            for name in ("backprop", "streamcluster", "nn", "sgemm")
        ]
        by_power = sorted(runs, key=lambda r: r.gpu_active_power_w)
        temps = [r.die_temp_c for r in by_power]
        assert temps == sorted(temps)

    def test_downclocking_cools_the_die(self, gtx680):
        sim = GPUSimulator(gtx680)
        hh = sim.run(get_benchmark("backprop"), 0.25)
        sim.set_clocks("M", "M")
        mm = sim.run(get_benchmark("backprop"), 0.25)
        assert mm.die_temp_c < hh.die_temp_c

    def test_ambient_raises_measured_energy(self, gtx480):
        cool = Testbed(gtx480, ambient_c=18.0)
        hot = Testbed(gtx480, ambient_c=40.0)
        bench = get_benchmark("backprop")
        e_cool = cool.measure(bench, 0.25).energy_j
        e_hot = hot.measure(bench, 0.25).energy_j
        assert e_hot > e_cool * 1.01
