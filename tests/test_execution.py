"""Parallel execution engine: units, cache, executors, determinism."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import pytest

from repro.arch.specs import get_gpu
from repro.campaign import Campaign
from repro.characterize.sweep import FrequencySweep
from repro.core.dataset import build_dataset
from repro.core.serialize import dataset_to_json
from repro.execution import (
    DatasetUnit,
    ExecutionConfig,
    ExecutionError,
    ExecutionStats,
    ResultCache,
    SweepUnit,
    WorkUnit,
    atomic_write_text,
    run_units,
    sweep_units,
)
from repro.kernels.suites import get_benchmark

#: Small benchmark set keeping unit counts (and test wall time) low.
BENCH_NAMES = ("nn", "hotspot", "lud")


def small_units(gpu_name: str = "GTX 480", seed: int = 11):
    gpu = get_gpu(gpu_name)
    benchmarks = [get_benchmark(n) for n in BENCH_NAMES]
    return sweep_units(gpu, benchmarks, seed=seed)


class TestCacheKeys:
    def test_stable_across_calls(self):
        a, b = small_units(), small_units()
        assert [u.cache_key() for u in a] == [u.cache_key() for u in b]

    def test_distinct_across_units(self):
        keys = [u.cache_key() for u in small_units()]
        assert len(set(keys)) == len(keys)

    def test_sensitive_to_seed(self):
        unit = small_units(seed=11)[0]
        other = dataclasses.replace(unit, seed=12)
        assert unit.cache_key() != other.cache_key()

    def test_sensitive_to_scale_and_pair(self):
        unit = small_units()[0]
        assert (
            dataclasses.replace(unit, scale=0.5).cache_key()
            != unit.cache_key()
        )
        assert (
            dataclasses.replace(unit, pair="L-L").cache_key()
            != unit.cache_key()
        )

    def test_sweep_and_dataset_keys_disjoint(self):
        gpu = get_gpu("GTX 480")
        kernel = get_benchmark("nn")
        sweep = SweepUnit(gpu=gpu, kernel=kernel, seed=1, pair="H-H")
        data = DatasetUnit(gpu=gpu, kernel=kernel, seed=1, pairs=("H-H",))
        assert sweep.cache_key() != data.cache_key()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        payload = {"kind": "sweep", "exec_seconds": 1.25}
        cache.put("ab" + "0" * 62, payload)
        assert cache.get("ab" + "0" * 62) == payload
        assert len(cache) == 1

    def test_missing_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("cd" + "0" * 62) is None
        assert cache.corrupt_entries == 0

    @pytest.mark.parametrize(
        "text",
        [
            "",  # truncated to nothing
            '{"format": "repro.cache-entry", "key": ',  # truncated JSON
            "not json at all {{{",
            json.dumps({"format": "something-else", "key": "k"}),
            json.dumps({"format": "repro.cache-entry", "key": "wrong"}),
            json.dumps(
                {"format": "repro.cache-entry", "key": "e" * 64, "payload": 3}
            ),
        ],
    )
    def test_corrupt_entry_is_counted_miss(self, tmp_path, text):
        cache = ResultCache(tmp_path / "cache")
        key = "e" * 64
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(text, encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt_entries == 1

    def test_atomic_write_replaces_and_leaves_no_scratch(self, tmp_path):
        target = tmp_path / "deep" / "file.json"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text(encoding="utf-8") == "two"
        assert list(tmp_path.rglob("*.tmp")) == []


class TestRunUnits:
    def test_serial_parallel_identical(self):
        units = small_units()
        serial = run_units(units, ExecutionConfig(jobs=1))
        parallel = run_units(units, ExecutionConfig(jobs=3))
        assert serial.payloads == parallel.payloads
        assert serial.stats.measured == len(units)
        assert parallel.stats.measured == len(units)

    def test_results_in_unit_order(self):
        units = small_units()
        outcome = run_units(units, ExecutionConfig(jobs=2))
        for unit, payload in zip(units, outcome.payloads):
            assert payload["benchmark"] == unit.kernel.name
            assert payload["pair"] == unit.pair

    def test_cache_round(self, tmp_path):
        units = small_units()
        config = ExecutionConfig(cache_dir=tmp_path / "cache")
        first = run_units(units, config)
        assert first.stats.measured == len(units)
        assert first.stats.cache_hits == 0
        second = run_units(units, config)
        assert second.stats.measured == 0
        assert second.stats.cache_hits == len(units)
        assert second.stats.cache_hit_rate == 1.0
        assert first.payloads == second.payloads

    def test_corruption_falls_back_to_remeasurement(self, tmp_path):
        units = small_units()
        config = ExecutionConfig(cache_dir=tmp_path / "cache")
        first = run_units(units, config)
        cache = ResultCache(tmp_path / "cache")
        # Truncate one entry and garble another.
        truncated = cache.path_for(units[0].cache_key())
        truncated.write_text(
            truncated.read_text(encoding="utf-8")[:25], encoding="utf-8"
        )
        cache.path_for(units[1].cache_key()).write_text(
            "garbage", encoding="utf-8"
        )
        second = run_units(units, config)
        assert second.stats.corrupt_entries == 2
        assert second.stats.measured == 2
        assert second.stats.cache_hits == len(units) - 2
        assert second.payloads == first.payloads

    def test_progress_callback(self, tmp_path):
        units = small_units()
        events = []
        config = ExecutionConfig(
            cache_dir=tmp_path / "cache", callback=events.append
        )
        run_units(units, config)
        assert len(events) == len(units)
        assert [e.done for e in events] == list(range(1, len(units) + 1))
        assert all(not e.cache_hit for e in events)
        assert all(e.attempts == 1 for e in events)
        events.clear()
        run_units(units, config)
        assert all(e.cache_hit for e in events)
        assert all(e.attempts == 0 for e in events)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ExecutionConfig(jobs=0)
        with pytest.raises(ValueError):
            ExecutionConfig(retries=-1)


#: In-process attempt log for FlakyUnit (serial executor only).
_FLAKY_ATTEMPTS: dict[str, int] = {}


@dataclass(frozen=True)
class FlakyUnit(WorkUnit):
    """Fails its first ``fail_times`` attempts, then succeeds."""

    label: str = "flaky"
    fail_times: int = 1

    kind = "flaky"

    def spec(self):
        return {"label": self.label, "fail_times": self.fail_times}

    def execute(self):
        attempts = _FLAKY_ATTEMPTS.get(self.label, 0) + 1
        _FLAKY_ATTEMPTS[self.label] = attempts
        if attempts <= self.fail_times:
            raise RuntimeError(f"induced failure #{attempts}")
        return {"kind": self.kind, "label": self.label, "attempts": attempts}


def flaky(label: str, fail_times: int) -> FlakyUnit:
    gpu = get_gpu("GTX 480")
    kernel = get_benchmark("nn")
    return FlakyUnit(
        gpu=gpu, kernel=kernel, seed=None, label=label, fail_times=fail_times
    )


class TestRetry:
    def test_bounded_retry_recovers(self):
        _FLAKY_ATTEMPTS.clear()
        unit = flaky("recovers", fail_times=2)
        outcome = run_units([unit], ExecutionConfig(retries=2, backoff_s=0.0))
        assert outcome.payloads[0]["attempts"] == 3
        assert outcome.stats.retries == 2
        assert outcome.stats.measured == 1

    def test_exhausted_retries_raise(self):
        _FLAKY_ATTEMPTS.clear()
        unit = flaky("hopeless", fail_times=99)
        with pytest.raises(ExecutionError, match="3 attempts"):
            run_units([unit], ExecutionConfig(retries=2, backoff_s=0.0))


class TestStats:
    def test_merge_accumulates(self):
        a = ExecutionStats(
            total_units=4, measured=3, cache_hits=1, retries=1, wall_seconds=1.0
        )
        b = ExecutionStats(
            total_units=2, measured=0, cache_hits=2, wall_seconds=0.5
        )
        a.merge(b)
        assert a.total_units == 6
        assert a.measured == 3
        assert a.cache_hits == 3
        assert a.wall_seconds == pytest.approx(1.5)

    def test_summary_mentions_hits(self):
        stats = ExecutionStats(total_units=2, measured=1, cache_hits=1)
        assert "1 cache hits" in stats.summary()
        assert "50%" in stats.summary()


class TestSweepDeterminism:
    def test_serial_parallel_tables_identical(self):
        gpu = get_gpu("GTX 680")
        benchmarks = [get_benchmark(n) for n in BENCH_NAMES]
        serial = FrequencySweep(gpu, seed=5).run(benchmarks)
        parallel = FrequencySweep(gpu, seed=5).run(
            benchmarks, execution=ExecutionConfig(jobs=3)
        )
        assert serial.benchmark_names == parallel.benchmark_names
        for name in serial.benchmark_names:
            assert serial.pairs_for(name) == parallel.pairs_for(name)
            for pair in serial.pairs_for(name):
                left = serial.at(name, pair)
                right = parallel.at(name, pair)
                assert left.exec_seconds == right.exec_seconds
                assert left.avg_power_w == right.avg_power_w
                assert left.energy_j == right.energy_j
                assert left.repeats == right.repeats
                assert (left.trace.samples == right.trace.samples).all()

    def test_run_benchmark_wrapper_matches_run(self):
        gpu = get_gpu("GTX 480")
        bench = get_benchmark("nn")
        sweep = FrequencySweep(gpu, seed=2)
        by_wrapper = sweep.run_benchmark(bench)
        by_run = sweep.run([bench])
        assert tuple(by_wrapper) == by_run.pairs_for("nn")
        for pair, m in by_wrapper.items():
            assert m.exec_seconds == by_run.at("nn", pair).exec_seconds


class TestDatasetDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_serial_parallel_datasets_identical(self, jobs):
        gpu = get_gpu("GTX 460")
        benchmarks = [get_benchmark(n) for n in BENCH_NAMES]
        serial = build_dataset(gpu, benchmarks=benchmarks, seed=9)
        parallel = build_dataset(
            gpu,
            benchmarks=benchmarks,
            seed=9,
            execution=ExecutionConfig(jobs=jobs),
        )
        assert dataset_to_json(serial) == dataset_to_json(parallel)

    def test_cached_dataset_identical_and_all_hits(self, tmp_path):
        gpu = get_gpu("GTX 460")
        benchmarks = [get_benchmark(n) for n in BENCH_NAMES]
        config = ExecutionConfig(jobs=2, cache_dir=tmp_path / "cache")
        stats = ExecutionStats()
        first = build_dataset(
            gpu, benchmarks=benchmarks, seed=9, execution=config, stats=stats
        )
        assert stats.measured == stats.total_units > 0
        again = ExecutionStats()
        second = build_dataset(
            gpu, benchmarks=benchmarks, seed=9, execution=config, stats=again
        )
        assert again.cache_hits == again.total_units
        assert again.measured == 0
        assert dataset_to_json(first) == dataset_to_json(second)

    def test_profiler_failures_still_excluded(self):
        gpu = get_gpu("GTX 480")
        benchmarks = [get_benchmark("nn"), get_benchmark("backprop")]
        ds = build_dataset(
            gpu, benchmarks=benchmarks, execution=ExecutionConfig(jobs=2)
        )
        # backprop is one of the four the paper's profiler failed on.
        assert "backprop" not in ds.benchmarks
        assert "nn" in ds.benchmarks


class TestCampaignParallel:
    GPUS = ("GTX 460", "GTX 680")
    BENCHES = ("nn", "hotspot", "srad_v1", "lud")

    def campaign(self, directory, jobs, cache_dir):
        return Campaign(
            directory,
            gpus=self.GPUS,
            seed=3,
            benchmarks=self.BENCHES,
            execution=ExecutionConfig(jobs=jobs, cache_dir=cache_dir),
        )

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        serial = self.campaign(tmp_path / "s", jobs=1, cache_dir=None)
        serial.run()
        parallel = self.campaign(
            tmp_path / "p", jobs=4, cache_dir=tmp_path / "p" / "cache"
        )
        parallel.run()
        names = sorted(p.name for p in (tmp_path / "s").glob("*.json"))
        assert names  # datasets, models and the manifest
        for name in names:
            left = (tmp_path / "s" / name).read_bytes()
            right = (tmp_path / "p" / name).read_bytes()
            assert left == right, f"{name} differs between serial and parallel"

    def test_shared_cache_resumes_with_zero_measurements(self, tmp_path):
        cache = tmp_path / "shared-cache"
        first = self.campaign(tmp_path / "one", jobs=2, cache_dir=cache)
        first.run()
        assert first.last_stats.measured == first.last_stats.total_units > 0
        second = self.campaign(tmp_path / "two", jobs=2, cache_dir=cache)
        second.run()
        assert second.last_stats.measured == 0
        assert second.last_stats.cache_hits == second.last_stats.total_units
        assert (tmp_path / "one" / "campaign.json").read_bytes() == (
            tmp_path / "two" / "campaign.json"
        ).read_bytes()

    def test_no_scratch_files_left_behind(self, tmp_path):
        campaign = self.campaign(
            tmp_path / "c", jobs=2, cache_dir=tmp_path / "c" / "cache"
        )
        campaign.run()
        assert list((tmp_path / "c").rglob("*.tmp")) == []

    def test_unknown_benchmark_rejected_eagerly(self, tmp_path):
        from repro.errors import UnknownBenchmarkError

        with pytest.raises(UnknownBenchmarkError):
            Campaign(tmp_path, gpus=["GTX 480"], benchmarks=["nope"])


class TestCLIExecutionFlags:
    def test_campaign_flags_and_cache_hits(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "campaign",
            str(tmp_path / "one"),
            "--gpu", "GTX 480",
            "--benchmark", "nn",
            "--benchmark", "hotspot",
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--seed", "1",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "execution:" in out
        assert "0 cache hits" in out
        argv[1] = str(tmp_path / "two")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 measured" in out
        assert "(100%)" in out

    def test_campaign_no_cache(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "campaign",
            str(tmp_path / "c"),
            "--gpu", "GTX 480",
            "--benchmark", "nn",
            "--no-cache",
        ]
        assert main(argv) == 0
        assert not (tmp_path / "c" / "cache").exists()

    def test_sweep_accepts_jobs(self, capsys):
        from repro.cli import main

        assert main(["sweep", "GTX 680", "nn", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "H-H" in out
