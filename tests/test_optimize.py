"""DVFS governor and oracle tests."""

from __future__ import annotations

import pytest

from repro.errors import ModelNotFittedError
from repro.core.models import UnifiedPerformanceModel, UnifiedPowerModel
from repro.experiments import context
from repro.kernels.suites import get_benchmark
from repro.optimize.governor import ModelGovernor
from repro.optimize.oracle import exhaustive_oracle, score_governor


@pytest.fixture(scope="module")
def governor480(dataset480, power_model480, perf_model480):
    return ModelGovernor(power_model480, perf_model480)


class TestGovernor:
    def test_requires_fitted_models(self):
        with pytest.raises(ModelNotFittedError):
            ModelGovernor(UnifiedPowerModel(), UnifiedPerformanceModel())

    def test_rejects_bad_slowdown(self, power_model480, perf_model480):
        with pytest.raises(ValueError):
            ModelGovernor(power_model480, perf_model480, max_slowdown=0.5)

    def test_decision_structure(self, governor480, dataset480):
        decision = governor480.decide(dataset480, "kmeans", 0.25)
        assert decision.op.key in {
            op.key for op in dataset480.gpu.operating_points()
        }
        assert decision.predicted_seconds > 0
        assert decision.predicted_power_w > 0
        assert len(decision.predicted_energy_j) == 7
        assert decision.predicted_energy == min(
            decision.predicted_energy_j.values()
        )

    def test_unknown_workload_raises(self, governor480, dataset480):
        with pytest.raises(KeyError):
            governor480.decide(dataset480, "no-such-bench", 1.0)

    def test_slowdown_constraint_binds(
        self, dataset480, power_model480, perf_model480
    ):
        tight = ModelGovernor(power_model480, perf_model480, max_slowdown=1.0)
        free = ModelGovernor(power_model480, perf_model480)
        d_tight = tight.decide(dataset480, "kmeans", 0.25)
        d_free = free.decide(dataset480, "kmeans", 0.25)
        # With zero allowed slowdown, the chosen pair is the fastest one.
        preds = {
            k: v for k, v in d_tight.predicted_energy_j.items()
        }
        assert d_tight.predicted_seconds <= d_free.predicted_seconds + 1e-9


class TestOracle:
    def test_oracle_identifies_minimum(self, gtx480):
        oracle = exhaustive_oracle(gtx480, get_benchmark("backprop"))
        assert oracle.best_energy_j == min(oracle.energy_j.values())
        assert oracle.regret(oracle.best_pair) == 0.0
        assert oracle.rank(oracle.best_pair) == 1

    def test_oracle_reuses_sweep(self, gtx480):
        sweep = context.sweep_table("GTX 480")
        oracle = exhaustive_oracle(
            gtx480,
            get_benchmark("backprop"),
            measurements=dict(sweep.measurements["backprop"]),
        )
        assert oracle.best_pair == "H-L"

    def test_score_governor(self, governor480, dataset480, gtx480):
        sweep = context.sweep_table("GTX 480")
        # Score at the characterization scale present in the sweep.
        decision = governor480.decide(dataset480, "kmeans", 0.25)
        oracle = exhaustive_oracle(
            gtx480,
            get_benchmark("kmeans"),
            scale=0.25,
        )
        score = score_governor(decision, oracle)
        assert score.energy_regret >= 0.0
        assert 1 <= score.rank <= 7
        assert score.chosen_pair == decision.op.key

    def test_governor_beats_random_on_average(
        self, governor480, dataset480, gtx480
    ):
        """The model-driven choice should rank in the upper half of the
        true energy ordering for most workloads."""
        ranks = []
        for name in ("kmeans", "hotspot", "lbm", "sgemm", "nn", "MAdd"):
            decision = governor480.decide(dataset480, name, 0.25)
            oracle = exhaustive_oracle(gtx480, get_benchmark(name), scale=0.25)
            ranks.append(oracle.rank(decision.op.key))
        assert sum(ranks) / len(ranks) < 4.0  # random would average 4.0
