"""Architecture registry and Table I/III data tests."""

from __future__ import annotations

import pytest

from repro.arch.architecture import Architecture, traits_of
from repro.arch.dvfs import ClockLevel, parse_pair_key
from repro.arch.specs import (
    GPUSpec,
    all_gpus,
    get_gpu,
)
from repro.arch.voltage import VoltageTable
from repro.errors import InvalidOperatingPointError, UnknownGPUError


class TestRegistry:
    def test_four_gpus_in_paper_order(self):
        names = [g.name for g in all_gpus()]
        assert names == ["GTX 285", "GTX 460", "GTX 480", "GTX 680"]

    @pytest.mark.parametrize(
        "query", ["GTX 480", "gtx480", "gtx 480", "480", " GTX 480 "]
    )
    def test_lookup_is_forgiving(self, query):
        assert get_gpu(query).name == "GTX 480"

    def test_unknown_gpu_raises(self):
        with pytest.raises(UnknownGPUError):
            get_gpu("GTX 1080")

    def test_generations(self):
        archs = [g.architecture for g in all_gpus()]
        assert archs == [
            Architecture.TESLA,
            Architecture.FERMI,
            Architecture.FERMI,
            Architecture.KEPLER,
        ]


class TestTableI:
    """The registry must carry Table I verbatim."""

    def test_core_counts(self):
        cores = {g.name: g.num_cores for g in all_gpus()}
        assert cores == {
            "GTX 285": 240,
            "GTX 460": 336,
            "GTX 480": 480,
            "GTX 680": 1536,
        }

    def test_peak_gflops(self):
        peak = {g.name: g.peak_gflops for g in all_gpus()}
        assert peak == {
            "GTX 285": 933.0,
            "GTX 460": 907.0,
            "GTX 480": 1350.0,
            "GTX 680": 3090.0,
        }

    def test_tdp(self):
        tdp = {g.name: g.tdp_w for g in all_gpus()}
        assert tdp == {
            "GTX 285": 183.0,
            "GTX 460": 160.0,
            "GTX 480": 250.0,
            "GTX 680": 195.0,
        }

    def test_gtx285_clock_levels(self):
        g = get_gpu("GTX 285")
        assert [g.core_mhz[l] for l in (ClockLevel.L, ClockLevel.M, ClockLevel.H)] == [
            600.0,
            800.0,
            1296.0,
        ]
        assert [g.mem_mhz[l] for l in (ClockLevel.L, ClockLevel.M, ClockLevel.H)] == [
            100.0,
            300.0,
            1284.0,
        ]

    def test_gtx680_clock_levels(self):
        g = get_gpu("GTX 680")
        assert g.core_mhz[ClockLevel.H] == 1411.0
        assert g.mem_mhz[ClockLevel.H] == 3004.0


class TestTableIII:
    """Configurable pair sets must match Table III exactly."""

    COMMON = {"H-H", "H-M", "H-L", "M-H", "M-M", "M-L"}

    def _pairs(self, name: str) -> set[str]:
        g = get_gpu(name)
        return {f"{c.value}-{m.value}" for c, m in g.allowed_pairs}

    def test_gtx285(self):
        assert self._pairs("GTX 285") == self.COMMON | {"L-H", "L-M"}

    @pytest.mark.parametrize("name", ["GTX 460", "GTX 480"])
    def test_fermi(self, name):
        assert self._pairs(name) == self.COMMON | {"L-L"}

    def test_gtx680(self):
        assert self._pairs("GTX 680") == self.COMMON | {"L-H"}

    def test_total_pair_counts(self):
        counts = {g.name: len(g.allowed_pairs) for g in all_gpus()}
        assert counts == {
            "GTX 285": 8,
            "GTX 460": 7,
            "GTX 480": 7,
            "GTX 680": 7,
        }


class TestOperatingPoints:
    def test_resolves_levels_and_voltage(self, gtx680):
        op = gtx680.operating_point(ClockLevel.M, ClockLevel.L)
        assert op.key == "M-L"
        assert op.core_mhz == 1080.0
        assert op.mem_mhz == 324.0
        assert op.core_voltage == gtx680.core_vdd.medium
        assert op.mem_voltage == gtx680.mem_vdd.low

    def test_string_key_form(self, gtx680):
        assert gtx680.operating_point("H-L").key == "H-L"

    def test_illegal_pair_rejected(self, gtx680):
        with pytest.raises(InvalidOperatingPointError):
            gtx680.operating_point(ClockLevel.L, ClockLevel.L)

    def test_default_is_hh(self, gpu):
        assert gpu.default_point().key == "H-H"

    def test_operating_points_cover_allowed(self, gpu):
        keys = {op.key for op in gpu.operating_points()}
        expected = {f"{c.value}-{m.value}" for c, m in gpu.allowed_pairs}
        assert keys == expected

    def test_peak_scales_with_clock(self, gpu):
        hh = gpu.default_point()
        assert gpu.peak_flops(hh) == pytest.approx(gpu.peak_gflops * 1e9)
        assert gpu.peak_bandwidth(hh) == pytest.approx(
            gpu.mem_bandwidth_gbs * 1e9
        )
        for op in gpu.operating_points():
            ratio = gpu.peak_flops(op) / gpu.peak_flops(hh)
            assert ratio == pytest.approx(op.core_mhz / hh.core_mhz)


class TestValidation:
    def _spec_kwargs(self):
        g = get_gpu("GTX 480")
        return dict(
            name="X",
            architecture=g.architecture,
            num_cores=1,
            num_sms=1,
            peak_gflops=1.0,
            mem_bandwidth_gbs=1.0,
            tdp_w=1.0,
            core_mhz=dict(g.core_mhz),
            mem_mhz=dict(g.mem_mhz),
            core_vdd=g.core_vdd,
            mem_vdd=g.mem_vdd,
            allowed_pairs=g.allowed_pairs,
            power=g.power,
        )

    def test_rejects_unordered_clocks(self):
        kwargs = self._spec_kwargs()
        kwargs["core_mhz"][ClockLevel.L] = 99999.0
        with pytest.raises(ValueError, match="ordered"):
            GPUSpec(**kwargs)

    def test_rejects_missing_default_pair(self):
        kwargs = self._spec_kwargs()
        kwargs["allowed_pairs"] = frozenset({parse_pair_key("M-M")})
        with pytest.raises(ValueError, match="H-H"):
            GPUSpec(**kwargs)

    def test_voltage_table_must_be_monotone(self):
        with pytest.raises(ValueError):
            VoltageTable(low=1.2, medium=1.0, high=1.1).validate()

    def test_voltage_table_relative(self):
        table = VoltageTable(low=0.9, medium=1.0, high=1.2)
        assert table.relative(ClockLevel.H) == 1.0
        assert table.relative(ClockLevel.L) == pytest.approx(0.75)


class TestTraits:
    def test_tesla_has_no_cache(self):
        assert traits_of(Architecture.TESLA).cache_factor == 0.0

    def test_cache_grows_by_generation(self):
        t = traits_of(Architecture.TESLA).cache_factor
        f = traits_of(Architecture.FERMI).cache_factor
        k = traits_of(Architecture.KEPLER).cache_factor
        assert t < f < k

    def test_counter_set_names(self):
        assert traits_of(Architecture.TESLA).counter_set == "tesla"
        assert traits_of(Architecture.FERMI).counter_set == "fermi"
        assert traits_of(Architecture.KEPLER).counter_set == "kepler"

    def test_kepler_voltage_curve_steepest(self):
        """The mechanism behind the 75% headline: Kepler's top state
        carries disproportionate voltage."""
        ratios = {}
        for g in all_gpus():
            ratios[g.name] = g.core_vdd.medium / g.core_vdd.high
        assert ratios["GTX 680"] < ratios["GTX 460"] < ratios["GTX 285"]
