"""GPU simulator tests: VBIOS boot path and run records."""

from __future__ import annotations

import pytest

from repro.arch.bios import build_image, parse_image
from repro.arch.dvfs import ClockLevel
from repro.engine.simulator import GPUSimulator
from repro.errors import BIOSFormatError
from repro.kernels.suites import get_benchmark


class TestBootPath:
    def test_boots_factory_image_at_hh(self, gtx480):
        sim = GPUSimulator(gtx480)
        assert sim.operating_point.key == "H-H"

    def test_boots_custom_image(self, gtx480):
        raw = build_image(gtx480, ClockLevel.M, ClockLevel.L)
        sim = GPUSimulator(gtx480, bios=raw)
        assert sim.operating_point.key == "M-L"

    def test_rejects_foreign_image(self, gtx480, gtx680):
        raw = build_image(gtx680)
        with pytest.raises(BIOSFormatError):
            GPUSimulator(gtx480, bios=raw)

    def test_set_clocks_reflashes(self, gtx480):
        sim = GPUSimulator(gtx480)
        before = sim.bios_image
        sim.set_clocks("M", "M")
        assert sim.operating_point.key == "M-M"
        assert sim.bios_image != before
        assert parse_image(sim.bios_image).boot_core_level is ClockLevel.M

    def test_set_clocks_accepts_strings(self, gtx480):
        sim = GPUSimulator(gtx480)
        sim.set_clocks("h", "l")
        assert sim.operating_point.key == "H-L"


class TestRunRecords:
    def test_run_is_deterministic(self, gtx480):
        a = GPUSimulator(gtx480).run(get_benchmark("kmeans"), 0.5)
        b = GPUSimulator(gtx480).run(get_benchmark("kmeans"), 0.5)
        assert a.total_seconds == b.total_seconds
        assert a.gpu_active_power_w == b.gpu_active_power_w

    def test_seed_changes_noise(self, gtx480):
        a = GPUSimulator(gtx480, seed=1).run(get_benchmark("kmeans"), 0.5)
        b = GPUSimulator(gtx480, seed=2).run(get_benchmark("kmeans"), 0.5)
        assert a.total_seconds != b.total_seconds

    def test_time_accounting(self, gtx480):
        rec = GPUSimulator(gtx480).run(get_benchmark("kmeans"), 0.5)
        assert rec.total_seconds == pytest.approx(
            rec.gpu_busy_seconds + rec.idle_seconds
        )
        assert rec.kernel_seconds > 0
        assert rec.overhead_seconds > 0

    def test_jitter_is_bounded(self, gtx480):
        rec = GPUSimulator(gtx480).run(get_benchmark("kmeans"), 0.5)
        # Jitter and the CPI fixed effect are multiplicative and modest.
        assert rec.kernel_seconds == pytest.approx(
            rec.timing.t_kernel, rel=0.8
        )

    def test_active_power_includes_unmodeled_structure(self, gtx480):
        rec = GPUSimulator(gtx480).run(get_benchmark("kmeans"), 0.5)
        # Never below the deterministic static floor.
        assert rec.gpu_active_power_w > rec.power.static_w

    def test_power_fixed_effect_constant_across_pairs(self, gtx480):
        """The dominant unmodeled power factor must cancel in energy
        ratios between pairs (Section III depends on this)."""
        sim = GPUSimulator(gtx480)
        bench = get_benchmark("backprop")
        ratios = []
        for pair in ("H-H", "M-H"):
            sim.set_clocks(*pair.split("-"))
            rec = sim.run(bench, 1.0)
            ratios.append(rec.gpu_active_power_w / rec.power.total)
        # The residual pair interaction is small.
        assert ratios[0] == pytest.approx(ratios[1], rel=0.25)

    def test_energy_positive(self, gpu):
        rec = GPUSimulator(gpu).run(get_benchmark("hotspot"), 0.25)
        assert rec.gpu_energy_j > 0

    def test_context_round_trip(self, gtx480):
        rec = GPUSimulator(gtx480).run(get_benchmark("hotspot"), 0.25)
        ctx = rec.context
        assert ctx.spec is gtx480
        assert ctx.op == rec.op
        assert ctx.work is rec.work
